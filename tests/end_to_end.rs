//! Workspace-level integration tests: the complete pipeline from generation
//! through simulated compilation to differential / EMI verdicts.

use clsmith::{generate, GenMode, GeneratorOptions};
use fuzz_harness::{differential_test, targets_for, Verdict};
use opencl_sim::{configuration, ExecOptions, OptLevel, TestOutcome};

fn small(mode: GenMode, seed: u64) -> clc::Program {
    generate(&GeneratorOptions {
        min_threads: 16,
        max_threads: 48,
        ..GeneratorOptions::new(mode, seed)
    })
}

#[test]
fn figure_kernels_reproduce_their_paper_outcomes() {
    for fig in opencl_sim::all_figures() {
        let reference = opencl_sim::reference_execute(&fig.program, &ExecOptions::default());
        match reference {
            TestOutcome::Result { output, .. } => {
                assert_eq!(output, fig.expected_output, "figure {}", fig.id)
            }
            other => panic!(
                "figure {} failed on the reference emulator: {other:?}",
                fig.id
            ),
        }
        for &(config_id, opt, _) in &fig.demonstrates {
            let outcome = opencl_sim::execute(
                &fig.program,
                &configuration(config_id),
                opt,
                &ExecOptions::default(),
            );
            // Crash / build failure / timeout all demonstrate the defect, so
            // only a correct result is a reproduction failure.
            if let TestOutcome::Result { output, .. } = outcome {
                assert_ne!(
                    output, fig.expected_output,
                    "figure {} should be miscompiled by configuration {config_id}{opt}",
                    fig.id
                );
            }
        }
    }
}

#[test]
fn differential_testing_finds_the_oclgrind_comma_bug() {
    // Search a few seeds for a kernel that uses the comma operator, then
    // check that Oclgrind (configuration 19) is voted down when it matters.
    let configs = vec![
        configuration(1),
        configuration(3),
        configuration(9),
        configuration(19),
    ];
    let targets = targets_for(&configs);
    let mut flagged = 0;
    let mut comma_kernels = 0;
    for seed in 0..30u64 {
        let program = small(GenMode::Basic, seed);
        let features = clc::Features::detect(&program);
        if !features.uses_comma {
            continue;
        }
        comma_kernels += 1;
        let verdicts = differential_test(&program, &targets, &ExecOptions::default());
        // Targets 6 and 7 are 19- and 19+.
        if verdicts[6] == Verdict::WrongCode || verdicts[7] == Verdict::WrongCode {
            flagged += 1;
        }
    }
    assert!(
        comma_kernels > 0,
        "no generated kernel used the comma operator"
    );
    assert!(
        flagged > 0,
        "the Oclgrind comma bug was never flagged over {comma_kernels} comma kernels"
    );
}

#[test]
fn emi_testing_finds_a_bug_without_cross_compiler_comparison() {
    // Configuration 14 miscompiles rotate-by-zero at both optimisation
    // levels; EMI variants of a kernel whose EMI block contains the rotate
    // pattern expose it on that single configuration... the cheaper check
    // here: variants must agree on healthy configurations and the judgement
    // helper must be usable end to end.
    let base = generate(
        &GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::new(GenMode::All, 5)
        }
        .with_emi(),
    );
    let grid = fuzz_harness::pruning_grid(6);
    let variants: Vec<clc::Program> = grid
        .iter()
        .enumerate()
        .map(|(i, p)| clsmith::prune_variant(&base, p, i as u64))
        .collect();
    let judgement = fuzz_harness::judge_base(
        &variants,
        &configuration(1),
        OptLevel::Enabled,
        &ExecOptions::default(),
    );
    assert!(
        !judgement.wrong,
        "healthy configuration disagreed across EMI variants"
    );
}

#[test]
fn reducer_shrinks_a_figure_kernel_preserving_the_bug() {
    // Reduce the Figure 1(d) kernel while configuration 17 keeps
    // miscompiling it.
    let fig = opencl_sim::figures::figure_1d();
    let config = configuration(17);
    let exec = ExecOptions::default();
    let mut interesting = |candidate: &clc::Program| {
        let reference = opencl_sim::reference_execute(candidate, &exec);
        let observed = opencl_sim::execute(candidate, &config, OptLevel::Enabled, &exec);
        match (reference, observed) {
            (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) => a != b,
            _ => false,
        }
    };
    assert!(
        interesting(&fig.program),
        "figure 1(d) should be miscompiled by configuration 17"
    );
    let (reduced, stats) = clreduce::reduce(
        &fig.program,
        &mut interesting,
        &clreduce::ReduceOptions::default(),
    );
    assert!(stats.final_statements <= stats.initial_statements);
    assert!(interesting(&reduced));
}

#[test]
fn benchmark_emi_pipeline_runs_for_every_table3_benchmark() {
    let donor = generate(
        &GeneratorOptions {
            min_threads: 16,
            max_threads: 32,
            ..GeneratorOptions::new(GenMode::Basic, 123)
        }
        .with_emi(),
    );
    let bodies: Vec<clc::Block> = donor
        .emi_blocks()
        .iter()
        .map(|b| b.body.clone())
        .take(1)
        .collect();
    for bench in parboil_rodinia::table3_benchmarks() {
        let emi = fuzz_harness::EmiBenchmark {
            name: bench.name.to_string(),
            program: bench.program.clone(),
            bodies: bodies.clone(),
            injection_points: 1,
        };
        let cell =
            fuzz_harness::evaluate_benchmark(&emi, &configuration(1), &ExecOptions::default());
        // The healthy NVIDIA configuration must never report wrong code for
        // dead-code injection into a deterministic benchmark.
        assert_ne!(
            cell.outcome,
            fuzz_harness::CellOutcome::WrongCode,
            "{}",
            bench.name
        );
    }
}
