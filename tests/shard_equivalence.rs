//! The shard/merge layer's headline guarantee: for a fixed campaign seed,
//!
//! * a **single-process** campaign,
//! * the same campaign split into **N shards and merged** (via in-memory
//!   tallies *and* via the on-disk journals), and
//! * the same campaign **killed at a job boundary and resumed** from its
//!   journal (including a half-written final record, which the checksum
//!   drops)
//!
//! all produce **byte-identical** rendered Table 1 / Table 4 / Table 5
//! output — at every worker count.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::shard::{JournalOptions, Mergeable, ShardSelect};
use fuzz_harness::{
    classify_configurations_sharded, classify_configurations_with, load_journal,
    merge_classification_journals, merge_emi_campaign_journals, merge_mode_campaign_journals,
    render_campaign_table, render_emi_table, render_reliability_table, run_emi_campaign_sharded,
    run_emi_campaign_with, run_mode_campaign_with, run_modes_campaign_sharded, CampaignOptions,
    EmiCampaignOptions, EmiTally, MultiModeTally, Scheduler,
};
use opencl_sim::{ExecOptions, OutcomeStore};
use std::path::PathBuf;
use std::sync::Arc;

const WORKER_COUNTS: [usize; 2] = [1, 3];
const SHARDS: u32 = 3;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "clfuzz-shard-equiv-{}-{name}.log",
        std::process::id()
    ))
}

fn cleanup(paths: &[PathBuf]) {
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

/// Simulates a kill mid-campaign: keep the header plus `records` complete
/// records, then a torn half-record of garbage (as a process dying inside
/// `write` would leave).
fn kill_after(path: &PathBuf, records: usize) {
    let text = std::fs::read_to_string(path).expect("journal exists");
    let keep: usize = text.lines().take(1 + records).map(|l| l.len() + 1).sum();
    assert!(
        text.lines().count() > 1 + records,
        "journal too short to truncate at {records} records"
    );
    let mut bytes = text.into_bytes();
    bytes.truncate(keep);
    bytes.extend_from_slice(b"R 999 deadbeef");
    std::fs::write(path, bytes).expect("rewrite truncated journal");
}

fn campaign_options(seed_offset: u64) -> CampaignOptions {
    CampaignOptions {
        kernels: 8,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        seed_offset,
        ..CampaignOptions::default()
    }
}

#[test]
fn table4_single_sharded_and_resumed_runs_are_byte_identical() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(19),
    ];
    let options = campaign_options(0x7AB1E4);
    let modes = [GenMode::Barrier];
    for workers in WORKER_COUNTS {
        let scheduler = Scheduler::new(workers);
        let reference = render_campaign_table(&run_mode_campaign_with(
            &scheduler,
            GenMode::Barrier,
            &configs,
            &options,
        ));

        // N shards, merged two ways: in-memory tallies and journal refold.
        let mut tally: Option<MultiModeTally> = None;
        let mut paths = Vec::new();
        for index in 0..SHARDS {
            let path = temp_path(&format!("t4-{workers}-{index}"));
            let shard = run_modes_campaign_sharded(
                &scheduler,
                &modes,
                &configs,
                &options,
                ShardSelect {
                    index,
                    count: SHARDS,
                },
                Some(&JournalOptions::create(&path)),
            )
            .expect("sharded campaign");
            assert_eq!(shard.metrics.shard_count, SHARDS);
            match &mut tally {
                None => tally = Some(shard.tally),
                Some(t) => t.merge(shard.tally),
            }
            paths.push(path);
        }
        let merged_tally = tally.expect("at least one shard ran");
        let merged_result = fuzz_harness::CampaignResult {
            mode: GenMode::Barrier,
            kernels: merged_tally.per_mode[0].kernels(),
            targets: fuzz_harness::targets_for(&configs),
            stats: merged_tally.per_mode[0].per_target.clone(),
        };
        assert_eq!(
            render_campaign_table(&merged_result),
            reference,
            "{workers} workers: merged shard tallies diverged from the single run"
        );
        let (from_journals, summary) =
            merge_mode_campaign_journals(&paths, &configs).expect("journal merge");
        assert!(summary.complete, "{SHARDS} shards must cover the job space");
        assert_eq!(
            render_campaign_table(&from_journals[0]),
            reference,
            "{workers} workers: journal-refolded tables diverged from the single run"
        );

        // Kill after 3 jobs (with a torn half-record), then resume.
        let journal = temp_path(&format!("t4-{workers}-resume"));
        run_modes_campaign_sharded(
            &scheduler,
            &modes,
            &configs,
            &options,
            ShardSelect::whole(),
            Some(&JournalOptions::create(&journal)),
        )
        .expect("full journaled campaign");
        kill_after(&journal, 3);
        let resumed = run_modes_campaign_sharded(
            &scheduler,
            &modes,
            &configs,
            &options,
            ShardSelect::whole(),
            Some(&JournalOptions::resume(&journal)),
        )
        .expect("resumed campaign");
        assert_eq!(resumed.metrics.jobs_resumed, 3, "{workers} workers");
        assert_eq!(
            resumed.metrics.jobs_replayed,
            options.kernels as u64 - 3,
            "{workers} workers"
        );
        assert!(resumed.metrics.dropped_bytes > 0, "torn record not dropped");
        assert_eq!(
            render_campaign_table(&resumed.results[0]),
            reference,
            "{workers} workers: resumed campaign diverged from the single run"
        );
        // The healed journal alone now reproduces the full table too.
        let (healed, summary) =
            merge_mode_campaign_journals(std::slice::from_ref(&journal), &configs)
                .expect("healed merge");
        assert!(summary.complete);
        assert_eq!(render_campaign_table(&healed[0]), reference);
        paths.push(journal);
        cleanup(&paths);
    }
}

#[test]
fn table1_single_sharded_and_resumed_runs_are_byte_identical() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(12),
        opencl_sim::configuration(21),
    ];
    let options = campaign_options(0x7AB1E1);
    let kernels_per_mode = 2;
    let total_jobs = (GenMode::ALL.len() * kernels_per_mode) as u64;
    for workers in WORKER_COUNTS {
        let scheduler = Scheduler::new(workers);
        let reference = render_reliability_table(&classify_configurations_with(
            &scheduler,
            &configs,
            kernels_per_mode,
            &options,
        ));

        let mut paths = Vec::new();
        for index in 0..SHARDS {
            let path = temp_path(&format!("t1-{workers}-{index}"));
            classify_configurations_sharded(
                &scheduler,
                &configs,
                kernels_per_mode,
                &options,
                ShardSelect {
                    index,
                    count: SHARDS,
                },
                Some(&JournalOptions::create(&path)),
            )
            .expect("sharded classification");
            paths.push(path);
        }
        let (rows, summary) =
            merge_classification_journals(&paths, &configs).expect("journal merge");
        assert!(summary.complete);
        assert_eq!(
            render_reliability_table(&rows),
            reference,
            "{workers} workers: merged shard journals diverged from the single run"
        );

        // Kill mid-campaign, resume, compare.
        let journal = temp_path(&format!("t1-{workers}-resume"));
        classify_configurations_sharded(
            &scheduler,
            &configs,
            kernels_per_mode,
            &options,
            ShardSelect::whole(),
            Some(&JournalOptions::create(&journal)),
        )
        .expect("full journaled classification");
        kill_after(&journal, 5);
        let resumed = classify_configurations_sharded(
            &scheduler,
            &configs,
            kernels_per_mode,
            &options,
            ShardSelect::whole(),
            Some(&JournalOptions::resume(&journal)),
        )
        .expect("resumed classification");
        assert_eq!(resumed.metrics.jobs_resumed, 5);
        assert_eq!(resumed.metrics.jobs_replayed, total_jobs - 5);
        assert_eq!(
            render_reliability_table(&resumed.rows),
            reference,
            "{workers} workers: resumed classification diverged from the single run"
        );
        paths.push(journal);
        cleanup(&paths);
    }
}

#[test]
fn table5_single_sharded_and_resumed_runs_are_byte_identical() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
    let options = EmiCampaignOptions {
        bases: 3,
        variants_per_base: 4,
        campaign: campaign_options(0x7AB1E5),
    };
    for workers in WORKER_COUNTS {
        let scheduler = Scheduler::new(workers);
        let single = run_emi_campaign_with(&scheduler, &configs, &options);
        assert!(single.bases > 0, "liveness filtering accepted no bases");
        let reference = render_emi_table(&single);

        let mut tally: Option<EmiTally> = None;
        let mut paths = Vec::new();
        for index in 0..SHARDS.min(single.bases as u32) {
            let count = SHARDS.min(single.bases as u32);
            let path = temp_path(&format!("t5-{workers}-{index}"));
            let shard = run_emi_campaign_sharded(
                &scheduler,
                &configs,
                &options,
                ShardSelect { index, count },
                Some(&JournalOptions::create(&path)),
            )
            .expect("sharded EMI campaign");
            assert_eq!(shard.total_bases, single.bases);
            match &mut tally {
                None => tally = Some(shard.tally),
                Some(t) => t.merge(shard.tally),
            }
            paths.push(path);
        }
        let merged = fuzz_harness::EmiCampaignResult {
            bases: single.bases,
            variants_per_base: single.variants_per_base,
            labels: single.labels.clone(),
            stats: tally.expect("shards ran").per_target,
        };
        assert_eq!(
            render_emi_table(&merged),
            reference,
            "{workers} workers: merged shard tallies diverged from the single run"
        );
        let (from_journals, summary) =
            merge_emi_campaign_journals(&paths, &configs).expect("journal merge");
        assert!(summary.complete);
        assert_eq!(from_journals.bases, single.bases);
        assert_eq!(from_journals.variants_per_base, single.variants_per_base);
        assert_eq!(
            render_emi_table(&from_journals),
            reference,
            "{workers} workers: journal-refolded tables diverged from the single run"
        );

        // Kill after the first judged base, resume, compare.
        let journal = temp_path(&format!("t5-{workers}-resume"));
        run_emi_campaign_sharded(
            &scheduler,
            &configs,
            &options,
            ShardSelect::whole(),
            Some(&JournalOptions::create(&journal)),
        )
        .expect("full journaled EMI campaign");
        kill_after(&journal, 1);
        let resumed = run_emi_campaign_sharded(
            &scheduler,
            &configs,
            &options,
            ShardSelect::whole(),
            Some(&JournalOptions::resume(&journal)),
        )
        .expect("resumed EMI campaign");
        assert_eq!(resumed.metrics.jobs_resumed, 1);
        assert_eq!(
            resumed.metrics.jobs_resumed + resumed.metrics.jobs_replayed,
            single.bases as u64
        );
        assert_eq!(
            render_emi_table(&resumed.result),
            reference,
            "{workers} workers: resumed EMI campaign diverged from the single run"
        );
        paths.push(journal);
        cleanup(&paths);
    }
}

#[test]
fn concurrent_shards_sharing_one_store_directory_stay_byte_identical() {
    // Three shard runs race on separate threads, each holding its own
    // `OutcomeStore` handle over the same directory — the in-process model
    // of three shard *processes* sharing one store, racing their reads,
    // atomic-rename writes and overwrites.  The merged table must match a
    // store-less single run byte for byte, and a warm follow-up run over
    // the populated store must match it again.
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(19),
    ];
    let options = campaign_options(0x570BE);
    let modes = [GenMode::Barrier];
    let dir = std::env::temp_dir().join(format!("clfuzz-shard-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reference = render_campaign_table(&run_mode_campaign_with(
        &Scheduler::sequential(),
        GenMode::Barrier,
        &configs,
        &options,
    ));

    let with_store = |store: Arc<OutcomeStore>| CampaignOptions {
        exec: ExecOptions {
            store: Some(store),
            ..options.exec.clone()
        },
        ..options.clone()
    };
    let tallies: Vec<MultiModeTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|index| {
                let (configs, modes, dir) = (&configs, &modes, &dir);
                let with_store = &with_store;
                scope.spawn(move || {
                    let store =
                        Arc::new(OutcomeStore::open_with_cap(dir, u64::MAX).expect("open store"));
                    run_modes_campaign_sharded(
                        &Scheduler::new(2),
                        modes,
                        configs,
                        &with_store(store),
                        ShardSelect {
                            index,
                            count: SHARDS,
                        },
                        None,
                    )
                    .expect("sharded campaign with store")
                    .tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread"))
            .collect()
    });
    let mut tally: Option<MultiModeTally> = None;
    for shard_tally in tallies {
        match &mut tally {
            None => tally = Some(shard_tally),
            Some(t) => t.merge(shard_tally),
        }
    }
    let merged_tally = tally.expect("shards ran");
    let merged = fuzz_harness::CampaignResult {
        mode: GenMode::Barrier,
        kernels: merged_tally.per_mode[0].kernels(),
        targets: fuzz_harness::targets_for(&configs),
        stats: merged_tally.per_mode[0].per_target.clone(),
    };
    assert_eq!(
        render_campaign_table(&merged),
        reference,
        "concurrent shards sharing one store diverged from the single run"
    );

    // Warm re-run over the store the racing shards populated.
    let warm_store = Arc::new(OutcomeStore::open_with_cap(&dir, u64::MAX).expect("reopen store"));
    let warm = render_campaign_table(&run_mode_campaign_with(
        &Scheduler::new(3),
        GenMode::Barrier,
        &configs,
        &with_store(Arc::clone(&warm_store)),
    ));
    assert_eq!(warm, reference, "warm store re-run diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journals_are_self_describing_and_versioned() {
    // A journal written by a campaign driver carries the format version,
    // campaign descriptor, seed, job-space size and shard coordinates.
    let configs = vec![opencl_sim::configuration(1)];
    let options = campaign_options(0xD0C);
    let path = temp_path("header");
    run_modes_campaign_sharded(
        &Scheduler::sequential(),
        &[GenMode::Basic],
        &configs,
        &options,
        ShardSelect { index: 1, count: 2 },
        Some(&JournalOptions::create(&path)),
    )
    .expect("journaled campaign");
    let loaded = load_journal(&path).expect("load journal");
    assert!(loaded.header.campaign.starts_with("modes:BASIC:k8:"));
    assert_eq!(loaded.header.campaign_seed, 0xD0C);
    assert_eq!(loaded.header.total_jobs, options.kernels as u64);
    assert_eq!(loaded.header.shard_index, 1);
    assert_eq!(loaded.header.shard_count, 2);
    assert_eq!(loaded.records.len(), 4, "shard 1/2 of 8 jobs holds 4");
    let first_line = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    assert!(first_line.starts_with("CLFUZZ-JOURNAL 2 "));
    cleanup(&[path]);
}
