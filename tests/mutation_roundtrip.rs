//! The mutator's validity contract, differentially checked over 500+
//! seeded mutation chains: every mutant still type-checks, prints
//! deterministically to structurally plausible OpenCL C (there is no
//! OpenCL C parser in this repository, so the print → reparse round-trip
//! is approximated the same way `tests/printer_roundtrip.rs` does), and
//! still passes the `clsmith::validate` static prefilter whenever its
//! parent did — so feedback-guided corpus campaigns never evolve a lineage
//! into kernels the prefilter would refuse.  A deterministic subset of the
//! final mutants additionally executes on both interpreter tiers, which
//! must agree on results and race verdicts.

use clc_interp::{ExecutionTier, LaunchOptions};
use clsmith::{generate, job_seed, mutate, GenMode, GeneratorOptions, MutationKind};

const CHAINS: u64 = 72;
const CHAIN_LEN: u64 = 7;

fn chain_base(case: u64) -> (GenMode, u64, clc::Program) {
    let pick = job_seed(0x4D57, case);
    let seed = pick % 5000;
    let mode = GenMode::ALL[(pick >> 32) as usize % GenMode::ALL.len()];
    let opts = GeneratorOptions {
        min_threads: 16,
        max_threads: 48,
        ..GeneratorOptions::new(mode, seed)
    };
    (mode, seed, generate(&opts))
}

#[test]
fn mutation_chains_preserve_validity_and_prefilter_certification() {
    let mut mutants = 0usize;
    let mut kinds_seen = std::collections::BTreeSet::new();
    let mut certified_links = 0usize;
    for case in 0..CHAINS {
        let (mode, seed, base) = chain_base(case);
        let mut current = base;
        for step in 0..CHAIN_LEN {
            let mseed = job_seed(seed, step + 1);
            let Some((mutant, mutation)) = mutate(&current, mseed) else {
                continue;
            };
            mutants += 1;
            kinds_seen.insert(mutation.kind.name());
            let context = format!("mode {mode} seed {seed} step {step} ({mutation:?})");

            // Seeded mutation is a function: same (program, seed) in, same
            // mutant out.
            let (again, mutation_again) = mutate(&current, mseed).expect("replay applies");
            assert_eq!(mutation, mutation_again, "{context}: site drifted");
            assert_eq!(
                clc::print_program(&mutant),
                clc::print_program(&again),
                "{context}: mutation is not deterministic"
            );

            // The mutant is still a well-typed program...
            clc::check_program(&mutant)
                .unwrap_or_else(|e| panic!("{context}: mutant fails type-check: {e:?}"));

            // ...that prints deterministically to plausible OpenCL C.
            let printed = clc::print_program(&mutant);
            assert_eq!(printed, clc::print_program(&mutant), "{context}");
            assert!(printed.contains("kernel void entry"), "{context}");
            assert!(printed.contains("struct Globals"), "{context}");

            // The static prefilter keeps certifying what it certified
            // before the rewrite: a guided lineage can never mutate itself
            // out of the campaign's prefilter.
            if clsmith::validate(&current).is_certified() {
                certified_links += 1;
                assert!(
                    clsmith::validate(&mutant).is_certified(),
                    "{context}: mutation broke prefilter certification:\n{printed}"
                );
            }
            current = mutant;
        }
    }
    assert!(
        mutants >= 500,
        "differential sweep too small: {mutants} mutants"
    );
    assert!(
        certified_links > 400,
        "certification preservation barely exercised: {certified_links} certified links"
    );
    assert!(
        kinds_seen.len() == MutationKind::ALL.len(),
        "mutation grammar not fully exercised: {kinds_seen:?}"
    );
}

#[test]
fn mutated_kernels_agree_across_interpreter_tiers() {
    let mut compared = 0usize;
    for case in (0..CHAINS).step_by(8) {
        let (mode, seed, base) = chain_base(case);
        let mut current = base;
        for step in 0..CHAIN_LEN {
            if let Some((mutant, _)) = mutate(&current, job_seed(seed, step + 1)) {
                current = mutant;
            }
        }
        let launch = |tier| {
            clc_interp::launch(
                &current,
                &LaunchOptions {
                    tier,
                    detect_races: true,
                    ..LaunchOptions::default()
                },
            )
        };
        match (
            launch(ExecutionTier::TreeWalk),
            launch(ExecutionTier::Bytecode),
        ) {
            (Ok(tree), Ok(vm)) => {
                assert_eq!(
                    tree.result_string, vm.result_string,
                    "mode {mode} seed {seed}: tiers disagree on the mutated kernel"
                );
                assert_eq!(
                    tree.race, vm.race,
                    "mode {mode} seed {seed}: tiers disagree on the race verdict"
                );
                compared += 1;
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "mode {mode} seed {seed}: tiers fail differently"
                );
            }
            (tree, vm) => panic!(
                "mode {mode} seed {seed}: one tier failed where the other ran: \
                 tree={tree:?} vm={vm:?}"
            ),
        }
    }
    assert!(compared >= 5, "tier sweep too small: {compared} kernels");
}
