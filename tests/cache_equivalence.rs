//! The deduplicated execution layer's headline guarantee: memoising the
//! execution phase by `(fingerprint, exec-relevant options)` NEVER changes
//! campaign results.  Every campaign family is run with the memo forced off
//! (a cold compile + launch per target, the historical behaviour) and with
//! it on, and the rendered tables must be **bit-identical** — and the same
//! holds for the on-disk outcome store: store off, cold store and warm
//! store must render identical tables on both interpreter tiers.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{
    classify_configurations_with, render_campaign_table, render_emi_table, run_emi_campaign_with,
    run_mode_campaign_with, CampaignOptions, EmiCampaignOptions, Scheduler,
};
use opencl_sim::{ExecOptions, ExecutionTier, OutcomeStore};
use std::sync::Arc;

fn options(memoize: bool, seed_offset: u64) -> CampaignOptions {
    CampaignOptions {
        kernels: 8,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions {
            memoize,
            ..ExecOptions::default()
        },
        seed_offset,
        prefilter: false,
    }
}

#[test]
fn table4_mode_campaign_is_bit_identical_with_memo_off_and_on() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(14),
        opencl_sim::configuration(19),
    ];
    let scheduler = Scheduler::sequential();
    let cold = run_mode_campaign_with(&scheduler, GenMode::Barrier, &configs, &options(false, 42));
    let memoized =
        run_mode_campaign_with(&scheduler, GenMode::Barrier, &configs, &options(true, 42));
    assert_eq!(cold, memoized, "memoisation changed the campaign result");
    assert_eq!(
        render_campaign_table(&cold),
        render_campaign_table(&memoized),
        "memoisation changed the rendered Table 4"
    );
}

#[test]
fn table1_classification_is_bit_identical_with_memo_off_and_on() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(12),
        opencl_sim::configuration(21),
    ];
    let scheduler = Scheduler::sequential();
    let cold = classify_configurations_with(&scheduler, &configs, 2, &options(false, 7));
    let memoized = classify_configurations_with(&scheduler, &configs, 2, &options(true, 7));
    assert_eq!(cold.len(), memoized.len());
    for (c, m) in cold.iter().zip(&memoized) {
        assert_eq!(c.config.id, m.config.id);
        assert_eq!(
            c.failure_fraction.to_bits(),
            m.failure_fraction.to_bits(),
            "memoisation changed configuration {}'s failure fraction",
            c.config.id
        );
        assert_eq!(c.above_threshold, m.above_threshold);
    }
}

#[test]
fn table5_emi_campaign_is_bit_identical_with_memo_off_and_on() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
    let emi_options = |memoize: bool| EmiCampaignOptions {
        bases: 2,
        variants_per_base: 6,
        campaign: options(memoize, 11),
    };
    let cold = run_emi_campaign_with(&Scheduler::sequential(), &configs, &emi_options(false));
    let memoized = run_emi_campaign_with(&Scheduler::sequential(), &configs, &emi_options(true));
    assert_eq!(cold, memoized, "memoisation changed the EMI campaign");
    assert_eq!(
        render_emi_table(&cold),
        render_emi_table(&memoized),
        "memoisation changed the rendered Table 5"
    );
}

#[test]
fn tables_are_bit_identical_with_store_off_cold_and_warm_on_both_tiers() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(19),
    ];
    let scheduler = Scheduler::sequential();
    for tier in ExecutionTier::ALL {
        let dir = std::env::temp_dir().join(format!(
            "clfuzz-store-equiv-{}-{}",
            std::process::id(),
            tier.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let run = |store: Option<Arc<OutcomeStore>>| {
            // Each pass starts process-cold, so the only state carried
            // between passes is the on-disk store itself.
            opencl_sim::reset_shared_outcome_cache();
            let options = CampaignOptions {
                kernels: 6,
                generator: GeneratorOptions {
                    min_threads: 16,
                    max_threads: 48,
                    ..GeneratorOptions::default()
                },
                exec: ExecOptions {
                    tier,
                    store,
                    ..ExecOptions::default()
                },
                seed_offset: 0x5702E,
                prefilter: false,
            };
            render_campaign_table(&run_mode_campaign_with(
                &scheduler,
                GenMode::Basic,
                &configs,
                &options,
            ))
        };
        let off = run(None);
        let cold_store = Arc::new(OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap());
        let cold = run(Some(Arc::clone(&cold_store)));
        assert!(
            cold_store.stats().writes > 0,
            "cold pass must populate the store"
        );
        // A second handle over the same directory models a fresh process.
        let warm_store = Arc::new(OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap());
        let warm = run(Some(Arc::clone(&warm_store)));
        assert_eq!(off, cold, "{}: a cold store changed the table", tier.name());
        assert_eq!(off, warm, "{}: a warm store changed the table", tier.name());
        assert!(
            warm_store.stats().hits > 0,
            "warm pass must serve outcomes from the store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn memoised_campaigns_actually_deduplicate_launches() {
    // Not just correct — the memo must also *work*: across a small
    // single-kernel fan-out over every configuration, real launches must
    // fall well below the target count.
    let program = clsmith::generate(&GeneratorOptions {
        min_threads: 16,
        max_threads: 32,
        ..GeneratorOptions::new(GenMode::Basic, 5)
    });
    let targets = fuzz_harness::targets_for(&opencl_sim::all_configurations());
    assert_eq!(targets.len(), 42);
    let session = opencl_sim::Session::new(&program);
    fuzz_harness::run_on_targets_session(&session, &targets, &ExecOptions::default());
    let stats = session.memo().stats();
    assert_eq!(stats.requests, 42);
    assert!(
        stats.launches <= stats.requests / 2,
        "expected ≤ half the targets to need a real launch, got {stats:?}"
    );
}
