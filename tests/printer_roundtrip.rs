//! Cross-crate property tests over printed source: every generated program
//! prints to plausible OpenCL C, and printing is deterministic.
//!
//! Also pins the static analyzer to the printed form.  There is no OpenCL C
//! parser in this repository, so a literal print → reparse → re-analyze
//! round-trip is not expressible; the test approximates it from both ends
//! instead: analysis verdicts must be deterministic across repeated runs
//! over the same AST (the analyzer keys on structure, not allocation
//! order), and every diagnostic excerpt the analyzer emits must appear
//! verbatim in the printed source — i.e. the report only ever talks about
//! code a reader can find in the kernel text.

use clsmith::{generate, job_seed, GenMode, GeneratorOptions};

#[test]
fn printed_source_is_stable_and_contains_kernel_structure() {
    // A deterministic spread of pseudo-random (seed, mode) cases.
    for case in 0..16u64 {
        let pick = job_seed(0x9217, case);
        let seed = pick % 5000;
        let mode = GenMode::ALL[(pick >> 32) as usize % 6];
        let opts = GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::new(mode, seed)
        };
        let program = generate(&opts);
        let a = clc::print_program(&program);
        let b = clc::print_program(&program);
        assert_eq!(
            a, b,
            "mode {mode} seed {seed}: printing is not deterministic"
        );
        assert!(a.contains("kernel void entry"), "mode {mode} seed {seed}");
        assert!(
            a.contains("get_global_id") || a.contains("get_global_size"),
            "mode {mode} seed {seed}"
        );
        if mode.uses_barriers() {
            assert!(a.contains("barrier("), "mode {mode} seed {seed}");
        }
        // The struct-heavy nature of CLsmith programs (§4.1).
        assert!(a.contains("struct Globals"), "mode {mode} seed {seed}");
    }
}

/// Expected printed-source substrings for one excerpt component.  Race
/// excerpts are `site <-> site` pairs of printer-derived expressions;
/// divergence excerpts are fixed tokens; synthetic sites (escaped pointers,
/// EMI guards) have no verbatim printed form and are skipped.
fn excerpt_expectations(component: &str) -> Vec<&str> {
    if component.contains(" escapes") || component.starts_with("EMI guard") {
        return Vec::new();
    }
    match component {
        "barrier(...)" => vec!["barrier("],
        "break/continue" => Vec::new(), // either token may have produced it
        other => vec![other],
    }
}

/// Analysis verdicts are pinned to the *printed* form of the program.
///
/// With no OpenCL C parser in the repository a print → reparse → re-analyze
/// round-trip cannot be stated literally, so this checks the two halves
/// that are expressible: re-analyzing the same AST yields the identical
/// normalized report (verdict, summary, flagged objects, pair list — the
/// analyzer is deterministic, so any parse-faithful reconstruction would
/// too), and every diagnostic excerpt appears verbatim in the printed
/// source, so the report never cites code the printed kernel doesn't
/// contain.
#[test]
fn analysis_verdicts_are_printer_stable() {
    let mut diagnostics_seen = 0usize;
    for case in 0..24u64 {
        let pick = job_seed(0xA11A, case);
        let seed = pick % 5000;
        let mode = GenMode::ALL[(pick >> 32) as usize % 6];
        let opts = GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::new(mode, seed)
        };
        let program = generate(&opts);
        let source = clc::print_program(&program);
        let first = clsmith::validate(&program);
        let second = clsmith::validate(&program);
        assert_eq!(
            first, second,
            "mode {mode} seed {seed}: analysis is not deterministic"
        );
        assert_eq!(first.verdict(), second.verdict());
        assert_eq!(first.summary(), second.summary());
        for diag in &first.diagnostics {
            diagnostics_seen += 1;
            for component in diag.excerpt.split(" <-> ") {
                for needle in excerpt_expectations(component) {
                    assert!(
                        source.contains(needle),
                        "mode {mode} seed {seed}: excerpt {needle:?} of {:?} not in \
                         printed source:\n{source}",
                        diag.message
                    );
                }
            }
            if let Some(object) = &diag.object {
                assert!(
                    source.contains(object.as_str()),
                    "mode {mode} seed {seed}: flagged object {object} not in printed source"
                );
            }
        }
    }
    assert!(
        diagnostics_seen > 0,
        "no diagnostics across the sweep — excerpt pinning never ran"
    );
}
