//! Cross-crate property tests over printed source: every generated program
//! prints to plausible OpenCL C, and printing is deterministic.

use clsmith::{generate, job_seed, GenMode, GeneratorOptions};

#[test]
fn printed_source_is_stable_and_contains_kernel_structure() {
    // A deterministic spread of pseudo-random (seed, mode) cases.
    for case in 0..16u64 {
        let pick = job_seed(0x9217, case);
        let seed = pick % 5000;
        let mode = GenMode::ALL[(pick >> 32) as usize % 6];
        let opts = GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::new(mode, seed)
        };
        let program = generate(&opts);
        let a = clc::print_program(&program);
        let b = clc::print_program(&program);
        assert_eq!(
            a, b,
            "mode {mode} seed {seed}: printing is not deterministic"
        );
        assert!(a.contains("kernel void entry"), "mode {mode} seed {seed}");
        assert!(
            a.contains("get_global_id") || a.contains("get_global_size"),
            "mode {mode} seed {seed}"
        );
        if mode.uses_barriers() {
            assert!(a.contains("barrier("), "mode {mode} seed {seed}");
        }
        // The struct-heavy nature of CLsmith programs (§4.1).
        assert!(a.contains("struct Globals"), "mode {mode} seed {seed}");
    }
}
