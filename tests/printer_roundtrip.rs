//! Cross-crate property tests over printed source: every generated program
//! prints to plausible OpenCL C, and printing is deterministic.

use clsmith::{generate, GenMode, GeneratorOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn printed_source_is_stable_and_contains_kernel_structure(
        seed in 0u64..5000,
        mode_idx in 0usize..6,
    ) {
        let mode = GenMode::ALL[mode_idx];
        let opts = GeneratorOptions { min_threads: 16, max_threads: 48, ..GeneratorOptions::new(mode, seed) };
        let program = generate(&opts);
        let a = clc::print_program(&program);
        let b = clc::print_program(&program);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.contains("kernel void entry"));
        prop_assert!(a.contains("get_global_id") || a.contains("get_global_size"));
        if mode.uses_barriers() {
            prop_assert!(a.contains("barrier("));
        }
        // The struct-heavy nature of CLsmith programs (§4.1).
        prop_assert!(a.contains("struct Globals"));
    }
}
