//! The corpus campaign's determinism invariant (the feedback-loop
//! extension of `tests/shard_equivalence.rs`): for a fixed campaign seed,
//! the rendered guided-vs-blind table and the **canonical journal record
//! set** are bit-identical at 1, 3 and 8 workers, under both scheduler
//! modes (batch and pipelined stage hand-off), on both interpreter tiers.
//!
//! Journal *bytes* are deliberately not compared: `run_sharded` streams
//! records in completion order, which legitimately varies with worker
//! count.  The canonical set — job index → payload, which is what resume
//! and merge consume — must not.
//!
//! The runs intentionally share the process-wide outcome cache (no reset
//! between worker counts): a later run replays dynamic coverage from cache
//! entries populated by an earlier one, so this test also pins the
//! coverage-replays-identically property of the platform's cache levels.
//!
//! A 3-shard split merged via journals must also reproduce the whole-run
//! table byte for byte.

use fuzz_harness::shard::{JournalOptions, ShardSelect};
use fuzz_harness::{
    load_journal, merge_corpus_campaign_journals, render_corpus_table, run_corpus_campaign_sharded,
    CorpusOptions, Scheduler, SchedulerMode,
};
use opencl_sim::{ExecOptions, ExecutionTier};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const WORKER_COUNTS: [usize; 3] = [1, 3, 8];
const MODES: [SchedulerMode; 2] = [SchedulerMode::Batch, SchedulerMode::Pipelined];

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "clfuzz-corpus-determinism-{}-{name}.log",
        std::process::id()
    ))
}

fn corpus_options(tier: ExecutionTier) -> CorpusOptions {
    CorpusOptions {
        lineages: 2,
        chain: 3,
        generator: clsmith::GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..clsmith::GeneratorOptions::default()
        },
        exec: ExecOptions {
            tier,
            store: None,
            ..ExecOptions::default()
        },
        seed_offset: 0xC0FFEE,
    }
}

/// The canonical record set: job index → journal payload, independent of
/// the completion order the journal file physically records.
fn record_set(path: &Path) -> BTreeMap<u64, String> {
    load_journal(path)
        .expect("journal loads")
        .records
        .into_iter()
        .map(|r| (r.job_index, r.payload))
        .collect()
}

#[test]
fn corpus_campaign_is_bit_identical_across_workers_modes_and_tiers() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(19),
    ];
    let mut cross_tier_tables: Vec<String> = Vec::new();
    let mut paths = Vec::new();
    for tier in ExecutionTier::ALL {
        let options = corpus_options(tier);
        let mut reference: Option<(String, BTreeMap<u64, String>)> = None;
        for mode in MODES {
            for workers in WORKER_COUNTS {
                let scheduler = Scheduler::new(workers).with_mode(mode);
                let path = temp_path(&format!("{}-{}-{workers}", tier.name(), mode.name()));
                let run = run_corpus_campaign_sharded(
                    &scheduler,
                    &configs,
                    &options,
                    ShardSelect::whole(),
                    Some(&JournalOptions::create(&path)),
                )
                .expect("journaled corpus campaign");
                let table = render_corpus_table(&run.result);
                let records = record_set(&path);
                paths.push(path);
                match &reference {
                    None => reference = Some((table, records)),
                    Some((ref_table, ref_records)) => {
                        assert_eq!(
                            ref_table,
                            &table,
                            "{} {} {workers} worker(s): table diverged",
                            tier.name(),
                            mode.name()
                        );
                        assert_eq!(
                            ref_records,
                            &records,
                            "{} {} {workers} worker(s): journal record set diverged",
                            tier.name(),
                            mode.name()
                        );
                    }
                }
            }
        }
        let (table, records) = reference.expect("at least one run per tier");
        assert_eq!(
            records.len(),
            4,
            "2 lineages × 2 strategies must journal 4 records"
        );
        cross_tier_tables.push(table);
    }
    // Coverage is built from tier-stable signals only, so the whole table —
    // bug tallies *and* coverage/saturation rows — matches across tiers.
    assert_eq!(
        cross_tier_tables[0], cross_tier_tables[1],
        "corpus table diverged between interpreter tiers"
    );
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn corpus_shard_merge_matches_the_whole_run() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
    let options = corpus_options(ExecutionTier::Bytecode);
    let scheduler = Scheduler::new(3);
    let whole =
        run_corpus_campaign_sharded(&scheduler, &configs, &options, ShardSelect::whole(), None)
            .expect("whole corpus campaign");
    let reference = render_corpus_table(&whole.result);

    let mut paths = Vec::new();
    for index in 0..3u32 {
        let path = temp_path(&format!("shard-{index}"));
        run_corpus_campaign_sharded(
            &scheduler,
            &configs,
            &options,
            ShardSelect { index, count: 3 },
            Some(&JournalOptions::create(&path)),
        )
        .expect("sharded corpus campaign");
        paths.push(path);
    }
    let (merged, summary) =
        merge_corpus_campaign_journals(&paths, &configs).expect("merge corpus journals");
    assert!(summary.complete, "3 shards must cover the whole job space");
    assert_eq!(
        render_corpus_table(&merged),
        reference,
        "3-shard journal merge diverged from the whole run"
    );
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}
