//! Differential validation of the static analyzer against the dynamic race
//! detector, in the style of `tier_equivalence`: the repository's own
//! dynamic semantics are the oracle for the static semantics.
//!
//! Soundness contract, checked over 1000+ seeded kernels × schedules on
//! *both* interpreter tiers:
//!
//! 1. a kernel the analyzer certifies (race-free **and** divergence-free)
//!    must NEVER produce a dynamic race verdict or a dynamic
//!    barrier-divergence error, under any tier or schedule;
//! 2. every dynamic race must land on an object the analyzer flagged in a
//!    may-race / must-race access pair (`flagged_objects`).
//!
//! Plus non-vacuity checks (the campaign exercises both sides of the
//! contract) and crafted kernels where the expected verdicts are known.

use clc::expr::{BinOp, Expr, IdKind};
use clc::stmt::Stmt;
use clc::types::{AddressSpace, ScalarType, Type};
use clc::{BufferSpec, KernelDef, LaunchConfig, Program};
use clc_analyze::AnalysisReport;
use clc_interp::{launch, ExecutionTier, LaunchOptions, RuntimeError, Schedule};
use clsmith::{generate, GenMode, GeneratorOptions};

fn launch_opts(tier: ExecutionTier, schedule: Schedule) -> LaunchOptions {
    LaunchOptions {
        tier,
        detect_races: true,
        schedule,
        ..LaunchOptions::default()
    }
}

#[derive(Default)]
struct Counters {
    kernels: usize,
    certified: usize,
    dynamic_races: usize,
}

/// Checks the soundness contract for one program across both tiers and the
/// given schedules, returning whether any dynamic race was observed.
fn check_program(
    program: &Program,
    report: &AnalysisReport,
    schedules: &[Schedule],
    label: &str,
    counters: &mut Counters,
) {
    counters.kernels += 1;
    if report.is_certified() {
        counters.certified += 1;
    }
    for tier in [ExecutionTier::TreeWalk, ExecutionTier::Bytecode] {
        for &schedule in schedules {
            let outcome = launch(program, &launch_opts(tier, schedule));
            let race = match &outcome {
                Ok(result) => result.race.clone(),
                Err(RuntimeError::DataRace(r)) => Some(r.clone()),
                Err(RuntimeError::BarrierDivergence { group }) => {
                    assert!(
                        !report.divergence_free(),
                        "{label} [{tier:?} {schedule:?}]: dynamic barrier divergence \
                         (group {group}) on a kernel certified divergence-free:\n{}",
                        clc::print_program(program)
                    );
                    continue;
                }
                Err(_) => continue,
            };
            let Some(race) = race else { continue };
            counters.dynamic_races += 1;
            assert!(
                !report.is_certified(),
                "{label} [{tier:?} {schedule:?}]: dynamic race on {} in a kernel \
                 the analyzer certified race-free:\n{}",
                race.object,
                clc::print_program(program)
            );
            assert!(
                report.flagged_objects.contains(&race.object),
                "{label} [{tier:?} {schedule:?}]: dynamic race on object {} but the \
                 analyzer flagged only {:?}:\n{}",
                race.object,
                report.flagged_objects,
                clc::print_program(program)
            );
        }
    }
}

/// The keystone: 1050 seeded kernels (6 modes × 175 seeds) across both
/// tiers, with a shuffled-schedule pass on every fifth seed.
#[test]
fn analyzer_sound_against_dynamic_detector_on_seeded_kernels() {
    let mut counters = Counters::default();
    for mode in GenMode::ALL {
        for seed in 0..175u64 {
            let opts = GeneratorOptions {
                min_threads: 8,
                max_threads: 32,
                ..GeneratorOptions::new(mode, seed)
            };
            let program = generate(&opts);
            let report = clsmith::validate(&program);
            let schedules: &[Schedule] = if seed % 5 == 0 {
                &[
                    Schedule::Forward,
                    Schedule::Reverse,
                    Schedule::Shuffled(0x5EED ^ seed),
                ]
            } else {
                &[Schedule::Forward]
            };
            check_program(
                &program,
                &report,
                schedules,
                &format!("{} seed {seed}", mode.name()),
                &mut counters,
            );
        }
    }
    assert!(
        counters.kernels >= 1000,
        "campaign too small: {}",
        counters.kernels
    );
    // Non-vacuity: the analyzer must certify a substantial share of the
    // stream (otherwise the contract is trivially satisfied) ...
    assert!(
        counters.certified * 2 >= counters.kernels,
        "analyzer certified only {}/{} kernels — too conservative for the \
         differential to mean anything",
        counters.certified,
        counters.kernels
    );
    // ... and the dynamic side must have produced at least one race among
    // the uncertified kernels (GenMode::All at this thread range is known
    // to race for some seeds).
    assert!(
        counters.dynamic_races > 0,
        "no dynamic race in the whole campaign — the flagged-object check \
         never ran"
    );
}

/// EMI-enabled kernels go through the same contract (the `dead` buffer and
/// guard reads must not confuse the access collector).
#[test]
fn analyzer_sound_on_emi_kernels() {
    let mut counters = Counters::default();
    for seed in 0..40u64 {
        let opts = GeneratorOptions {
            min_threads: 8,
            max_threads: 32,
            ..GeneratorOptions::new(GenMode::All, 0xE31 + seed)
        }
        .with_emi();
        let program = generate(&opts);
        let report = clsmith::validate(&program);
        check_program(
            &program,
            &report,
            &[Schedule::Forward],
            &format!("EMI seed {seed}"),
            &mut counters,
        );
    }
}

/// A crafted kernel where every work-item writes cell 0: the analyzer must
/// refuse to certify it, the dynamic detector must race on both tiers, and
/// the raced object must be flagged.
#[test]
fn crafted_racy_kernel_is_flagged_and_races() {
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::single_group(8),
    );
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 8)];
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::index(Expr::var("out"), Expr::int(0)),
        Expr::IdQuery(IdKind::GlobalLinearId),
    )));
    let report = clsmith::validate(&program);
    assert!(!report.race_free(), "got: {}", report.summary());
    assert!(report.flagged_objects.contains("out"));

    let mut counters = Counters::default();
    check_program(
        &program,
        &report,
        &[Schedule::Forward],
        "crafted racy",
        &mut counters,
    );
    assert_eq!(
        counters.dynamic_races, 2,
        "expected a dynamic race on both tiers"
    );
}

/// A crafted kernel with a barrier under an identity-dependent condition:
/// the analyzer must report divergence (and the certificate must be
/// withheld), matching the dynamic divergence error.
#[test]
fn crafted_divergent_barrier_is_flagged() {
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::single_group(8),
    );
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 8)];
    program.kernel.body.push(Stmt::if_then(
        Expr::binary(
            BinOp::Lt,
            Expr::IdQuery(IdKind::LocalLinearId),
            Expr::lit(2, ScalarType::UInt),
        ),
        clc::Block::of(vec![Stmt::Barrier(clc::stmt::MemFence::Local)]),
    ));
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
        Expr::int(1),
    )));
    let report = clsmith::validate(&program);
    assert!(!report.divergence_free(), "got: {}", report.summary());
    assert!(!report.is_certified());
    assert_eq!(report.verdict(), "divergence");

    // Both tiers agree the kernel actually diverges.
    for tier in [ExecutionTier::TreeWalk, ExecutionTier::Bytecode] {
        let outcome = launch(&program, &launch_opts(tier, Schedule::Forward));
        assert!(
            matches!(outcome, Err(RuntimeError::BarrierDivergence { .. })),
            "expected dynamic divergence on {tier:?}, got {outcome:?}"
        );
    }
}

/// A kernel that writes thread-private cells through `get_global_linear_id`
/// must be certified, and stays race-free dynamically on both tiers.
#[test]
fn crafted_disjoint_kernel_is_certified() {
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::new([16, 1, 1], [4, 1, 1]).unwrap(),
    );
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 16)];
    // A private variable read after initialisation, plus a disjoint write.
    program.kernel.body.push(Stmt::decl(
        "x",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(3)),
    ));
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
        Expr::binary(
            BinOp::Add,
            Expr::var("x"),
            Expr::IdQuery(IdKind::GlobalLinearId),
        ),
    )));
    let report = clsmith::validate(&program);
    assert!(report.is_certified(), "got: {}", report.summary());
    assert!(report.race_free() && report.divergence_free());

    let mut counters = Counters::default();
    check_program(
        &program,
        &report,
        &[Schedule::Forward, Schedule::Reverse],
        "crafted disjoint",
        &mut counters,
    );
    assert_eq!(counters.dynamic_races, 0);
}

/// A private variable read before initialisation: the use-before-init pass
/// must flag it, mirroring the dynamic `UninitializedRead` error.
#[test]
fn crafted_uninit_read_is_flagged() {
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::single_group(4),
    );
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 4)];
    program.kernel.body.push(Stmt::Decl {
        name: "x".into(),
        ty: Type::Scalar(ScalarType::Int),
        space: AddressSpace::Private,
        volatile: false,
        init: None,
        init_list: None,
    });
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
        Expr::var("x"),
    )));
    let report = clsmith::validate(&program);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.kind == clc_analyze::DiagnosticKind::UseBeforeInit
                && d.object.as_deref() == Some("x")),
        "got: {}",
        report.summary()
    );
}

/// A constant subscript beyond the declared extent: definite out-of-bounds.
#[test]
fn crafted_out_of_bounds_is_flagged() {
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::single_group(4),
    );
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 4)];
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::index(Expr::var("out"), Expr::int(99)),
        Expr::int(1),
    )));
    let report = clsmith::validate(&program);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.kind == clc_analyze::DiagnosticKind::OutOfBounds),
        "got: {}",
        report.summary()
    );
}
