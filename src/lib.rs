//! # many-core-fuzzing — reproduction of *Many-Core Compiler Fuzzing* (PLDI 2015)
//!
//! This root crate exists to give the workspace-level integration tests
//! (`tests/`) and runnable walkthroughs (`examples/`) a Cargo home.  The
//! actual functionality lives in the member crates:
//!
//! * [`clc`] — the OpenCL C subset: AST, types, printer, analyses;
//! * [`clc_interp`] — the NDRange reference emulator;
//! * [`clsmith`] — the random kernel generator and EMI machinery;
//! * [`opencl_sim`] — the 21 simulated Table-1 configurations;
//! * [`fuzz_harness`] — campaign drivers and the parallel [`fuzz_harness::exec`]
//!   scheduler;
//! * [`clreduce`] — concurrency-aware test-case reduction;
//! * [`parboil_rodinia`] — the Table-2 benchmark miniatures.
//!
//! See the repository `README.md` for a map and usage instructions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use clc;
pub use clc_interp;
pub use clreduce;
pub use clsmith;
pub use fuzz_harness;
pub use opencl_sim;
pub use parboil_rodinia;
