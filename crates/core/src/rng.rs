//! Deterministic, dependency-free random number generation.
//!
//! Everything in this repository that consumes randomness — the CLsmith
//! generator, EMI pruning/injection, and the parallel campaign scheduler —
//! draws from this module, so a (seed, options) pair fully determines every
//! artefact regardless of platform, process or thread count.
//!
//! Two pieces:
//!
//! * [`Rng`] — a xoshiro256** stream seeded through SplitMix64, with the
//!   small sampling surface the generator needs (`gen_bool`, `gen_range`,
//!   [`SliceRandom::choose`], [`SliceRandom::shuffle`]);
//! * [`job_seed`] — the `campaign_seed → splitmix → job_seed` derivation
//!   used by the campaign scheduler: every job of a campaign gets an
//!   independent, reproducible seed that does not depend on which worker
//!   thread executes it or in which order jobs complete.

/// One step of the SplitMix64 sequence, advancing `state` and returning the
/// next output.  This is the standard seeding PRNG from Steele et al.,
/// "Fast splittable pseudorandom number generators" (OOPSLA 2014).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for job `job_index` of a campaign seeded with
/// `campaign_seed`.
///
/// The derivation hashes both inputs through SplitMix64, so consecutive job
/// indices produce statistically independent seeds (unlike `seed + index`,
/// which hands correlated low bits to the downstream generator) while
/// remaining a pure function of (campaign seed, job index) — the property
/// the scheduler's bit-identical-at-any-thread-count guarantee rests on.
pub fn job_seed(campaign_seed: u64, job_index: u64) -> u64 {
    let mut state = campaign_seed;
    let a = splitmix64(&mut state);
    state = a ^ job_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// A small, fast, deterministic PRNG (xoshiro256** by Blackman & Vigna),
/// seeded from a `u64` through SplitMix64.
///
/// Not cryptographically secure — it drives test-case generation, where the
/// requirements are reproducibility, speed and reasonable equidistribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random bits of mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform integer in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: RandRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` in `[0, n)` via the widening-multiply reduction.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// The next 128 random bits.
    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A uniform `u128` in `[0, n)` for spans that may exceed `u64`.
    fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        if n <= u64::MAX as u128 {
            self.below(n as u64) as u128
        } else {
            // Rejection sampling over the full 128-bit space.
            let zone = u128::MAX - (u128::MAX - n + 1) % n;
            loop {
                let wide = self.next_u128();
                if wide <= zone {
                    return wide % n;
                }
            }
        }
    }
}

/// A range that can be sampled uniformly from an [`Rng`]; implemented for
/// `Range` and `RangeInclusive` over the integer types the generator uses.
pub trait RandRange {
    /// The sampled integer type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_rand_range {
    ($($t:ty),*) => {$(
        impl RandRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                // All arithmetic is modular over u128 (two's complement), so
                // even full-domain i128/u128-adjacent ranges cannot overflow.
                let lo = self.start as i128 as u128;
                let span = (self.end as i128 as u128).wrapping_sub(lo);
                lo.wrapping_add(rng.below_u128(span)) as i128 as $t
            }
        }
        impl RandRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let lo = lo as i128 as u128;
                // A span that wraps to 0 covers the entire 128-bit domain;
                // sample raw bits instead of reducing modulo zero.
                let span = (hi as i128 as u128).wrapping_sub(lo).wrapping_add(1);
                let offset =
                    if span == 0 { rng.next_u128() } else { rng.below_u128(span) };
                lo.wrapping_add(offset) as i128 as $t
            }
        }
    )*};
}

impl_rand_range!(u8, u32, u64, usize, i32, i64, i128);

/// Random choice and shuffling over slices, mirroring the subset of
/// `rand::seq::SliceRandom` the generator relies on.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose(&self, rng: &mut Rng) -> Option<&Self::Item>;
    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Rng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.below(self.len() as u64) as usize])
        }
    }

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-128i128..=1024);
            assert!((-128..=1024).contains(&y));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_survives_extreme_domains() {
        let mut rng = Rng::seed_from_u64(17);
        // Full-domain inclusive ranges must not overflow the span arithmetic
        // (debug panic / silently-degenerate release sampling).
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..8 {
            distinct.insert(rng.gen_range(i128::MIN..=i128::MAX));
            distinct.insert(rng.gen_range(u64::MIN..=u64::MAX) as i128);
        }
        assert!(
            distinct.len() > 8,
            "full-domain sampling collapsed: {distinct:?}"
        );
        // Extremes of half-open ranges behave too.
        let x = rng.gen_range(i128::MIN..i128::MAX);
        assert!(x < i128::MAX);
        assert_eq!(rng.gen_range(u64::MAX - 1..u64::MAX), u64::MAX - 1);
    }

    #[test]
    fn gen_range_covers_the_whole_interval() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = Rng::seed_from_u64(11);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = Rng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10, 20, 30];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }

    #[test]
    fn job_seeds_are_independent_of_each_other() {
        let a = job_seed(1, 0);
        let b = job_seed(1, 1);
        let c = job_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Purely functional: same inputs, same seed.
        assert_eq!(a, job_seed(1, 0));
        // Nearby campaign seeds and job indices don't collide pairwise over a
        // small window (a weak but useful smoke test of the mixing).
        let mut seeds: Vec<u64> = (0..64)
            .flat_map(|s| (0..64).map(move |j| job_seed(s, j)))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64 * 64);
    }
}
