//! Structural sampling: the globals struct, extra struct types, helper
//! functions and local declarations (§4.1).

use super::*;

impl Generator {
    // ----- struct construction ------------------------------------------

    pub(super) fn make_globals_struct(&mut self, program: &mut Program) -> GlobalsInfo {
        let mut fields = Vec::new();
        let mut scalar_fields = Vec::new();
        let mut vector_fields = Vec::new();
        for i in 0..self.opts.global_fields {
            if self.opts.mode.uses_vectors() && self.rng.gen_bool(0.3) {
                let elem = self.pick_scalar_type();
                let width = *[VectorWidth::W2, VectorWidth::W4, VectorWidth::W8]
                    .choose(&mut self.rng)
                    .unwrap();
                let name = format!("gv{i}");
                fields.push(Field::new(name.clone(), Type::Vector(elem, width)));
                vector_fields.push((name, elem, width));
            } else {
                let ty = self.pick_scalar_type();
                let name = format!("gf{i}");
                fields.push(Field::new(name.clone(), Type::Scalar(ty)));
                scalar_fields.push((name, ty));
            }
        }
        let id = program.add_struct(StructDef::new("Globals", fields));
        GlobalsInfo {
            id,
            scalar_fields,
            vector_fields,
        }
    }

    pub(super) fn make_extra_structs(&mut self, program: &mut Program) -> Vec<StructId> {
        let mut ids = Vec::new();
        for i in 0..self.opts.extra_structs {
            let mut fields = Vec::new();
            let field_count = self.rng.gen_range(2..=4);
            for j in 0..field_count {
                // Bias the first two fields towards the char-then-wider
                // layout that trips the AMD struct bug (Figure 1(a)).
                let ty = if j == 0 && self.rng.gen_bool(0.4) {
                    ScalarType::Char
                } else if j == 1 && self.rng.gen_bool(0.4) {
                    *[ScalarType::Short, ScalarType::Int, ScalarType::Long]
                        .choose(&mut self.rng)
                        .unwrap()
                } else {
                    self.pick_scalar_type()
                };
                let volatile = self.rng.gen_bool(0.1);
                let field_ty = if self.opts.mode.uses_vectors() && self.rng.gen_bool(0.15) {
                    Type::Vector(self.pick_scalar_type(), VectorWidth::W2)
                } else {
                    Type::Scalar(ty)
                };
                let field = if volatile {
                    Field::volatile(format!("m{j}"), field_ty)
                } else {
                    Field::new(format!("m{j}"), field_ty)
                };
                fields.push(field);
            }
            let is_union = self.rng.gen_bool(0.25);
            let name = format!("S{i}");
            let def = if is_union {
                StructDef::union(name, fields)
            } else {
                StructDef::new(name, fields)
            };
            ids.push(program.add_struct(def));
        }
        ids
    }

    // ----- helper functions -----------------------------------------------

    pub(super) fn make_helper_functions(
        &mut self,
        program: &mut Program,
        globals: &GlobalsInfo,
        _extra: &[StructId],
    ) {
        for i in 0..self.opts.helper_functions {
            let mut ctx = GenCtx::helper();
            let ret_ty = self.pick_scalar_type();
            let param_ty = self.pick_scalar_type();
            ctx.scalars.push(("p0".into(), param_ty));
            let mut body = Block::new();
            // A couple of locals.
            for _ in 0..2 {
                body.push(self.scalar_local_decl(&mut ctx));
            }
            let stmt_count = self.rng.gen_range(2..=self.opts.block_statements.max(3));
            for _ in 0..stmt_count {
                let stmt = self.gen_stmt(&mut ctx, program, globals, None, 1);
                body.push(stmt);
            }
            body.push(Stmt::Return(Some(
                self.gen_scalar_expr(&mut ctx, globals, 0),
            )));
            let forward_declared = self.rng.gen_bool(0.3);
            program.functions.push(FunctionDef {
                name: format!("func_{i}"),
                ret: Some(Type::Scalar(ret_ty)),
                params: vec![
                    Param::new(
                        "gp",
                        Type::Struct(globals.id).pointer_to(AddressSpace::Private),
                    ),
                    Param::new("p0", Type::Scalar(param_ty)),
                ],
                body,
                forward_declared,
                noinline: false,
            });
        }
    }

    // ----- declarations ----------------------------------------------------

    pub(super) fn globals_decl(&mut self, globals: &GlobalsInfo) -> Stmt {
        let mut items = Vec::new();
        for (_, ty) in &globals.scalar_fields {
            items.push(Initializer::Expr(self.literal(*ty)));
        }
        for (_, elem, width) in &globals.vector_fields {
            let parts = (0..width.lanes()).map(|_| self.literal(*elem)).collect();
            items.push(Initializer::Expr(Expr::VectorLit {
                elem: *elem,
                width: *width,
                parts,
            }));
        }
        // Field order in the struct definition is scalars interleaved with
        // vectors exactly as constructed in `make_globals_struct`; rebuild
        // the initialiser in declaration order instead.
        let mut ordered = Vec::new();
        let mut si = 0usize;
        let mut vi = 0usize;
        for i in 0..self.opts.global_fields {
            let scalar_name = format!("gf{i}");
            if globals.scalar_fields.iter().any(|(n, _)| *n == scalar_name) {
                ordered.push(items[si].clone());
                si += 1;
            } else {
                ordered.push(items[globals.scalar_fields.len() + vi].clone());
                vi += 1;
            }
        }
        Stmt::decl_init_list("g", Type::Struct(globals.id), Initializer::List(ordered))
    }

    pub(super) fn scalar_local_decl(&mut self, ctx: &mut GenCtx) -> Stmt {
        let ty = self.pick_scalar_type();
        let name = self.fresh("l");
        ctx.scalars.push((name.clone(), ty));
        Stmt::decl(name, Type::Scalar(ty), Some(self.literal(ty)))
    }

    pub(super) fn vector_local_decl(&mut self, ctx: &mut GenCtx) -> Stmt {
        let elem = self.pick_scalar_type();
        let width = *[
            VectorWidth::W2,
            VectorWidth::W4,
            VectorWidth::W8,
            VectorWidth::W16,
        ]
        .choose(&mut self.rng)
        .unwrap();
        let name = self.fresh("v");
        ctx.vectors.push((name.clone(), elem, width));
        let parts = (0..width.lanes()).map(|_| self.literal(elem)).collect();
        Stmt::decl(
            name,
            Type::Vector(elem, width),
            Some(Expr::VectorLit { elem, width, parts }),
        )
    }

    pub(super) fn struct_local_decl(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        sid: StructId,
    ) -> (Stmt, Vec<Stmt>) {
        let def = program.struct_def(sid).clone();
        let name = self.fresh("s");
        ctx.structs.push((name.clone(), sid));
        let init_fields: Vec<Initializer> = if def.is_union {
            vec![self.field_initializer(&def.fields[0])]
        } else {
            def.fields
                .iter()
                .map(|f| self.field_initializer(f))
                .collect()
        };
        let decl = Stmt::decl_init_list(
            name.clone(),
            Type::Struct(sid),
            Initializer::List(init_fields),
        );
        let mut extras = Vec::new();
        // Sometimes add a pointer alias, exercising `->` accesses.
        if self.rng.gen_bool(0.6) {
            let pname = self.fresh("p");
            ctx.struct_ptrs.push((pname.clone(), sid));
            extras.push(Stmt::decl(
                pname,
                Type::Struct(sid).pointer_to(AddressSpace::Private),
                Some(Expr::addr_of(Expr::var(name.clone()))),
            ));
        }
        // Sometimes declare a sibling of the same type and copy it over,
        // exercising whole-struct assignment (cf. Figures 1(b) and 1(f)).
        if self.rng.gen_bool(0.4) {
            let sibling = self.fresh("t");
            let init_fields: Vec<Initializer> = if def.is_union {
                vec![self.field_initializer(&def.fields[0])]
            } else {
                def.fields
                    .iter()
                    .map(|f| self.field_initializer(f))
                    .collect()
            };
            ctx.structs.push((sibling.clone(), sid));
            extras.push(Stmt::decl_init_list(
                sibling.clone(),
                Type::Struct(sid),
                Initializer::List(init_fields),
            ));
            extras.push(Stmt::assign(Expr::var(name), Expr::var(sibling)));
        }
        (decl, extras)
    }

    pub(super) fn field_initializer(&mut self, field: &Field) -> Initializer {
        match &field.ty {
            Type::Scalar(s) => Initializer::Expr(self.literal(*s)),
            Type::Vector(e, w) => {
                let parts = (0..w.lanes()).map(|_| self.literal(*e)).collect();
                Initializer::Expr(Expr::VectorLit {
                    elem: *e,
                    width: *w,
                    parts,
                })
            }
            Type::Array(elem, len) => {
                let inner = Field::new("elem", (**elem).clone());
                Initializer::List((0..*len).map(|_| self.field_initializer(&inner)).collect())
            }
            Type::Struct(_) => Initializer::List(vec![Initializer::Expr(Expr::int(0))]),
            Type::Pointer(..) => Initializer::Expr(Expr::int(0)),
        }
    }
}
