//! The CLsmith random kernel generator (§4 of the paper).
//!
//! Programs are generated type-directed and by construction free of
//! undefined behaviour and nondeterminism:
//!
//! * all arithmetic that could overflow, divide by zero or shift out of
//!   range goes through the safe-math builtins (§4.1);
//! * work-item ids never appear in generator-chosen expressions — they are
//!   only used by the fixed communication idioms (§4.2, "Avoiding barrier
//!   divergence");
//! * barriers are only emitted at the top level of the kernel body, so no
//!   divergent control flow can surround them;
//! * every local variable is initialised at its declaration.
//!
//! The per-thread "globals struct" mirrors CLsmith's treatment of Csmith
//! globals (§4.1): OpenCL has no program-scope variables, so would-be
//! globals become fields of a struct that is passed by reference to every
//! helper function.  This is what makes CLsmith programs struct-heavy and
//! biased towards struct miscompilations, which the paper discusses at
//! length.

use crate::options::{EmiOptions, GeneratorOptions};
use crate::rng::{Rng, SliceRandom};
use clc::expr::{AssignOp, BinOp, Builtin, Expr, IdKind};
use clc::stmt::{Block, EmiBlock, Initializer, MemFence, Stmt};
use clc::types::{AddressSpace, Field, ScalarType, StructDef, StructId, Type, VectorWidth};
use clc::{BufferInit, BufferSpec, FunctionDef, KernelDef, LaunchConfig, Param, Program};

// Note on ATOMIC SECTION mode: the paper equips each group with a randomly
// sized pool of (counter, special value) pairs and lets sections pick a pair
// at random (§4.2).  If two sections share a counter, which section's body a
// given counter value triggers becomes schedule dependent — almost certainly
// the "bug in the implementation of atomic sections" that forced the authors
// to discard 1563 ATOMIC SECTION and 1622 ALL tests (§7.3).  We therefore give
// every section its own (counter, special value) pair.

/// Generates one random program from the given options.
///
/// The same options (including the seed) always produce the same program.
pub fn generate(options: &GeneratorOptions) -> Program {
    Generator::new(options.clone()).generate()
}

/// A convenience wrapper that pairs generation with its options.
#[derive(Debug)]
pub struct Generator {
    opts: GeneratorOptions,
    rng: Rng,
    name_counter: usize,
}

/// What the current function uses to reach the globals struct.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GlobalsAccess {
    /// Kernel scope: a local value named `g`.
    Direct,
    /// Helper function scope: a pointer parameter named `gp`.
    ViaPointer,
}

/// Generation-time symbol pools for one function body.
#[derive(Debug, Clone)]
struct GenCtx {
    scalars: Vec<(String, ScalarType)>,
    vectors: Vec<(String, ScalarType, VectorWidth)>,
    /// Struct-typed locals (name, struct id).
    structs: Vec<(String, StructId)>,
    /// Pointer-to-struct locals (name, pointee struct id).
    struct_ptrs: Vec<(String, StructId)>,
    globals: GlobalsAccess,
    /// Whether we are generating inside a helper function (restricts calls).
    in_helper: bool,
    /// Whether the statements being generated are inside an EMI block (the
    /// code is dead, so jumps and heavier nesting are allowed).
    in_emi: bool,
    /// Whether we are directly inside a loop (break/continue are legal).
    in_loop: bool,
}

impl GenCtx {
    fn kernel() -> GenCtx {
        GenCtx {
            scalars: Vec::new(),
            vectors: Vec::new(),
            structs: Vec::new(),
            struct_ptrs: Vec::new(),
            globals: GlobalsAccess::Direct,
            in_helper: false,
            in_emi: false,
            in_loop: false,
        }
    }

    fn helper() -> GenCtx {
        GenCtx {
            globals: GlobalsAccess::ViaPointer,
            in_helper: true,
            ..GenCtx::kernel()
        }
    }

    fn checkpoint(&self) -> (usize, usize, usize, usize) {
        (
            self.scalars.len(),
            self.vectors.len(),
            self.structs.len(),
            self.struct_ptrs.len(),
        )
    }

    fn restore(&mut self, cp: (usize, usize, usize, usize)) {
        self.scalars.truncate(cp.0);
        self.vectors.truncate(cp.1);
        self.structs.truncate(cp.2);
        self.struct_ptrs.truncate(cp.3);
    }
}

/// Description of the globals struct, shared between the kernel and helpers.
#[derive(Debug, Clone)]
struct GlobalsInfo {
    id: StructId,
    scalar_fields: Vec<(String, ScalarType)>,
    vector_fields: Vec<(String, ScalarType, VectorWidth)>,
}

/// How the BARRIER-mode shared array is allocated (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SharedArrayKind {
    Local,
    Global,
}

impl Generator {
    /// Creates a generator.
    pub fn new(opts: GeneratorOptions) -> Generator {
        let rng = Rng::seed_from_u64(opts.seed);
        Generator {
            opts,
            rng,
            name_counter: 0,
        }
    }

    /// Generates the program.
    pub fn generate(mut self) -> Program {
        let launch = self.pick_launch();
        let mut program = Program::new(
            KernelDef {
                name: "entry".into(),
                params: Vec::new(),
                body: Block::new(),
            },
            launch,
        );

        let globals = self.make_globals_struct(&mut program);
        let extra_structs = self.make_extra_structs(&mut program);
        self.make_helper_functions(&mut program, &globals, &extra_structs);

        let mode = self.opts.mode;
        let w_linear = launch.group_size();
        let n_linear = launch.total_work_items();
        let num_groups = launch.total_groups();

        // Decide mode-specific plumbing before building the body.
        let shared_kind = if mode.uses_barrier_comm() {
            if self.rng.gen_bool(0.5) {
                Some(SharedArrayKind::Local)
            } else {
                Some(SharedArrayKind::Global)
            }
        } else {
            None
        };
        if mode.uses_barrier_comm() {
            program.permutations = (0..self.opts.permutation_rows)
                .map(|_| {
                    let mut perm: Vec<u32> = (0..w_linear as u32).collect();
                    perm.shuffle(&mut self.rng);
                    perm
                })
                .collect();
        }

        // Kernel parameters and buffers.
        let emi = self.opts.emi.clone();
        let dead_len = emi.as_ref().map(|e| e.dead_len).unwrap_or(0);
        program.dead_len = dead_len;
        let mut params = Program::standard_clsmith_params(dead_len);
        program
            .buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n_linear));
        if dead_len > 0 {
            program.buffers.push(BufferSpec::new(
                "dead",
                ScalarType::Int,
                dead_len,
                BufferInit::Iota,
            ));
        }
        if shared_kind == Some(SharedArrayKind::Global) {
            params.push(Param::new(
                "A_global",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            program.buffers.push(BufferSpec::new(
                "A_global",
                ScalarType::UInt,
                n_linear.max(num_groups * w_linear),
                BufferInit::Fill(1),
            ));
        }
        let section_slots = self.opts.atomic_sections.max(1);
        if mode.uses_atomic_sections() {
            params.push(Param::new(
                "sec_counters",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            params.push(Param::new(
                "sec_specials",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            let len = num_groups * section_slots;
            program.buffers.push(BufferSpec::new(
                "sec_counters",
                ScalarType::UInt,
                len,
                BufferInit::Zero,
            ));
            program.buffers.push(BufferSpec::new(
                "sec_specials",
                ScalarType::UInt,
                len,
                BufferInit::Zero,
            ));
        }
        if mode.uses_atomic_reductions() {
            params.push(Param::new(
                "red",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            program.buffers.push(BufferSpec::new(
                "red",
                ScalarType::UInt,
                num_groups,
                BufferInit::Zero,
            ));
        }
        program.kernel.params = params;

        // Build the kernel body.
        let mut ctx = GenCtx::kernel();
        let mut body = Block::new();

        // Globals struct instance.
        body.push(self.globals_decl(&globals));

        // Extra struct locals (and pointers to them).
        for &sid in &extra_structs {
            let (decl, extras) = self.struct_local_decl(&mut ctx, &program, sid);
            body.push(decl);
            for stmt in extras {
                body.push(stmt);
            }
        }

        // A few scalar / vector locals.
        for _ in 0..3 {
            body.push(self.scalar_local_decl(&mut ctx));
        }
        if mode.uses_vectors() {
            for _ in 0..2 {
                body.push(self.vector_local_decl(&mut ctx));
            }
        }

        // BARRIER-mode prelude.
        let shared_lvalue = shared_kind.map(|kind| {
            let (stmts, lvalue) = self.barrier_prelude(kind, w_linear);
            for s in stmts {
                body.push(s);
            }
            lvalue
        });

        // ATOMIC REDUCTION running total.
        if mode.uses_atomic_reductions() {
            body.push(Stmt::decl(
                "total",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::lit(0, ScalarType::UInt)),
            ));
        }

        // The main statement soup: random statements with the communication
        // idioms and EMI blocks interleaved at top level.
        let mut items: Vec<Stmt> = Vec::new();
        for _ in 0..self.opts.block_statements {
            let stmt = self.gen_stmt(&mut ctx, &program, &globals, shared_lvalue.as_ref(), 1);
            items.push(stmt);
        }
        if mode.uses_barrier_comm() {
            let fence = if shared_kind == Some(SharedArrayKind::Local) {
                MemFence::Local
            } else {
                MemFence::Global
            };
            for _ in 0..self.opts.barrier_sync_points {
                let rnd = self.rng.gen_range(0..self.opts.permutation_rows);
                items.push(Stmt::Barrier(fence));
                items.push(Stmt::assign(
                    Expr::var("A_offset"),
                    Expr::index(
                        Expr::index(Expr::var("permutations"), Expr::int(rnd as i64)),
                        Expr::IdQuery(IdKind::LocalLinearId),
                    ),
                ));
            }
        }
        if mode.uses_atomic_sections() {
            for i in 0..self.opts.atomic_sections {
                items.push(self.atomic_section(i, section_slots, w_linear));
            }
        }
        if mode.uses_atomic_reductions() {
            for _ in 0..self.opts.atomic_reductions {
                items.push(self.atomic_reduction(&mut ctx));
            }
        }
        if let Some(emi_opts) = &emi {
            let emi_opts = emi_opts.clone();
            let count = self
                .rng
                .gen_range(emi_opts.min_blocks..=emi_opts.max_blocks);
            for index in 0..count {
                let block = self.gen_emi_block(&mut ctx, &program, &globals, index, &emi_opts);
                items.push(Stmt::Emi(block));
            }
        }
        items.shuffle(&mut self.rng);
        for stmt in items {
            body.push(stmt);
        }

        // Result accumulation.
        body.push(Stmt::decl(
            "result",
            Type::Scalar(ScalarType::ULong),
            Some(Expr::lit(0, ScalarType::ULong)),
        ));
        let mut hash_exprs: Vec<Expr> = Vec::new();
        for (name, _) in &globals.scalar_fields {
            hash_exprs.push(Expr::field(Expr::var("g"), name.clone()));
        }
        for (name, _, _) in &globals.vector_fields {
            hash_exprs.push(Expr::lane(Expr::field(Expr::var("g"), name.clone()), 0));
            hash_exprs.push(Expr::lane(Expr::field(Expr::var("g"), name.clone()), 1));
        }
        for (name, ty) in ctx.scalars.clone() {
            let _ = ty;
            hash_exprs.push(Expr::var(name));
        }
        for (name, _sid) in ctx.structs.clone() {
            // Hash the first scalar field of each struct local.
            let sid = _sid;
            if let Some(field) = program
                .struct_def(sid)
                .fields
                .iter()
                .find(|f| f.ty.is_scalar())
            {
                hash_exprs.push(Expr::field(Expr::var(name), field.name.clone()));
            }
        }
        if let Some(lvalue) = &shared_lvalue {
            hash_exprs.push(lvalue.clone());
        }
        if mode.uses_atomic_reductions() {
            hash_exprs.push(Expr::var("total"));
        }
        for e in hash_exprs {
            body.push(Stmt::assign(
                Expr::var("result"),
                Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::var("result"),
                        Expr::lit(31, ScalarType::ULong),
                    ),
                    Expr::cast(Type::Scalar(ScalarType::ULong), e),
                ),
            ));
        }
        // ATOMIC SECTION epilogue: after a final barrier, the group leader
        // folds the per-group special values into its result (§4.2).
        if mode.uses_atomic_sections() {
            body.push(Stmt::Barrier(MemFence::Global));
            let mut leader_block = Block::new();
            for slot in 0..section_slots {
                leader_block.push(Stmt::assign(
                    Expr::var("result"),
                    Expr::binary(
                        BinOp::Add,
                        Expr::var("result"),
                        Expr::cast(
                            Type::Scalar(ScalarType::ULong),
                            Expr::index(
                                Expr::var("sec_specials"),
                                self.group_slot_index(slot, section_slots),
                            ),
                        ),
                    ),
                ));
            }
            body.push(Stmt::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::IdQuery(IdKind::LocalLinearId),
                    Expr::lit(0, ScalarType::UInt),
                ),
                leader_block,
            ));
        }
        body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
            Expr::var("result"),
        ));

        program.kernel.body = body;
        program
    }

    // ----- naming -------------------------------------------------------

    fn fresh(&mut self, prefix: &str) -> String {
        self.name_counter += 1;
        format!("{prefix}_{}", self.name_counter)
    }
}

mod exprs;
mod idioms;
mod launch;
mod stmts;
mod structure;

/// A seeded source of kernels: the *generator* half of the
/// generator → mutator → feedback decomposition.
///
/// Both the paper-faithful grammar sampler ([`Generator`]) and the mutation
/// chains built on top of it (`clsmith::mutator::MutationChain`) implement
/// this trait, so campaign drivers can be written against "a deterministic
/// stream of programs" without caring whether the stream is blind sampling
/// or feedback-guided mutation.
pub trait KernelSource {
    /// Short human-readable description, used in reports and descriptors.
    fn describe(&self) -> String;

    /// Produces the next program of the stream.
    ///
    /// Deterministic: two sources constructed with identical options (and
    /// seed) yield identical program sequences.
    fn next_program(&mut self) -> Program;
}

impl KernelSource for Generator {
    fn describe(&self) -> String {
        format!("gen:{}:{}", self.opts.mode.name(), self.opts.seed)
    }

    fn next_program(&mut self) -> Program {
        let program = Generator::new(self.opts.clone()).generate();
        self.opts.seed = self.opts.seed.wrapping_add(1);
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{GenMode, GeneratorOptions};

    #[test]
    fn divisors_are_correct() {
        let mut d = launch::divisors(12);
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(launch::divisors(1), vec![1]);
        let mut p = launch::divisors(97);
        p.sort_unstable();
        assert_eq!(p, vec![1, 97]);
    }

    #[test]
    fn generation_is_deterministic() {
        let opts = GeneratorOptions::new(GenMode::All, 1234).with_emi();
        let a = generate(&opts);
        let b = generate(&opts);
        assert_eq!(a, b);
        let c = generate(&GeneratorOptions::new(GenMode::All, 1235).with_emi());
        assert_ne!(a, c);
    }

    #[test]
    fn launch_configs_respect_constraints() {
        for seed in 0..30 {
            let opts = GeneratorOptions::new(GenMode::Basic, seed);
            let p = generate(&opts);
            assert!(p.launch.validate().is_ok(), "seed {seed}: {:?}", p.launch);
            let total = p.launch.total_work_items();
            assert!(total >= opts.min_threads && total < opts.max_threads);
            assert!(p.launch.group_size() <= 256);
        }
    }

    #[test]
    fn generated_programs_typecheck() {
        for seed in 0..20 {
            for mode in GenMode::ALL {
                let opts = GeneratorOptions::new(mode, seed);
                let p = generate(&opts);
                if let Err(e) = clc::check_program(&p) {
                    panic!("seed {seed} mode {mode}: {e}\n{}", clc::print_program(&p));
                }
            }
        }
    }

    #[test]
    fn barrier_modes_emit_barriers_and_basic_does_not() {
        let barrier = generate(&GeneratorOptions::new(GenMode::Barrier, 7));
        assert!(barrier.kernel.body.contains_barrier());
        assert!(!barrier.permutations.is_empty());
        let basic = generate(&GeneratorOptions::new(GenMode::Basic, 7));
        assert!(!basic.kernel.body.contains_barrier());
        assert!(basic.permutations.is_empty());
    }

    #[test]
    fn atomic_modes_declare_their_buffers() {
        let section = generate(&GeneratorOptions::new(GenMode::AtomicSection, 9));
        assert!(section.buffer_for("sec_counters").is_some());
        assert!(section.buffer_for("sec_specials").is_some());
        let reduction = generate(&GeneratorOptions::new(GenMode::AtomicReduction, 9));
        assert!(reduction.buffer_for("red").is_some());
        let features = clc::Features::detect(&reduction);
        assert!(features.atomic_count > 0);
    }

    #[test]
    fn emi_blocks_are_dead_by_construction() {
        for seed in 0..10 {
            let opts = GeneratorOptions::new(GenMode::All, seed).with_emi();
            let p = generate(&opts);
            let blocks = p.emi_blocks();
            assert!(!blocks.is_empty(), "seed {seed} generated no EMI blocks");
            assert!(blocks.iter().all(|b| b.is_dead_by_construction()));
            assert!(p.has_dead_array());
            assert!(p.buffer_for("dead").is_some());
        }
    }

    #[test]
    fn generated_ids_only_in_controlled_idioms() {
        // The generator must not emit thread ids in arbitrary expressions:
        // every id use must be part of a fixed idiom (out index, permutation
        // lookup, group-slot indexing, leader checks).  We check a weaker
        // but still useful invariant: no id query appears as an operand of a
        // generated comparison other than equality-with-zero leader checks.
        let p = generate(&GeneratorOptions::new(GenMode::All, 21));
        let features = clc::Features::detect(&p);
        assert!(!features.group_id_in_comparison);
    }

    #[test]
    fn printed_programs_contain_expected_structure() {
        let p = generate(&GeneratorOptions::new(GenMode::All, 3).with_emi());
        let src = clc::print_program(&p);
        assert!(src.contains("struct Globals"));
        assert!(src.contains("kernel void entry"));
        assert!(src.contains("out["));
        assert!(src.contains("dead["));
        assert!(src.contains("safe_"));
    }
}
