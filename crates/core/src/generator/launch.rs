//! Launch-geometry sampling: NDRange and work-group shapes (§4.2).

use super::*;

impl Generator {
    // ----- launch geometry ----------------------------------------------

    pub(super) fn pick_launch(&mut self) -> LaunchConfig {
        let total = self
            .rng
            .gen_range(self.opts.min_threads..self.opts.max_threads);
        // Split `total` into three dimensions by picking random divisors.
        let nx = *divisors(total).choose(&mut self.rng).unwrap_or(&total);
        let rest = total / nx;
        let ny = *divisors(rest).choose(&mut self.rng).unwrap_or(&rest);
        let nz = rest / ny;
        let global = [nx, ny, nz];
        // Pick a work-group size dividing each dimension with product <= max.
        let mut local = [1usize; 3];
        let mut budget = self.opts.max_group_size;
        for d in 0..3 {
            let candidates: Vec<usize> = divisors(global[d])
                .into_iter()
                .filter(|w| *w <= budget)
                .collect();
            local[d] = *candidates.choose(&mut self.rng).unwrap_or(&1);
            budget /= local[d].max(1);
        }
        LaunchConfig::new(global, local).unwrap_or(LaunchConfig {
            global,
            local: [1, 1, 1],
        })
    }
}

/// All divisors of `n` (n >= 1), unordered.
pub(super) fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            if d != n / d {
                out.push(n / d);
            }
        }
        d += 1;
    }
    out
}
