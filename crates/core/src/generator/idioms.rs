//! The fixed communication idioms of §4.2 — barrier preludes, atomic
//! sections, atomic reductions — plus the dead-by-construction EMI blocks.

use super::*;

impl Generator {
    // ----- communication idioms (§4.2) ------------------------------------

    pub(super) fn barrier_prelude(
        &mut self,
        kind: SharedArrayKind,
        w_linear: usize,
    ) -> (Vec<Stmt>, Expr) {
        let rnd = self.rng.gen_range(0..self.opts.permutation_rows);
        let offset_init = Expr::index(
            Expr::index(Expr::var("permutations"), Expr::int(rnd as i64)),
            Expr::IdQuery(IdKind::LocalLinearId),
        );
        match kind {
            SharedArrayKind::Local => {
                let stmts = vec![
                    Stmt::Decl {
                        name: "A".into(),
                        ty: Type::Scalar(ScalarType::UInt).array_of(w_linear),
                        space: AddressSpace::Local,
                        volatile: false,
                        init: None,
                        init_list: None,
                    },
                    Stmt::assign(
                        Expr::index(Expr::var("A"), Expr::IdQuery(IdKind::LocalLinearId)),
                        Expr::lit(1, ScalarType::UInt),
                    ),
                    Stmt::Barrier(MemFence::Local),
                    Stmt::decl(
                        "A_offset",
                        Type::Scalar(ScalarType::UInt),
                        Some(offset_init),
                    ),
                ];
                (stmts, Expr::index(Expr::var("A"), Expr::var("A_offset")))
            }
            SharedArrayKind::Global => {
                let base = Expr::binary(
                    BinOp::Mul,
                    Expr::IdQuery(IdKind::GroupLinearId),
                    Expr::lit(w_linear as i128, ScalarType::UInt),
                );
                let stmts = vec![Stmt::decl(
                    "A_offset",
                    Type::Scalar(ScalarType::UInt),
                    Some(offset_init),
                )];
                (
                    stmts,
                    Expr::index(
                        Expr::var("A_global"),
                        Expr::binary(BinOp::Add, base, Expr::var("A_offset")),
                    ),
                )
            }
        }
    }

    pub(super) fn group_slot_index(&mut self, slot: usize, section_slots: usize) -> Expr {
        Expr::binary(
            BinOp::Add,
            Expr::binary(
                BinOp::Mul,
                Expr::IdQuery(IdKind::GroupLinearId),
                Expr::lit(section_slots as i128, ScalarType::UInt),
            ),
            Expr::lit(slot as i128, ScalarType::UInt),
        )
    }

    pub(super) fn atomic_section(
        &mut self,
        index: usize,
        section_slots: usize,
        w_linear: usize,
    ) -> Stmt {
        // Each section owns its (counter, special value) pair; see the note
        // at the top of this file.
        let slot = index % section_slots;
        let counter = Expr::addr_of(Expr::index(
            Expr::var("sec_counters"),
            self.group_slot_index(slot, section_slots),
        ));
        let special = Expr::addr_of(Expr::index(
            Expr::var("sec_specials"),
            self.group_slot_index(slot, section_slots),
        ));
        // Which arrival rank enters the section.
        let rnd = self.rng.gen_range(0..w_linear.max(1)) as i128;
        // The section body: declarations and assignments touching only data
        // declared inside the section, then a hash folded into the special
        // value (§4.2 ATOMIC SECTION mode).
        let mut inner = Block::new();
        let mut inner_vars: Vec<(String, ScalarType)> = Vec::new();
        let count = self.rng.gen_range(2..=4);
        for _ in 0..count {
            let ty = self.pick_scalar_type();
            let name = self.fresh(&format!("as{index}"));
            inner.push(Stmt::decl(
                name.clone(),
                Type::Scalar(ty),
                Some(self.literal(ty)),
            ));
            inner_vars.push((name, ty));
        }
        for _ in 0..count {
            let (target, _) = inner_vars[self.rng.gen_range(0..inner_vars.len())].clone();
            let expr = self.inner_only_expr(&inner_vars, 2);
            inner.push(Stmt::assign(Expr::var(target), expr));
        }
        let mut hash = Expr::lit(0, ScalarType::UInt);
        for (name, _) in &inner_vars {
            hash = Expr::binary(
                BinOp::Add,
                Expr::binary(BinOp::Mul, hash, Expr::lit(31, ScalarType::UInt)),
                Expr::cast(Type::Scalar(ScalarType::UInt), Expr::var(name.clone())),
            );
        }
        inner.push(Stmt::expr(Expr::builtin(
            Builtin::AtomicAdd,
            vec![special, hash],
        )));
        Stmt::if_then(
            Expr::binary(
                BinOp::Eq,
                Expr::builtin(Builtin::AtomicInc, vec![counter]),
                Expr::lit(rnd, ScalarType::UInt),
            ),
            inner,
        )
    }

    /// Expression over literals and the given variables only (used inside
    /// atomic sections to keep their hash thread-independent).
    pub(super) fn inner_only_expr(&mut self, vars: &[(String, ScalarType)], depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.4) {
            return if !vars.is_empty() && self.rng.gen_bool(0.5) {
                let (name, _) = vars[self.rng.gen_range(0..vars.len())].clone();
                Expr::var(name)
            } else {
                let ty = self.pick_scalar_type();
                self.literal(ty)
            };
        }
        let lhs = self.inner_only_expr(vars, depth - 1);
        let rhs = self.inner_only_expr(vars, depth - 1);
        self.combine_scalars(lhs, rhs)
    }

    pub(super) fn atomic_reduction(&mut self, _ctx: &mut GenCtx) -> Stmt {
        let op = *[
            Builtin::AtomicAdd,
            Builtin::AtomicMin,
            Builtin::AtomicMax,
            Builtin::AtomicOr,
            Builtin::AtomicAnd,
            Builtin::AtomicXor,
        ]
        .choose(&mut self.rng)
        .unwrap();
        let target = Expr::addr_of(Expr::index(
            Expr::var("red"),
            Expr::IdQuery(IdKind::GroupLinearId),
        ));
        let contribution = self.literal(ScalarType::UInt);
        Stmt::Block(Block::of(vec![
            Stmt::expr(Expr::builtin(op, vec![target, contribution])),
            Stmt::Barrier(MemFence::Global),
            Stmt::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::IdQuery(IdKind::LocalLinearId),
                    Expr::lit(0, ScalarType::UInt),
                ),
                Block::of(vec![Stmt::expr(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var("total"),
                    Expr::index(Expr::var("red"), Expr::IdQuery(IdKind::GroupLinearId)),
                ))]),
            ),
            Stmt::Barrier(MemFence::Global),
        ]))
    }

    // ----- EMI blocks (§5) -------------------------------------------------

    pub(super) fn gen_emi_block(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        globals: &GlobalsInfo,
        index: usize,
        emi: &EmiOptions,
    ) -> EmiBlock {
        // Guard dead[a] < dead[b] with b < a so the block is dead under the
        // host's dead[j] = j initialisation.
        let a = self.rng.gen_range(1..emi.dead_len);
        let b = self.rng.gen_range(0..a);
        let cp = ctx.checkpoint();
        let was_in_emi = ctx.in_emi;
        ctx.in_emi = true;
        let mut body = Block::new();
        let count = self.rng.gen_range(2..=5);
        for _ in 0..count {
            body.push(self.gen_stmt(ctx, program, globals, None, 1));
        }
        if emi.allow_infinite_loops && self.rng.gen_bool(0.3) {
            body.push(Stmt::While {
                cond: Expr::int(1),
                body: Block::new(),
            });
        }
        ctx.in_emi = was_in_emi;
        ctx.restore(cp);
        EmiBlock {
            index,
            guard: (a, b),
            body,
        }
    }
}
