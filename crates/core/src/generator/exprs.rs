//! Expression-level sampling: safe-math scalar expressions, vector
//! expressions and literals (§4.1).

use super::*;

impl Generator {
    // ----- expressions -----------------------------------------------------

    pub(super) fn gen_scalar_expr(
        &mut self,
        ctx: &mut GenCtx,
        globals: &GlobalsInfo,
        depth: usize,
    ) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return self.scalar_leaf(ctx, globals);
        }
        match self.rng.gen_range(0..100) {
            0..=44 => {
                let lhs = self.gen_scalar_expr(ctx, globals, depth - 1);
                let rhs = self.gen_scalar_expr(ctx, globals, depth - 1);
                self.combine_scalars(lhs, rhs)
            }
            45..=59 => {
                let cond = self.gen_scalar_expr(ctx, globals, depth - 1);
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                Expr::cond(cond, a, b)
            }
            60..=72 => {
                let x = self.gen_scalar_expr(ctx, globals, depth - 1);
                let lo = self.literal(ScalarType::Int);
                let hi = self.literal(ScalarType::Int);
                Expr::builtin(Builtin::SafeClamp, vec![x, lo, hi])
            }
            73..=82 => {
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                let f = if self.rng.gen_bool(0.5) {
                    Builtin::Min
                } else {
                    Builtin::Max
                };
                Expr::builtin(f, vec![a, b])
            }
            83..=90 => {
                let ty = self.pick_scalar_type();
                Expr::cast(
                    Type::Scalar(ty),
                    self.gen_scalar_expr(ctx, globals, depth - 1),
                )
            }
            91..=95 => {
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                Expr::builtin(
                    Builtin::Rotate,
                    vec![
                        Expr::cast(Type::Scalar(ScalarType::UInt), a),
                        Expr::cast(Type::Scalar(ScalarType::UInt), b),
                    ],
                )
            }
            _ => {
                // comma expression (no side effects on the discarded side)
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                Expr::comma(a, b)
            }
        }
    }

    pub(super) fn combine_scalars(&mut self, lhs: Expr, rhs: Expr) -> Expr {
        match self.rng.gen_range(0..100) {
            0..=17 => Expr::builtin(Builtin::SafeAdd, vec![lhs, rhs]),
            18..=33 => Expr::builtin(Builtin::SafeSub, vec![lhs, rhs]),
            34..=47 => Expr::builtin(Builtin::SafeMul, vec![lhs, rhs]),
            48..=55 => Expr::builtin(Builtin::SafeDiv, vec![lhs, rhs]),
            56..=61 => Expr::builtin(Builtin::SafeMod, vec![lhs, rhs]),
            62..=67 => Expr::builtin(
                if self.rng.gen_bool(0.5) {
                    Builtin::SafeLshift
                } else {
                    Builtin::SafeRshift
                },
                vec![lhs, rhs],
            ),
            68..=79 => {
                let op = *[BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor]
                    .choose(&mut self.rng)
                    .unwrap();
                Expr::binary(op, lhs, rhs)
            }
            80..=91 => {
                let op = *[
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::Le,
                    BinOp::Ge,
                ]
                .choose(&mut self.rng)
                .unwrap();
                Expr::binary(op, lhs, rhs)
            }
            _ => {
                let op = *[BinOp::LAnd, BinOp::LOr].choose(&mut self.rng).unwrap();
                Expr::binary(op, lhs, rhs)
            }
        }
    }

    pub(super) fn scalar_leaf(&mut self, ctx: &mut GenCtx, globals: &GlobalsInfo) -> Expr {
        let leaf_ty = self.pick_scalar_type();
        let mut options: Vec<Expr> = vec![self.literal(leaf_ty)];
        for (name, _) in &ctx.scalars {
            options.push(Expr::var(name.clone()));
        }
        for (name, _) in &globals.scalar_fields {
            options.push(self.globals_field(ctx, name));
        }
        for (name, _, width) in &ctx.vectors {
            let lane = self.rng.gen_range(0..width.lanes()) as u8;
            options.push(Expr::lane(Expr::var(name.clone()), lane));
        }
        for (name, _, width) in &globals.vector_fields {
            if ctx.globals == GlobalsAccess::Direct || self.rng.gen_bool(0.5) {
                let lane = self.rng.gen_range(0..width.lanes()) as u8;
                options.push(Expr::lane(self.globals_field(ctx, name), lane));
            }
        }
        let idx = self.rng.gen_range(0..options.len());
        options.swap_remove(idx)
    }

    pub(super) fn gen_vector_expr(
        &mut self,
        ctx: &mut GenCtx,
        elem: ScalarType,
        width: VectorWidth,
        depth: usize,
    ) -> Expr {
        let leaf = |gen: &mut Generator, ctx: &GenCtx| -> Expr {
            let mut options: Vec<Expr> = Vec::new();
            for (name, e, w) in &ctx.vectors {
                if *e == elem && *w == width {
                    options.push(Expr::var(name.clone()));
                }
            }
            if options.is_empty() || gen.rng.gen_bool(0.5) {
                let parts = (0..width.lanes()).map(|_| gen.literal(elem)).collect();
                return Expr::VectorLit { elem, width, parts };
            }
            let idx = gen.rng.gen_range(0..options.len());
            options.swap_remove(idx)
        };
        if depth == 0 || self.rng.gen_bool(0.4) {
            return leaf(self, ctx);
        }
        let lhs = self.gen_vector_expr(ctx, elem, width, depth - 1);
        let rhs = self.gen_vector_expr(ctx, elem, width, depth - 1);
        match self.rng.gen_range(0..100) {
            0..=24 => Expr::builtin(Builtin::SafeAdd, vec![lhs, rhs]),
            25..=44 => Expr::builtin(Builtin::SafeMul, vec![lhs, rhs]),
            45..=59 => {
                let op = *[BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor]
                    .choose(&mut self.rng)
                    .unwrap();
                Expr::binary(op, lhs, rhs)
            }
            60..=74 => Expr::builtin(Builtin::Rotate, vec![lhs, rhs]),
            75..=87 => {
                let f = if self.rng.gen_bool(0.5) {
                    Builtin::Min
                } else {
                    Builtin::Max
                };
                Expr::builtin(f, vec![lhs, rhs])
            }
            _ => {
                let lo = leaf(self, ctx);
                Expr::builtin(Builtin::SafeClamp, vec![lhs, lo, rhs])
            }
        }
    }

    pub(super) fn literal(&mut self, ty: ScalarType) -> Expr {
        let interesting: [i128; 8] = [0, 1, 2, 7, 31, 255, -1, 65535];
        let value = if self.rng.gen_bool(0.5) {
            *interesting.choose(&mut self.rng).unwrap()
        } else {
            self.rng.gen_range(-128i128..=1024)
        };
        let clamped = value.clamp(ty.min_value(), ty.max_value());
        Expr::lit(clamped, ty)
    }

    pub(super) fn pick_scalar_type(&mut self) -> ScalarType {
        *ScalarType::ALL.choose(&mut self.rng).unwrap()
    }
}
