//! Statement-level sampling: the weighted statement grammar, assignments
//! and lvalue selection.

use super::*;

impl Generator {
    // ----- statements ------------------------------------------------------

    pub(super) fn gen_stmt(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        globals: &GlobalsInfo,
        shared_lvalue: Option<&Expr>,
        depth: usize,
    ) -> Stmt {
        let max_depth = self.opts.max_block_depth;
        let roll = self.rng.gen_range(0..100);
        if depth < max_depth && roll < 18 {
            // if statement
            let cond = self.gen_scalar_expr(ctx, globals, 1);
            let cp = ctx.checkpoint();
            let then_block = self.gen_block(ctx, program, globals, shared_lvalue, depth + 1);
            ctx.restore(cp);
            if self.rng.gen_bool(0.4) {
                let cp = ctx.checkpoint();
                let else_block = self.gen_block(ctx, program, globals, shared_lvalue, depth + 1);
                ctx.restore(cp);
                Stmt::if_else(cond, then_block, else_block)
            } else {
                Stmt::if_then(cond, then_block)
            }
        } else if depth < max_depth && roll < 32 {
            // bounded for loop
            let loop_var = self.fresh("i");
            let bound = self.rng.gen_range(1i64..=10);
            let cp = ctx.checkpoint();
            let was_in_loop = ctx.in_loop;
            ctx.in_loop = true;
            let mut body = self.gen_block(ctx, program, globals, shared_lvalue, depth + 1);
            // Occasionally add an early exit guarded by a generated condition.
            if self.rng.gen_bool(0.25) {
                let cond = self.gen_scalar_expr(ctx, globals, 1);
                body.push(Stmt::if_then(cond, Block::of(vec![Stmt::Break])));
            }
            ctx.in_loop = was_in_loop;
            ctx.restore(cp);
            Stmt::For {
                init: Some(Box::new(Stmt::decl(
                    loop_var.clone(),
                    Type::Scalar(ScalarType::Int),
                    Some(Expr::int(0)),
                ))),
                cond: Some(Expr::binary(
                    BinOp::Lt,
                    Expr::var(loop_var.clone()),
                    Expr::int(bound),
                )),
                update: Some(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var(loop_var),
                    Expr::int(1),
                )),
                body,
            }
        } else if roll < 40 && !ctx.in_helper && !program.functions.is_empty() && !ctx.in_emi {
            // call a helper function and store its result
            let idx = self.rng.gen_range(0..program.functions.len());
            let func = &program.functions[idx];
            let arg = self.gen_scalar_expr(ctx, globals, 1);
            let call = Expr::call(func.name.clone(), vec![Expr::addr_of(Expr::var("g")), arg]);
            match self.pick_scalar_lvalue(ctx, globals, shared_lvalue) {
                Some(lvalue) => Stmt::assign(lvalue, call),
                None => Stmt::expr(call),
            }
        } else if roll < 45 && depth < max_depth {
            // nested block with fresh locals
            let cp = ctx.checkpoint();
            let mut block = Block::new();
            block.push(self.scalar_local_decl(ctx));
            let inner = self.gen_stmt(ctx, program, globals, shared_lvalue, depth + 1);
            block.push(inner);
            ctx.restore(cp);
            Stmt::Block(block)
        } else if roll < 50 && ctx.in_loop && ctx.in_emi {
            // jumps are only generated inside (dead) EMI code
            if self.rng.gen_bool(0.5) {
                Stmt::Break
            } else {
                Stmt::Continue
            }
        } else {
            // assignment
            self.gen_assignment(ctx, globals, program, shared_lvalue)
        }
    }

    pub(super) fn gen_block(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        globals: &GlobalsInfo,
        shared_lvalue: Option<&Expr>,
        depth: usize,
    ) -> Block {
        let count = self.rng.gen_range(1..=3);
        let mut block = Block::new();
        for _ in 0..count {
            block.push(self.gen_stmt(ctx, program, globals, shared_lvalue, depth));
        }
        block
    }

    pub(super) fn gen_assignment(
        &mut self,
        ctx: &mut GenCtx,
        globals: &GlobalsInfo,
        program: &Program,
        shared_lvalue: Option<&Expr>,
    ) -> Stmt {
        // Vector assignment?
        if !ctx.vectors.is_empty() && self.rng.gen_bool(0.25) {
            let (name, elem, width) = ctx.vectors[self.rng.gen_range(0..ctx.vectors.len())].clone();
            let rhs = self.gen_vector_expr(ctx, elem, width, self.opts.max_expr_depth);
            return Stmt::assign(Expr::var(name), rhs);
        }
        // Whole-struct copy?
        if ctx.structs.len() >= 2 && self.rng.gen_bool(0.15) {
            let mut candidates: Vec<(String, StructId)> = ctx.structs.clone();
            candidates.shuffle(&mut self.rng);
            for i in 0..candidates.len() {
                for j in (i + 1)..candidates.len() {
                    if candidates[i].1 == candidates[j].1 {
                        return Stmt::assign(
                            Expr::var(candidates[i].0.clone()),
                            Expr::var(candidates[j].0.clone()),
                        );
                    }
                }
            }
        }
        let rhs = self.gen_scalar_expr(ctx, globals, self.opts.max_expr_depth);
        match self.pick_scalar_lvalue_with_structs(ctx, globals, program, shared_lvalue) {
            Some(lvalue) => {
                if self.rng.gen_bool(0.25) {
                    let op = *[
                        AssignOp::AddAssign,
                        AssignOp::SubAssign,
                        AssignOp::XorAssign,
                        AssignOp::OrAssign,
                        AssignOp::AndAssign,
                    ]
                    .choose(&mut self.rng)
                    .unwrap();
                    Stmt::expr(Expr::assign_op(op, lvalue, rhs))
                } else {
                    Stmt::assign(lvalue, rhs)
                }
            }
            None => Stmt::expr(rhs),
        }
    }

    pub(super) fn pick_scalar_lvalue(
        &mut self,
        ctx: &GenCtx,
        globals: &GlobalsInfo,
        shared_lvalue: Option<&Expr>,
    ) -> Option<Expr> {
        let mut options: Vec<Expr> = Vec::new();
        for (name, _) in &ctx.scalars {
            options.push(Expr::var(name.clone()));
        }
        for (name, _) in &globals.scalar_fields {
            options.push(self.globals_field(ctx, name));
        }
        if let Some(shared) = shared_lvalue {
            options.push(shared.clone());
        }
        if options.is_empty() {
            None
        } else {
            let idx = self.rng.gen_range(0..options.len());
            Some(options.swap_remove(idx))
        }
    }

    pub(super) fn pick_scalar_lvalue_with_structs(
        &mut self,
        ctx: &GenCtx,
        globals: &GlobalsInfo,
        program: &Program,
        shared_lvalue: Option<&Expr>,
    ) -> Option<Expr> {
        let mut options: Vec<Expr> = Vec::new();
        if let Some(base) = self.pick_scalar_lvalue(ctx, globals, shared_lvalue) {
            options.push(base);
        }
        for (name, sid) in &ctx.structs {
            if let Some(field) = program
                .struct_def(*sid)
                .fields
                .iter()
                .find(|f| f.ty.is_scalar())
            {
                options.push(Expr::field(Expr::var(name.clone()), field.name.clone()));
            }
        }
        for (name, sid) in &ctx.struct_ptrs {
            if let Some(field) = program
                .struct_def(*sid)
                .fields
                .iter()
                .find(|f| f.ty.is_scalar())
            {
                options.push(Expr::arrow(Expr::var(name.clone()), field.name.clone()));
            }
        }
        if options.is_empty() {
            None
        } else {
            let idx = self.rng.gen_range(0..options.len());
            Some(options.swap_remove(idx))
        }
    }

    pub(super) fn globals_field(&self, ctx: &GenCtx, field: &str) -> Expr {
        match ctx.globals {
            GlobalsAccess::Direct => Expr::field(Expr::var("g"), field),
            GlobalsAccess::ViaPointer => Expr::arrow(Expr::var("gp"), field),
        }
    }
}
