//! The *mutator* third of the generator → mutator → feedback
//! decomposition: seeded, deterministic rewrites over generated ASTs.
//!
//! Regenerating a kernel from scratch throws away everything a campaign
//! learned about it; mutating an interesting kernel keeps its structure
//! while perturbing one dimension at a time (the IRFuzzer observation that
//! mutation over structured compiler inputs beats regeneration).  Every
//! mutation here is a small rewrite that
//!
//! * is **deterministic**: `mutate(p, seed)` always produces the same
//!   mutant (it reuses [`clsmith::rng`](crate::rng), the generator's own
//!   PRNG);
//! * **preserves validity**: mutants still type-check and keep the
//!   generator's UB-freedom invariants (§4 of the paper) — safe-math stays
//!   safe-math, barriers stay uniform at the kernel-body top level, no
//!   work-item ids leak into expressions, no declaration is removed;
//! * may **change semantics** — that is the point: a mutant explores
//!   different constant ranges, vector shapes, schedules and sync
//!   patterns than its parent, lighting different [`CoverageMap`]
//!   (crate::feedback::CoverageMap) bits.
//!
//! Validity is protected by construction: mutations never touch the
//! communication idioms' bookkeeping (the `out`/`result` observables, the
//! barrier shuffle array `A`/`A_global`/`A_offset`, atomic-section
//! counters `sec_*`, reduction buffers `red`/`total`), never remove
//! barriers or declarations, and only insert barriers at the kernel-body
//! top level where uniformity is structural (the kernel body has no early
//! returns).

use crate::generator::KernelSource;
use crate::rng::{Rng, SliceRandom};
use clc::expr::{BinOp, Builtin, Expr};
use clc::stmt::{Block, MemFence, Stmt};
use clc::types::{ScalarType, Type, VectorWidth};
use clc::Program;

/// The mutation grammar: one variant per rewrite family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Duplicate a thread-private top-level statement in place.
    SpliceStatement,
    /// Remove a thread-private top-level statement (never a declaration,
    /// barrier, atomic or EMI block).
    DropStatement,
    /// Perturb an integer literal in a thread-private expression, clamped
    /// to its type's range (array indices and loop bounds excluded).
    NudgeLiteral,
    /// Rewrite one `(element, width)` vector equivalence class to a new
    /// width program-wide (declarations, struct fields, literals, casts).
    NudgeVectorWidth,
    /// Insert an extra barrier at the kernel-body top level, where
    /// uniformity is structural.
    ToggleBarrier,
    /// Swap one commutative atomic read-modify-write for another
    /// (`add`/`min`/`max`/`and`/`or`/`xor`; the `atomic_inc` rank gates of
    /// atomic sections are never touched).
    ToggleAtomicOp,
    /// Replace a literal `for`-loop bound with a fresh one in `1..=10`.
    PerturbLoopBound,
}

impl MutationKind {
    /// Every mutation kind, in declaration order.
    pub const ALL: [MutationKind; 7] = [
        MutationKind::SpliceStatement,
        MutationKind::DropStatement,
        MutationKind::NudgeLiteral,
        MutationKind::NudgeVectorWidth,
        MutationKind::ToggleBarrier,
        MutationKind::ToggleAtomicOp,
        MutationKind::PerturbLoopBound,
    ];

    /// Short lowercase name for reports and journal tokens.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::SpliceStatement => "splice",
            MutationKind::DropStatement => "drop",
            MutationKind::NudgeLiteral => "literal",
            MutationKind::NudgeVectorWidth => "vecwidth",
            MutationKind::ToggleBarrier => "barrier",
            MutationKind::ToggleAtomicOp => "atomic",
            MutationKind::PerturbLoopBound => "loopbound",
        }
    }
}

/// A mutation that was applied: which rewrite, at which (deterministic)
/// candidate site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mutation {
    /// The rewrite family.
    pub kind: MutationKind,
    /// Index into the rewrite's deterministic candidate enumeration.
    pub site: usize,
}

/// Applies one seeded mutation to `program`.
///
/// The seed picks both the mutation kind (trying kinds in a seeded order
/// until one is applicable) and the rewrite site.  Returns `None` only if
/// no kind applies — practically impossible, since [`ToggleBarrier`]
/// (MutationKind::ToggleBarrier) always applies.
///
/// Deterministic: same `(program, seed)` in, same mutant out.
pub fn mutate(program: &Program, seed: u64) -> Option<(Program, Mutation)> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut kinds = MutationKind::ALL.to_vec();
    kinds.shuffle(&mut rng);
    for kind in kinds {
        if let Some(result) = try_apply(program, kind, &mut rng) {
            return Some(result);
        }
    }
    None
}

fn try_apply(program: &Program, kind: MutationKind, rng: &mut Rng) -> Option<(Program, Mutation)> {
    match kind {
        MutationKind::SpliceStatement => splice_statement(program, rng),
        MutationKind::DropStatement => drop_statement(program, rng),
        MutationKind::NudgeLiteral => nudge_literal(program, rng),
        MutationKind::NudgeVectorWidth => nudge_vector_width(program, rng),
        MutationKind::ToggleBarrier => toggle_barrier(program, rng),
        MutationKind::ToggleAtomicOp => toggle_atomic_op(program, rng),
        MutationKind::PerturbLoopBound => perturb_loop_bound(program, rng),
    }
}

// ----- eligibility -------------------------------------------------------

/// Names owned by the communication idioms and the result epilogue; any
/// statement touching them is off-limits for structural rewrites.
fn protected_name(name: &str) -> bool {
    matches!(
        name,
        "out" | "dead" | "A" | "A_global" | "A_offset" | "red" | "total" | "result"
    ) || name.starts_with("sec_")
}

fn stmt_mentions_protected(stmt: &Stmt) -> bool {
    let mut found = false;
    stmt.for_each_expr(true, &mut |e| {
        if let Expr::Var(name) = e {
            if protected_name(name) {
                found = true;
            }
        }
    });
    found
}

fn stmt_has_atomic(stmt: &Stmt) -> bool {
    let mut found = false;
    stmt.for_each_expr(true, &mut |e| {
        if let Expr::BuiltinCall { func, .. } = e {
            if func.is_atomic() {
                found = true;
            }
        }
    });
    found
}

fn stmt_has_emi(stmt: &Stmt) -> bool {
    let mut found = false;
    stmt.for_each(&mut |s| {
        if matches!(s, Stmt::Emi(_)) {
            found = true;
        }
    });
    found
}

/// Whether a top-level kernel statement is pure thread-private computation
/// that can be duplicated or dropped without touching declarations,
/// synchronisation or the communication idioms.
fn transplantable(stmt: &Stmt) -> bool {
    !matches!(stmt, Stmt::Decl { .. } | Stmt::Barrier(_))
        && !stmt.contains_barrier()
        && !stmt_has_emi(stmt)
        && !stmt_has_atomic(stmt)
        && !stmt_mentions_protected(stmt)
}

/// Whether an expression tree is safe for literal nudging: no array
/// indexing (out-of-bounds risk), no idiom bookkeeping, no atomics.
fn nudgeable_expr(expr: &Expr) -> bool {
    let mut ok = true;
    expr.for_each(&mut |e| match e {
        Expr::Index { .. } => ok = false,
        Expr::Var(name) if protected_name(name) => ok = false,
        Expr::BuiltinCall { func, .. } if func.is_atomic() => ok = false,
        _ => {}
    });
    ok
}

// ----- traversal helpers -------------------------------------------------

/// Visits the expression roots eligible for literal nudging: statement
/// expressions, declaration initialisers, `if` conditions and `return`
/// values — skipping EMI blocks (dead code), `for`/`while` headers (loop
/// bounds have their own mutation) and every ineligible tree.
fn for_each_nudgeable_root(block: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::Decl { init: Some(e), .. } if nudgeable_expr(e) => {
                f(e);
            }
            Stmt::Expr(e) if nudgeable_expr(e) => {
                f(e);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if nudgeable_expr(cond) {
                    f(cond);
                }
                for_each_nudgeable_root(then_block, f);
                if let Some(b) = else_block {
                    for_each_nudgeable_root(b, f);
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                for_each_nudgeable_root(body, f);
            }
            Stmt::Block(b) => for_each_nudgeable_root(b, f),
            Stmt::Return(Some(e)) if nudgeable_expr(e) => {
                f(e);
            }
            _ => {}
        }
    }
}

fn for_each_nudgeable_root_in_program(program: &mut Program, f: &mut impl FnMut(&mut Expr)) {
    for function in &mut program.functions {
        for_each_nudgeable_root(&mut function.body, f);
    }
    for_each_nudgeable_root(&mut program.kernel.body, f);
}

/// Visits every `for` statement in the program mutably (including dead EMI
/// bodies, where a perturbed bound is harmless by construction).
fn for_each_for_mut(block: &mut Block, f: &mut impl FnMut(&mut Stmt)) {
    for stmt in &mut block.stmts {
        if let Stmt::For { .. } = stmt {
            f(stmt);
        }
        match stmt {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                for_each_for_mut(then_block, f);
                if let Some(b) = else_block {
                    for_each_for_mut(b, f);
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => for_each_for_mut(body, f),
            Stmt::Block(b) => for_each_for_mut(b, f),
            Stmt::Emi(emi) => for_each_for_mut(&mut emi.body, f),
            _ => {}
        }
    }
}

// ----- the rewrites ------------------------------------------------------

fn splice_statement(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    let candidates: Vec<usize> = program
        .kernel
        .body
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| transplantable(s))
        .map(|(i, _)| i)
        .collect();
    let &site = candidates.choose(rng)?;
    let mut mutant = program.clone();
    let copy = mutant.kernel.body.stmts[site].clone();
    mutant.kernel.body.stmts.insert(site + 1, copy);
    Some((
        mutant,
        Mutation {
            kind: MutationKind::SpliceStatement,
            site,
        },
    ))
}

fn drop_statement(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    let candidates: Vec<usize> = program
        .kernel
        .body
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| transplantable(s))
        .map(|(i, _)| i)
        .collect();
    // Keep at least one transplantable statement so repeated drops cannot
    // strip the kernel down to pure idiom scaffolding.
    if candidates.len() < 2 {
        return None;
    }
    let &site = candidates.choose(rng)?;
    let mut mutant = program.clone();
    mutant.kernel.body.stmts.remove(site);
    Some((
        mutant,
        Mutation {
            kind: MutationKind::DropStatement,
            site,
        },
    ))
}

fn nudge_literal(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    let mut count = 0usize;
    let mut probe = program.clone();
    for_each_nudgeable_root_in_program(&mut probe, &mut |root| {
        root.for_each(&mut |e| {
            if matches!(e, Expr::IntLit { .. }) {
                count += 1;
            }
        });
    });
    if count == 0 {
        return None;
    }
    let target = rng.gen_range(0..count);
    const INTERESTING: [i128; 8] = [0, 1, 2, 7, 31, 255, -1, 65535];
    let mut mutant = program.clone();
    let mut index = 0usize;
    for_each_nudgeable_root_in_program(&mut mutant, &mut |root| {
        root.for_each_mut(&mut |e| {
            if let Expr::IntLit { value, ty } = e {
                if index == target {
                    let mut new = if rng.gen_bool(0.5) {
                        *INTERESTING.choose(rng).unwrap()
                    } else {
                        i128::from(rng.gen_range(-128i64..=1024))
                    };
                    new = new.clamp(ty.min_value(), ty.max_value());
                    if new == *value {
                        new = if new == ty.max_value() {
                            ty.min_value()
                        } else {
                            new + 1
                        };
                    }
                    *value = new;
                }
                index += 1;
            }
        });
    });
    Some((
        mutant,
        Mutation {
            kind: MutationKind::NudgeLiteral,
            site: target,
        },
    ))
}

fn nudge_vector_width(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    // Enumerate the vector (element, width) classes in deterministic
    // first-seen order: struct fields, then declarations/literals/casts.
    let mut classes: Vec<(ScalarType, VectorWidth)> = Vec::new();
    let mut note = |elem: ScalarType, width: VectorWidth| {
        if !classes.contains(&(elem, width)) {
            classes.push((elem, width));
        }
    };
    for def in &program.structs {
        for field in &def.fields {
            if let Type::Vector(elem, width) = field.ty {
                note(elem, width);
            }
        }
    }
    let mut seen_in_code: Vec<(ScalarType, VectorWidth)> = Vec::new();
    program.for_each_stmt(&mut |s| {
        if let Stmt::Decl {
            ty: Type::Vector(elem, width),
            ..
        } = s
        {
            seen_in_code.push((*elem, *width));
        }
    });
    program.for_each_expr(&mut |e| match e {
        Expr::VectorLit { elem, width, .. } => seen_in_code.push((*elem, *width)),
        Expr::Cast {
            ty: Type::Vector(elem, width),
            ..
        } => seen_in_code.push((*elem, *width)),
        _ => {}
    });
    for (elem, width) in seen_in_code {
        note(elem, width);
    }
    if classes.is_empty() {
        return None;
    }
    let site = rng.gen_range(0..classes.len());
    let (elem, old) = classes[site];
    let alternatives: Vec<VectorWidth> = VectorWidth::ALL
        .iter()
        .copied()
        .filter(|w| *w != old)
        .collect();
    let new = *alternatives.choose(rng).unwrap();
    let old_lanes = old.lanes();
    let new_lanes = new.lanes();

    let mut mutant = program.clone();
    for def in &mut mutant.structs {
        for field in &mut def.fields {
            if field.ty == Type::Vector(elem, old) {
                field.ty = Type::Vector(elem, new);
            }
        }
    }
    mutant.for_each_block_mut(&mut |block| {
        for stmt in &mut block.stmts {
            if let Stmt::Decl { ty, .. } = stmt {
                if *ty == Type::Vector(elem, old) {
                    *ty = Type::Vector(elem, new);
                }
            }
        }
    });
    mutant.for_each_expr_mut(&mut |e| match e {
        Expr::VectorLit {
            elem: lit_elem,
            width,
            parts,
        } if *lit_elem == elem && *width == old => {
            *width = new;
            if parts.len() == old_lanes {
                if new_lanes < old_lanes {
                    parts.truncate(new_lanes);
                } else {
                    for i in old_lanes..new_lanes {
                        let part = parts[i % old_lanes].clone();
                        parts.push(part);
                    }
                }
            }
        }
        Expr::Cast { ty, .. } if *ty == Type::Vector(elem, old) => {
            *ty = Type::Vector(elem, new);
        }
        // When narrowing, remap every swizzle lane modulo the new width.
        // Lanes only shrink under `%`, so swizzles over *other* vector
        // classes stay in range too — semantics may shift, validity never.
        Expr::Swizzle { lanes, .. } if new_lanes < old_lanes => {
            for lane in lanes {
                *lane %= new_lanes as u8;
            }
        }
        _ => {}
    });
    Some((
        mutant,
        Mutation {
            kind: MutationKind::NudgeVectorWidth,
            site,
        },
    ))
}

fn toggle_barrier(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    let site = rng.gen_range(0..=program.kernel.body.stmts.len());
    let fence = *[MemFence::Local, MemFence::Global, MemFence::Both]
        .choose(rng)
        .unwrap();
    let mut mutant = program.clone();
    mutant.kernel.body.stmts.insert(site, Stmt::Barrier(fence));
    Some((
        mutant,
        Mutation {
            kind: MutationKind::ToggleBarrier,
            site,
        },
    ))
}

/// Atomics whose final memory effect is order-independent, so swapping one
/// for another keeps kernels schedule-deterministic.
const COMMUTATIVE_ATOMICS: [Builtin; 6] = [
    Builtin::AtomicAdd,
    Builtin::AtomicMin,
    Builtin::AtomicMax,
    Builtin::AtomicAnd,
    Builtin::AtomicOr,
    Builtin::AtomicXor,
];

fn toggle_atomic_op(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    let mut count = 0usize;
    program.for_each_expr(&mut |e| {
        if let Expr::BuiltinCall { func, .. } = e {
            if COMMUTATIVE_ATOMICS.contains(func) {
                count += 1;
            }
        }
    });
    if count == 0 {
        return None;
    }
    let target = rng.gen_range(0..count);
    let mut mutant = program.clone();
    let mut index = 0usize;
    mutant.for_each_expr_mut(&mut |e| {
        if let Expr::BuiltinCall { func, .. } = e {
            if COMMUTATIVE_ATOMICS.contains(func) {
                if index == target {
                    let alternatives: Vec<Builtin> = COMMUTATIVE_ATOMICS
                        .iter()
                        .copied()
                        .filter(|b| b != func)
                        .collect();
                    *func = *alternatives.choose(rng).unwrap();
                }
                index += 1;
            }
        }
    });
    Some((
        mutant,
        Mutation {
            kind: MutationKind::ToggleAtomicOp,
            site: target,
        },
    ))
}

fn literal_for_bound(stmt: &Stmt) -> Option<i128> {
    if let Stmt::For {
        cond: Some(Expr::Binary {
            op: BinOp::Lt, rhs, ..
        }),
        ..
    } = stmt
    {
        if let Expr::IntLit { value, .. } = **rhs {
            return Some(value);
        }
    }
    None
}

fn perturb_loop_bound(program: &Program, rng: &mut Rng) -> Option<(Program, Mutation)> {
    let mut count = 0usize;
    let mut probe = program.clone();
    for function in &mut probe.functions {
        for_each_for_mut(&mut function.body, &mut |s| {
            if literal_for_bound(s).is_some() {
                count += 1;
            }
        });
    }
    for_each_for_mut(&mut probe.kernel.body, &mut |s| {
        if literal_for_bound(s).is_some() {
            count += 1;
        }
    });
    if count == 0 {
        return None;
    }
    let target = rng.gen_range(0..count);
    let new_bound = i128::from(rng.gen_range(1i64..=10));
    let mut mutant = program.clone();
    let mut index = 0usize;
    let mut rewrite = |s: &mut Stmt| {
        if literal_for_bound(s).is_none() {
            return;
        }
        if index == target {
            if let Stmt::For {
                cond: Some(Expr::Binary { rhs, .. }),
                ..
            } = s
            {
                if let Expr::IntLit { value, .. } = &mut **rhs {
                    *value = if new_bound == *value {
                        *value % 10 + 1
                    } else {
                        new_bound
                    };
                }
            }
        }
        index += 1;
    };
    for function in &mut mutant.functions {
        for_each_for_mut(&mut function.body, &mut rewrite);
    }
    for_each_for_mut(&mut mutant.kernel.body, &mut rewrite);
    Some((
        mutant,
        Mutation {
            kind: MutationKind::PerturbLoopBound,
            site: target,
        },
    ))
}

// ----- chains ------------------------------------------------------------

/// An accept-all chain of seeded mutations over one base program: the
/// blind-mutation [`KernelSource`].  Feedback-guided drivers call
/// [`mutate`] directly and decide acceptance from coverage instead.
#[derive(Debug, Clone)]
pub struct MutationChain {
    current: Program,
    seed: u64,
    step: u64,
    applied: Vec<Mutation>,
}

impl MutationChain {
    /// Starts a chain at `base`; every step derives its mutation seed from
    /// `seed` and the step index.
    pub fn new(base: Program, seed: u64) -> MutationChain {
        MutationChain {
            current: base,
            seed,
            step: 0,
            applied: Vec::new(),
        }
    }

    /// The chain's current program.
    pub fn current(&self) -> &Program {
        &self.current
    }

    /// The mutations applied so far, in order.
    pub fn applied(&self) -> &[Mutation] {
        &self.applied
    }

    /// Applies the next seeded mutation and returns it, or `None` if no
    /// rewrite was applicable this step.
    pub fn step(&mut self) -> Option<Mutation> {
        let mutation_seed = crate::rng::job_seed(self.seed, self.step);
        self.step += 1;
        let (mutant, mutation) = mutate(&self.current, mutation_seed)?;
        self.current = mutant;
        self.applied.push(mutation);
        Some(mutation)
    }
}

impl KernelSource for MutationChain {
    fn describe(&self) -> String {
        format!("mut:{:#x}:{}", self.seed, self.step)
    }

    fn next_program(&mut self) -> Program {
        self.step();
        self.current.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{GenMode, GeneratorOptions};
    use crate::rng::job_seed;

    fn base(mode: GenMode, seed: u64) -> Program {
        crate::generator::generate(&GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::new(mode, seed)
        })
    }

    #[test]
    fn mutation_is_deterministic() {
        let program = base(GenMode::All, 77);
        let a = mutate(&program, 1).expect("mutation applies");
        let b = mutate(&program, 1).expect("mutation applies");
        assert_eq!(clc::print_program(&a.0), clc::print_program(&b.0));
        assert_eq!(a.1, b.1);
        // Different seeds eventually pick different rewrites.
        let c = mutate(&program, 2).expect("mutation applies");
        assert!(a.1 != c.1 || clc::print_program(&a.0) != clc::print_program(&c.0));
    }

    #[test]
    fn mutants_typecheck_and_differ_from_parent() {
        for mode in GenMode::ALL {
            let program = base(mode, 3141);
            for step in 0..8u64 {
                let (mutant, mutation) =
                    mutate(&program, job_seed(0xBEEF, step)).expect("mutation applies");
                clc::check_program(&mutant).unwrap_or_else(|e| {
                    panic!("{mode:?} mutant ({mutation:?}) fails typecheck: {e}")
                });
                assert_ne!(
                    clc::print_program(&mutant),
                    clc::print_program(&program),
                    "{mode:?} mutation {mutation:?} was a no-op"
                );
            }
        }
    }

    #[test]
    fn chains_accumulate_valid_mutants() {
        let mut chain = MutationChain::new(base(GenMode::Barrier, 9), 0xC0FFEE);
        for _ in 0..6 {
            chain.step();
            clc::check_program(chain.current()).expect("chain mutant typechecks");
        }
        assert!(!chain.applied().is_empty());
    }

    #[test]
    fn protected_idioms_survive_mutation() {
        // Barrier count never decreases; atomic_inc rank gates survive.
        let program = base(GenMode::All, 4242);
        let count = |p: &Program, f: &dyn Fn(&Stmt) -> bool| {
            let mut n = 0;
            p.for_each_stmt(&mut |s| {
                if f(s) {
                    n += 1;
                }
            });
            n
        };
        let barriers = count(&program, &|s| matches!(s, Stmt::Barrier(_)));
        let incs = |p: &Program| {
            let mut n = 0;
            p.for_each_expr(&mut |e| {
                if matches!(
                    e,
                    Expr::BuiltinCall {
                        func: Builtin::AtomicInc,
                        ..
                    }
                ) {
                    n += 1;
                }
            });
            n
        };
        let base_incs = incs(&program);
        for step in 0..12u64 {
            let (mutant, _) = mutate(&program, job_seed(7, step)).expect("mutation applies");
            assert!(count(&mutant, &|s| matches!(s, Stmt::Barrier(_))) >= barriers);
            assert_eq!(incs(&mutant), base_incs);
        }
    }
}
