//! Coverage feedback: the *feedback* third of the generator → mutator →
//! feedback decomposition.
//!
//! The paper's campaigns are blind sampling — every kernel is drawn fresh
//! from the grammar, so coverage of bug rules, optimiser passes and
//! miscompilation sites is whatever the dice give.  [`CoverageMap`] is the
//! minimal structure a feedback loop needs on top of that: four 64-bit
//! bitmap words, one per [`CoverageClass`]:
//!
//! * **rules** — which injected bug rules matched the kernel during the
//!   simulated front-end phase (one bloom-style bit per rule name);
//! * **passes** — which genuine optimisation passes actually changed the
//!   program (constant folding, dead-code elimination, simplification);
//! * **miscompiles** — which miscompilation transforms were applied to the
//!   kernel (one bit per `Miscompilation` variant);
//! * **dynamic** — thread-aware execution bits à la MUZZ: races detected,
//!   race sites, barrier-arrival depth, outcome kinds.
//!
//! The map deliberately stays in `clsmith` (which knows nothing about the
//! simulated platform): producers in `opencl-sim` and `clc-interp` map
//! their domain events onto plain `(class, bit)` pairs, so the corpus
//! driver in `fuzz-harness` can merge and compare maps without depending
//! on how the bits were produced.
//!
//! Merging is bitwise OR, which makes it associative, commutative and
//! idempotent — exactly the algebra the journal/shard-merge layer requires
//! for bit-identical refolds (pinned by the unit tests below).

use std::fmt;

/// Number of 64-bit words in a [`CoverageMap`] (one per [`CoverageClass`]).
pub const COVERAGE_WORDS: usize = 4;

/// The four bitmap classes of a [`CoverageMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageClass {
    /// Bug-rule hits recorded during the simulated front-end phase.
    Rules,
    /// Optimiser passes that changed the program.
    Passes,
    /// Miscompilation transforms applied to the kernel.
    Miscompiles,
    /// Dynamic schedule/race/barrier bits from real launches.
    Dynamic,
}

impl CoverageClass {
    /// All classes, in word order.
    pub const ALL: [CoverageClass; COVERAGE_WORDS] = [
        CoverageClass::Rules,
        CoverageClass::Passes,
        CoverageClass::Miscompiles,
        CoverageClass::Dynamic,
    ];

    fn word(self) -> usize {
        match self {
            CoverageClass::Rules => 0,
            CoverageClass::Passes => 1,
            CoverageClass::Miscompiles => 2,
            CoverageClass::Dynamic => 3,
        }
    }
}

/// A fixed-size coverage bitmap: 256 bits in four class words.
///
/// The default value is the empty map, which is the identity of
/// [`merge`](CoverageMap::merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CoverageMap {
    words: [u64; COVERAGE_WORDS],
}

impl CoverageMap {
    /// Total number of bits across all classes.
    pub const BITS: u32 = 64 * COVERAGE_WORDS as u32;

    /// The empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Sets one bit (`bit` is reduced modulo 64).
    pub fn set(&mut self, class: CoverageClass, bit: u32) {
        self.words[class.word()] |= 1u64 << (bit % 64);
    }

    /// Sets the bit a 64-bit hash selects (bloom-style, collisions allowed:
    /// coverage is a saturation signal, not an exact set).
    pub fn set_hash(&mut self, class: CoverageClass, hash: u64) {
        self.set(class, (hash % 64) as u32);
    }

    /// Whether one bit is set (`bit` is reduced modulo 64).
    pub fn contains(&self, class: CoverageClass, bit: u32) -> bool {
        self.words[class.word()] & (1u64 << (bit % 64)) != 0
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits across all classes.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of set bits in one class word.
    pub fn count_class(&self, class: CoverageClass) -> u32 {
        self.words[class.word()].count_ones()
    }

    /// Fraction of the 256 bits that are set, in `0.0..=1.0`.
    pub fn saturation(&self) -> f64 {
        f64::from(self.count()) / f64::from(CoverageMap::BITS)
    }

    /// Folds `other` into `self` (bitwise OR).
    ///
    /// Associative, commutative, idempotent; the empty map is the identity.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (word, theirs) in self.words.iter_mut().zip(other.words.iter()) {
            *word |= theirs;
        }
    }

    /// Number of bits set in `other` that `self` does not cover yet — the
    /// selection signal of the feedback loop (a mutant that lights no new
    /// bit is not interesting).
    pub fn new_bits(&self, other: &CoverageMap) -> u32 {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(mine, theirs)| (theirs & !mine).count_ones())
            .sum()
    }

    /// Whitespace-free journal token: four fixed-width hex words joined by
    /// dots, e.g. `0000000000000003.0000000000000001.0000000000000000.0000000000000010`.
    pub fn token(&self) -> String {
        format!(
            "{:016x}.{:016x}.{:016x}.{:016x}",
            self.words[0], self.words[1], self.words[2], self.words[3]
        )
    }

    /// Parses a [`token`](CoverageMap::token).
    pub fn parse(token: &str) -> Option<CoverageMap> {
        let mut words = [0u64; COVERAGE_WORDS];
        let mut parts = token.split('.');
        for word in words.iter_mut() {
            let part = parts.next()?;
            if part.len() != 16 {
                return None;
            }
            *word = u64::from_str_radix(part, 16).ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(CoverageMap { words })
    }
}

impl fmt::Display for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

/// FNV-1a hash of a name, for mapping string identifiers (bug-rule names,
/// configuration names) onto coverage bits deterministically.
pub fn coverage_hash(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bits: &[(CoverageClass, u32)]) -> CoverageMap {
        let mut map = CoverageMap::new();
        for &(class, bit) in bits {
            map.set(class, bit);
        }
        map
    }

    #[test]
    fn set_contains_and_count() {
        let mut map = CoverageMap::new();
        assert!(map.is_empty());
        map.set(CoverageClass::Rules, 3);
        map.set(CoverageClass::Dynamic, 63);
        map.set(CoverageClass::Dynamic, 63 + 64); // wraps modulo 64
        assert!(map.contains(CoverageClass::Rules, 3));
        assert!(map.contains(CoverageClass::Dynamic, 63));
        assert!(!map.contains(CoverageClass::Passes, 3));
        assert_eq!(map.count(), 2);
        assert_eq!(map.count_class(CoverageClass::Dynamic), 1);
        assert!(map.saturation() > 0.0 && map.saturation() < 1.0);
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample(&[(CoverageClass::Rules, 1), (CoverageClass::Passes, 2)]);
        let b = sample(&[(CoverageClass::Rules, 7), (CoverageClass::Dynamic, 9)]);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let a = sample(&[(CoverageClass::Rules, 0)]);
        let b = sample(&[(CoverageClass::Miscompiles, 5)]);
        let c = sample(&[(CoverageClass::Dynamic, 11), (CoverageClass::Rules, 4)]);
        // (a ∪ b) ∪ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn self_merge_is_idempotent() {
        let a = sample(&[(CoverageClass::Passes, 1), (CoverageClass::Dynamic, 40)]);
        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged, a);
    }

    #[test]
    fn empty_map_is_the_identity() {
        let a = sample(&[(CoverageClass::Rules, 13), (CoverageClass::Miscompiles, 8)]);
        let mut left = a;
        left.merge(&CoverageMap::new());
        assert_eq!(left, a);
        let mut right = CoverageMap::new();
        right.merge(&a);
        assert_eq!(right, a);
    }

    #[test]
    fn new_bits_counts_only_uncovered() {
        let seen = sample(&[(CoverageClass::Rules, 1), (CoverageClass::Rules, 2)]);
        let hit = sample(&[(CoverageClass::Rules, 2), (CoverageClass::Dynamic, 3)]);
        assert_eq!(seen.new_bits(&hit), 1);
        assert_eq!(seen.new_bits(&seen), 0);
        assert_eq!(CoverageMap::new().new_bits(&hit), 2);
    }

    #[test]
    fn token_roundtrips() {
        let a = sample(&[
            (CoverageClass::Rules, 0),
            (CoverageClass::Passes, 63),
            (CoverageClass::Dynamic, 17),
        ]);
        let token = a.token();
        assert!(!token.contains(char::is_whitespace));
        assert_eq!(CoverageMap::parse(&token), Some(a));
        assert_eq!(CoverageMap::parse(""), None);
        assert_eq!(CoverageMap::parse("zz"), None);
        assert_eq!(
            CoverageMap::parse(&format!("{token}.deadbeefdeadbeef")),
            None
        );
    }

    #[test]
    fn coverage_hash_is_stable_and_spread() {
        assert_eq!(coverage_hash("a"), coverage_hash("a"));
        assert_ne!(coverage_hash("a"), coverage_hash("b"));
        // Spot-check the FNV-1a constant behaviour on the empty string.
        assert_eq!(coverage_hash(""), 0xcbf2_9ce4_8422_2325);
    }
}
