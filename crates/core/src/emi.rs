//! EMI testing machinery (§5 of the paper): dead-by-construction block
//! generation, the three pruning strategies (*leaf*, *compound*, *lift*) and
//! injection of EMI blocks into existing kernels.
//!
//! The workflow mirrors the paper exactly:
//!
//! 1. A *base* program is generated with (or injected with) EMI blocks whose
//!    guard `dead[a] < dead[b]` (with `b < a`) is false under the host's
//!    `dead[j] = j` initialisation, so the block bodies are dynamically
//!    unreachable by construction.
//! 2. *Variants* are derived by pruning the contents of the EMI blocks
//!    according to per-strategy probabilities.
//! 3. All variants must produce identical results; a mismatch on a single
//!    compiler configuration indicates a miscompilation.

use crate::options::PruneProbabilities;
use crate::rng::Rng;
use clc::expr::Expr;
use clc::stmt::{Block, EmiBlock, Stmt};
use clc::types::{ScalarType, Type};
use clc::{BufferInit, BufferSpec, Param, Program};
use std::collections::HashMap;

/// Derives an EMI variant of `base` by pruning the statements inside its EMI
/// blocks with the given probabilities.
///
/// Statements *outside* EMI blocks are never touched, so the variant is
/// guaranteed to be equivalent to the base modulo the standard `dead` input.
pub fn prune_variant(base: &Program, probs: &PruneProbabilities, seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut variant = base.clone();
    variant.for_each_block_mut(&mut |block| {
        for stmt in &mut block.stmts {
            if let Stmt::Emi(emi) = stmt {
                emi.body = prune_block(&emi.body, probs, &mut rng);
            }
        }
    });
    variant
}

/// Applies the pruning strategies to one block (recursively).
///
/// Declarations are never removed on their own: deleting a declaration while
/// later statements still use the variable would produce code that no longer
/// compiles, and EMI variants must stay compilable (they are only allowed to
/// differ in dynamically dead behaviour).  Whole compound statements that
/// contain declarations are still removable because their uses are scoped
/// inside them.
fn prune_block(block: &Block, probs: &PruneProbabilities, rng: &mut Rng) -> Block {
    let mut out = Block::new();
    for stmt in block.iter() {
        if stmt.is_compound() {
            // compound pruning first (§5): delete the whole branch node.
            if rng.gen_bool(probs.compound) {
                continue;
            }
            // lift pruning with the adjusted probability.
            if rng.gen_bool(probs.adjusted_lift()) {
                for lifted in lift_statement(stmt) {
                    // Lifted children are themselves subject to pruning.
                    match lifted {
                        Stmt::If { .. }
                        | Stmt::For { .. }
                        | Stmt::While { .. }
                        | Stmt::Block(_) => {
                            let nested = prune_block(&Block::of(vec![lifted]), probs, rng);
                            out.stmts.extend(nested.stmts);
                        }
                        other => {
                            let is_decl = matches!(other, Stmt::Decl { .. });
                            if is_decl || !rng.gen_bool(probs.leaf) {
                                out.push(other);
                            }
                        }
                    }
                }
                continue;
            }
            // Otherwise keep the node but prune inside it.
            out.push(prune_inside(stmt, probs, rng));
        } else {
            // leaf pruning (declarations are exempt, see above).
            if !matches!(stmt, Stmt::Decl { .. }) && rng.gen_bool(probs.leaf) {
                continue;
            }
            out.push(stmt.clone());
        }
    }
    out
}

fn prune_inside(stmt: &Stmt, probs: &PruneProbabilities, rng: &mut Rng) -> Stmt {
    match stmt {
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => Stmt::If {
            cond: cond.clone(),
            then_block: prune_block(then_block, probs, rng),
            else_block: else_block.as_ref().map(|b| prune_block(b, probs, rng)),
        },
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => Stmt::For {
            init: init.clone(),
            cond: cond.clone(),
            update: update.clone(),
            body: prune_block(body, probs, rng),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.clone(),
            body: prune_block(body, probs, rng),
        },
        Stmt::Block(b) => Stmt::Block(prune_block(b, probs, rng)),
        Stmt::Emi(emi) => Stmt::Emi(EmiBlock {
            index: emi.index,
            guard: emi.guard,
            body: prune_block(&emi.body, probs, rng),
        }),
        other => other.clone(),
    }
}

/// The *lift* transformation (§5): promotes the children of a branch node to
/// its position.  A conditional `if (c) { S } else { T }` becomes `S; T`; a
/// loop becomes its initialiser followed by one copy of the body with
/// outermost `break` / `continue` statements removed so the result stays
/// syntactically valid.
pub fn lift_statement(stmt: &Stmt) -> Vec<Stmt> {
    match stmt {
        Stmt::If {
            then_block,
            else_block,
            ..
        } => {
            let mut out = then_block.stmts.clone();
            if let Some(e) = else_block {
                out.extend(e.stmts.clone());
            }
            out
        }
        Stmt::For { init, body, .. } => {
            let mut out = Vec::new();
            if let Some(init) = init {
                out.push((**init).clone());
            }
            out.extend(strip_outer_jumps(body));
            out
        }
        Stmt::While { body, .. } => strip_outer_jumps(body),
        Stmt::Block(b) => b.stmts.clone(),
        Stmt::Emi(emi) => emi.body.stmts.clone(),
        other => vec![other.clone()],
    }
}

/// Removes `break` / `continue` at the outermost level of a loop body
/// (nested loops keep theirs).
fn strip_outer_jumps(body: &Block) -> Vec<Stmt> {
    fn strip_block(block: &Block) -> Block {
        let mut out = Block::new();
        for s in block.iter() {
            match s {
                Stmt::Break | Stmt::Continue => {}
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: strip_block(then_block),
                    else_block: else_block.as_ref().map(strip_block),
                }),
                Stmt::Block(b) => out.push(Stmt::Block(strip_block(b))),
                // Loops establish a new break/continue target; leave them be.
                other => out.push(other.clone()),
            }
        }
        out
    }
    strip_block(body).stmts
}

/// Description of one EMI injection into an existing (e.g. benchmark) kernel.
#[derive(Debug, Clone)]
pub struct InjectionOptions {
    /// Length of the `dead` array parameter added to the kernel.
    pub dead_len: usize,
    /// Number of injection points.
    pub injection_points: usize,
    /// Whether free variables of the injected block are substituted
    /// (`#define`-style renaming) with variables of the host kernel instead
    /// of being declared locally (§5, "Injecting into real-world kernels").
    pub substitutions: bool,
    /// RNG seed controlling injection point and substitution choices.
    pub seed: u64,
}

impl Default for InjectionOptions {
    fn default() -> Self {
        InjectionOptions {
            dead_len: 16,
            injection_points: 1,
            substitutions: false,
            seed: 0,
        }
    }
}

/// Injects EMI blocks into an existing program, returning the new program.
///
/// The kernel gains a `global int *dead` parameter (with an accompanying
/// `dead[j] = j` buffer specification) and `injection_points` EMI blocks
/// inserted at pseudo-random statement positions in the kernel body.  Each
/// injected block is a clone of one of `bodies` (chosen round-robin).
///
/// With `substitutions` disabled, every free variable of the block is a
/// variable the block itself declares, so the block is self-contained.  With
/// substitutions enabled, reads and writes of the block's scalar locals are
/// renamed, where possible, to scalar variables already in scope in the host
/// kernel — the paper's hypothesis being that this lets the compiler
/// (erroneously) optimise across the block boundary.
pub fn inject_emi_blocks(base: &Program, bodies: &[Block], options: &InjectionOptions) -> Program {
    let mut rng = Rng::seed_from_u64(options.seed);
    let mut program = base.clone();
    if bodies.is_empty() || options.injection_points == 0 {
        return program;
    }

    // Add the dead parameter and buffer if not already present.
    if !program.has_dead_array() {
        program.dead_len = options.dead_len;
        program.kernel.params.push(Param::new(
            "dead",
            Type::Scalar(ScalarType::Int).pointer_to(clc::AddressSpace::Global),
        ));
        program.buffers.push(BufferSpec::new(
            "dead",
            ScalarType::Int,
            options.dead_len,
            BufferInit::Iota,
        ));
    }

    // Scalar kernel parameters are in scope everywhere in the body.
    let param_scalars: Vec<String> = program
        .kernel
        .params
        .iter()
        .filter(|p| p.ty.is_scalar())
        .map(|p| p.name.clone())
        .collect();

    for point in 0..options.injection_points {
        // Pick the injection point first so substitutions only use variables
        // that are already declared at that point (the paper notes that
        // "some manual tweaking was necessary to ensure well-typed
        // substitutions"; choosing in-scope variables automates that).
        let body_len = program.kernel.body.stmts.len();
        let pos = rng.gen_range(0..=body_len);
        let mut host_scalars = param_scalars.clone();
        for stmt in program.kernel.body.stmts.iter().take(pos) {
            if let Stmt::Decl { name, ty, .. } = stmt {
                if ty.is_scalar() {
                    host_scalars.push(name.clone());
                }
            }
        }
        let mut block = bodies[point % bodies.len()].clone();
        if options.substitutions && !host_scalars.is_empty() {
            block = substitute_free_scalars(&block, &host_scalars, &mut rng);
        }
        let guard_a = 1 + rng.gen_range(0..(program.dead_len - 1));
        let guard_b = rng.gen_range(0..guard_a);
        let emi = Stmt::Emi(EmiBlock {
            index: point,
            guard: (guard_a, guard_b),
            body: block,
        });
        program.kernel.body.stmts.insert(pos, emi);
    }
    program
}

/// Substitutes some of the block's own scalar declarations with host
/// variables: the declaration is dropped and all uses renamed.
fn substitute_free_scalars(block: &Block, host_scalars: &[String], rng: &mut Rng) -> Block {
    // Collect the block's own top-level scalar declarations.
    let mut renames: HashMap<String, String> = HashMap::new();
    let mut kept = Block::new();
    for stmt in block.iter() {
        match stmt {
            Stmt::Decl { name, ty, .. } if ty.is_scalar() && rng.gen_bool(0.6) => {
                let target = host_scalars[rng.gen_range(0..host_scalars.len())].clone();
                renames.insert(name.clone(), target);
                // Declaration dropped: uses now refer to the host variable.
            }
            other => kept.push(other.clone()),
        }
    }
    if renames.is_empty() {
        return block.clone();
    }
    let mut out = kept;
    out.for_each_expr_mut(&mut |e| {
        if let Expr::Var(name) = e {
            if let Some(new) = renames.get(name) {
                *name = new.clone();
            }
        }
    });
    out
}

/// Checks whether every EMI block in the program is dead by construction.
pub fn all_emi_blocks_dead(program: &Program) -> bool {
    program
        .emi_blocks()
        .iter()
        .all(|b| b.is_dead_by_construction())
}

/// Total number of statements inside EMI blocks (a measure of how much
/// prunable material a base program has).
pub fn emi_statement_count(program: &Program) -> usize {
    program
        .emi_blocks()
        .iter()
        .map(|b| b.body.node_count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::options::{GenMode, GeneratorOptions};
    use clc::expr::BinOp;
    use clc::{KernelDef, LaunchConfig};

    fn emi_base(seed: u64) -> Program {
        generate(&GeneratorOptions::new(GenMode::All, seed).with_emi())
    }

    #[test]
    fn pruning_with_zero_probabilities_is_identity() {
        let base = emi_base(11);
        let probs = PruneProbabilities::new(0.0, 0.0, 0.0).unwrap();
        let variant = prune_variant(&base, &probs, 99);
        assert_eq!(base, variant);
    }

    #[test]
    fn full_leaf_and_compound_pruning_empties_emi_blocks() {
        let base = emi_base(12);
        let probs = PruneProbabilities::new(1.0, 1.0, 0.0).unwrap();
        let variant = prune_variant(&base, &probs, 7);
        assert_eq!(emi_statement_count(&variant), 0);
        // Code outside EMI blocks is untouched.
        assert_eq!(
            base.kernel.body.stmts.len(),
            variant.kernel.body.stmts.len()
        );
    }

    #[test]
    fn pruned_variants_still_typecheck_and_stay_dead() {
        let base = emi_base(13);
        for (i, probs) in PruneProbabilities::table5_combinations().iter().enumerate() {
            let variant = prune_variant(&base, probs, i as u64);
            assert!(all_emi_blocks_dead(&variant));
            if let Err(e) = clc::check_program(&variant) {
                panic!("variant {i} fails to typecheck: {e}");
            }
        }
    }

    #[test]
    fn pruning_is_deterministic_in_the_seed() {
        let base = emi_base(14);
        let probs = PruneProbabilities::new(0.3, 0.3, 0.3).unwrap();
        assert_eq!(
            prune_variant(&base, &probs, 5),
            prune_variant(&base, &probs, 5)
        );
    }

    #[test]
    fn lift_flattens_conditionals_and_strips_loop_jumps() {
        let stmt = Stmt::if_else(
            Expr::int(1),
            Block::of(vec![Stmt::Break, Stmt::expr(Expr::int(1))]),
            Block::of(vec![Stmt::expr(Expr::int(2))]),
        );
        let lifted = lift_statement(&stmt);
        assert_eq!(lifted.len(), 3);

        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::decl(
                "i",
                Type::Scalar(ScalarType::Int),
                Some(Expr::int(0)),
            ))),
            cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(3))),
            update: None,
            body: Block::of(vec![
                Stmt::Break,
                Stmt::expr(Expr::int(5)),
                Stmt::While {
                    cond: Expr::int(0),
                    body: Block::of(vec![Stmt::Continue]),
                },
            ]),
        };
        let lifted = lift_statement(&loop_stmt);
        // init + (body minus the outer break, keeping the nested loop intact)
        assert_eq!(lifted.len(), 3);
        assert!(matches!(lifted[0], Stmt::Decl { .. }));
        assert!(lifted.iter().all(|s| !matches!(s, Stmt::Break)));
        match &lifted[2] {
            Stmt::While { body, .. } => assert!(matches!(body.stmts[0], Stmt::Continue)),
            other => panic!("expected nested while to survive, got {other:?}"),
        }
    }

    #[test]
    fn injection_adds_dead_array_and_blocks() {
        // A small hand-written host kernel.
        let mut host = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(vec![
                    Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
                    Stmt::assign(Expr::index(Expr::var("out"), Expr::int(0)), Expr::var("x")),
                ]),
            },
            LaunchConfig::single_group(4),
        );
        host.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));

        let body = Block::of(vec![
            Stmt::decl("e0", Type::Scalar(ScalarType::Int), Some(Expr::int(3))),
            Stmt::assign(
                Expr::var("e0"),
                Expr::binary(BinOp::Add, Expr::var("e0"), Expr::int(1)),
            ),
        ]);
        let injected = inject_emi_blocks(
            &host,
            std::slice::from_ref(&body),
            &InjectionOptions {
                injection_points: 2,
                substitutions: false,
                ..Default::default()
            },
        );
        assert!(injected.has_dead_array());
        assert_eq!(injected.emi_blocks().len(), 2);
        assert!(all_emi_blocks_dead(&injected));
        assert!(clc::check_program(&injected).is_ok());

        // With substitutions, the block's local may be renamed to `x`, in
        // which case its declaration disappears.
        let with_subs = inject_emi_blocks(
            &host,
            &[body],
            &InjectionOptions {
                injection_points: 1,
                substitutions: true,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(clc::check_program(&with_subs).is_ok());
    }

    #[test]
    fn substitution_renames_uses_consistently() {
        let block = Block::of(vec![
            Stmt::decl("e0", Type::Scalar(ScalarType::Int), Some(Expr::int(3))),
            Stmt::assign(
                Expr::var("e0"),
                Expr::binary(BinOp::Add, Expr::var("e0"), Expr::int(1)),
            ),
        ]);
        let mut rng = Rng::seed_from_u64(1);
        let hosts = vec!["hostvar".to_string()];
        // Try a few seeds until the 60% substitution coin lands.
        let mut substituted = None;
        for _ in 0..20 {
            let out = substitute_free_scalars(&block, &hosts, &mut rng);
            if out.stmts.len() == 1 {
                substituted = Some(out);
                break;
            }
        }
        let out = substituted.expect("substitution should eventually trigger");
        let mut uses_host = 0;
        let mut uses_old = 0;
        for s in out.iter() {
            s.for_each_expr(true, &mut |e| {
                if let Expr::Var(n) = e {
                    if n == "hostvar" {
                        uses_host += 1;
                    }
                    if n == "e0" {
                        uses_old += 1;
                    }
                }
            });
        }
        assert!(uses_host >= 2);
        assert_eq!(uses_old, 0);
    }
}
