//! Generator modes and options.

use std::fmt;

/// The six CLsmith generation modes (§4 of the paper).
///
/// * [`GenMode::Basic`] — "embarrassingly parallel" kernels, no communication.
/// * [`GenMode::Vector`] — additionally exercises OpenCL vector types and
///   built-ins.
/// * [`GenMode::Barrier`] — deterministic intra-group communication through a
///   shared array whose ownership is re-distributed at barriers.
/// * [`GenMode::AtomicSection`] — atomic-counter guarded sections whose local
///   effects are hashed into a per-group "special value".
/// * [`GenMode::AtomicReduction`] — commutative/associative atomic reductions
///   followed by barrier-protected accumulation.
/// * [`GenMode::All`] — everything combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GenMode {
    /// Embarrassingly parallel kernels (lifted Csmith).
    Basic,
    /// BASIC plus vector types and operations.
    Vector,
    /// Barrier-based deterministic communication.
    Barrier,
    /// Atomic sections.
    AtomicSection,
    /// Atomic reductions.
    AtomicReduction,
    /// All features combined.
    All,
}

impl GenMode {
    /// All modes, in the order used throughout the paper's tables.
    pub const ALL: [GenMode; 6] = [
        GenMode::Basic,
        GenMode::Vector,
        GenMode::Barrier,
        GenMode::AtomicSection,
        GenMode::AtomicReduction,
        GenMode::All,
    ];

    /// The display name used in Table 4.
    pub fn name(self) -> &'static str {
        match self {
            GenMode::Basic => "BASIC",
            GenMode::Vector => "VECTOR",
            GenMode::Barrier => "BARRIER",
            GenMode::AtomicSection => "ATOMIC SECTION",
            GenMode::AtomicReduction => "ATOMIC REDUCTION",
            GenMode::All => "ALL",
        }
    }

    /// Whether kernels of this mode use vector types and built-ins.
    pub fn uses_vectors(self) -> bool {
        matches!(self, GenMode::Vector | GenMode::All)
    }

    /// Whether kernels of this mode use the BARRIER communication idiom.
    pub fn uses_barrier_comm(self) -> bool {
        matches!(self, GenMode::Barrier | GenMode::All)
    }

    /// Whether kernels of this mode contain atomic sections.
    pub fn uses_atomic_sections(self) -> bool {
        matches!(self, GenMode::AtomicSection | GenMode::All)
    }

    /// Whether kernels of this mode contain atomic reductions.
    pub fn uses_atomic_reductions(self) -> bool {
        matches!(self, GenMode::AtomicReduction | GenMode::All)
    }

    /// Whether kernels of this mode contain any barrier statements (the
    /// BARRIER and ATOMIC REDUCTION idioms both synchronise with barriers).
    pub fn uses_barriers(self) -> bool {
        self.uses_barrier_comm() || self.uses_atomic_reductions() || self.uses_atomic_sections()
    }
}

impl fmt::Display for GenMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for EMI (dead-by-construction) block generation (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmiOptions {
    /// Length of the `dead` array parameter.
    pub dead_len: usize,
    /// Minimum number of EMI blocks to inject.
    pub min_blocks: usize,
    /// Maximum number of EMI blocks to inject.
    pub max_blocks: usize,
    /// Whether EMI bodies may contain `while (1)` loops.  The paper had to
    /// strip these for configuration 8 (Intel HD 4000), whose compiler hangs
    /// on them (Figure 1(e)).
    pub allow_infinite_loops: bool,
}

impl Default for EmiOptions {
    fn default() -> Self {
        EmiOptions {
            dead_len: 16,
            min_blocks: 1,
            max_blocks: 5,
            allow_infinite_loops: false,
        }
    }
}

/// Options controlling random program generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorOptions {
    /// RNG seed; the (seed, options) pair fully determines the program.
    pub seed: u64,
    /// Generation mode.
    pub mode: GenMode,
    /// Minimum total work-item count (inclusive).  The paper uses 100.
    pub min_threads: usize,
    /// Maximum total work-item count (exclusive).  The paper uses 10 000;
    /// the default here is smaller so that emulated campaigns finish in
    /// reasonable time (see EXPERIMENTS.md for the scaling discussion).
    pub max_threads: usize,
    /// Maximum work-group size (the paper constrains this to 256).
    pub max_group_size: usize,
    /// Number of fields in the per-thread globals struct.
    pub global_fields: usize,
    /// Number of additional local struct types to define.
    pub extra_structs: usize,
    /// Number of helper functions.
    pub helper_functions: usize,
    /// Statements per top-level block (roughly).
    pub block_statements: usize,
    /// Maximum statement nesting depth.
    pub max_block_depth: usize,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Number of barrier synchronisation points (BARRIER mode).
    pub barrier_sync_points: usize,
    /// Number of atomic sections (ATOMIC SECTION mode).
    pub atomic_sections: usize,
    /// Number of atomic reductions (ATOMIC REDUCTION mode).
    pub atomic_reductions: usize,
    /// Number of rows in the BARRIER-mode permutation table (the paper's
    /// `d`, 10 in practice).
    pub permutation_rows: usize,
    /// EMI block injection; `None` disables the `dead` array entirely.
    pub emi: Option<EmiOptions>,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            seed: 0,
            mode: GenMode::Basic,
            min_threads: 64,
            max_threads: 256,
            max_group_size: 256,
            global_fields: 6,
            extra_structs: 2,
            helper_functions: 2,
            block_statements: 8,
            max_block_depth: 3,
            max_expr_depth: 4,
            barrier_sync_points: 3,
            atomic_sections: 3,
            atomic_reductions: 3,
            permutation_rows: 10,
            emi: None,
        }
    }
}

impl GeneratorOptions {
    /// Options for a given mode and seed with the default sizes.
    pub fn new(mode: GenMode, seed: u64) -> GeneratorOptions {
        GeneratorOptions {
            seed,
            mode,
            ..GeneratorOptions::default()
        }
    }

    /// The paper's generation scale: 100–10 000 work-items per kernel and the
    /// full permutation table.  Campaigns at this scale are slow under
    /// emulation; the table binaries default to [`GeneratorOptions::new`] and
    /// accept `--paper-scale` to switch to this.
    pub fn paper_scale(mode: GenMode, seed: u64) -> GeneratorOptions {
        GeneratorOptions {
            seed,
            mode,
            min_threads: 100,
            max_threads: 10_000,
            block_statements: 12,
            helper_functions: 3,
            ..GeneratorOptions::default()
        }
    }

    /// Enables EMI block generation with default EMI options.
    pub fn with_emi(mut self) -> GeneratorOptions {
        self.emi = Some(EmiOptions::default());
        self
    }
}

/// Probabilities for the three EMI pruning strategies (§5).
///
/// `leaf` and `compound` reproduce the strategies of the original EMI work;
/// `lift` is the paper's novel strategy that promotes the children of a
/// branch node into its parent.  Because compound and lift both remove branch
/// nodes and compound is applied first, lifting is performed with the
/// adjusted probability `lift / (1 - compound)`, which requires
/// `compound + lift <= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneProbabilities {
    /// Probability of deleting a leaf statement.
    pub leaf: f64,
    /// Probability of deleting a compound statement.
    pub compound: f64,
    /// Probability of lifting a compound statement's children.
    pub lift: f64,
}

impl PruneProbabilities {
    /// Creates and validates pruning probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error when any probability is outside `[0, 1]` or when
    /// `compound + lift > 1` (the adjusted lift probability would exceed 1).
    pub fn new(leaf: f64, compound: f64, lift: f64) -> Result<PruneProbabilities, String> {
        for (name, p) in [("leaf", leaf), ("compound", compound), ("lift", lift)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability {p} outside [0, 1]"));
            }
        }
        if compound + lift > 1.0 + 1e-9 {
            return Err(format!(
                "compound ({compound}) + lift ({lift}) must not exceed 1"
            ));
        }
        Ok(PruneProbabilities {
            leaf,
            compound,
            lift,
        })
    }

    /// The adjusted lift probability `lift / (1 - compound)` described in §5.
    pub fn adjusted_lift(&self) -> f64 {
        if self.compound >= 1.0 {
            0.0
        } else {
            (self.lift / (1.0 - self.compound)).min(1.0)
        }
    }

    /// The 40 probability combinations used for Table 5: every combination of
    /// `leaf`, `compound`, `lift` over `{0, 0.3, 0.6, 1}` satisfying
    /// `compound + lift <= 1`.
    pub fn table5_combinations() -> Vec<PruneProbabilities> {
        let grid = [0.0, 0.3, 0.6, 1.0];
        let mut out = Vec::new();
        for &leaf in &grid {
            for &compound in &grid {
                for &lift in &grid {
                    if let Ok(p) = PruneProbabilities::new(leaf, compound, lift) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_feature_queries() {
        assert!(!GenMode::Basic.uses_vectors());
        assert!(GenMode::Vector.uses_vectors());
        assert!(GenMode::All.uses_vectors());
        assert!(GenMode::Barrier.uses_barrier_comm());
        assert!(GenMode::AtomicReduction.uses_barriers());
        assert!(!GenMode::Basic.uses_barriers());
        assert_eq!(GenMode::ALL.len(), 6);
        assert_eq!(GenMode::AtomicSection.name(), "ATOMIC SECTION");
    }

    #[test]
    fn prune_probability_validation() {
        assert!(PruneProbabilities::new(0.5, 0.5, 0.5).is_ok());
        assert!(PruneProbabilities::new(0.0, 0.6, 0.6).is_err());
        assert!(PruneProbabilities::new(1.5, 0.0, 0.0).is_err());
        let p = PruneProbabilities::new(0.0, 0.3, 0.6).unwrap();
        assert!((p.adjusted_lift() - 0.6 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn table5_grid_matches_paper_count() {
        // The paper derives 40 variants per base program from the probability
        // grid {0, 0.3, 0.6, 1}^3 restricted to compound + lift <= 1.
        let combos = PruneProbabilities::table5_combinations();
        assert_eq!(combos.len(), 40);
        assert!(combos.iter().all(|p| p.compound + p.lift <= 1.0 + 1e-9));
    }

    #[test]
    fn defaults_are_reasonable() {
        let opts = GeneratorOptions::default();
        assert!(opts.min_threads < opts.max_threads);
        assert!(opts.max_group_size <= 256);
        let paper = GeneratorOptions::paper_scale(GenMode::All, 1);
        assert_eq!(paper.min_threads, 100);
        assert_eq!(paper.max_threads, 10_000);
        let emi = GeneratorOptions::new(GenMode::Basic, 3).with_emi();
        assert!(emi.emi.is_some());
    }
}
