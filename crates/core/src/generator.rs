//! The CLsmith random kernel generator (§4 of the paper).
//!
//! Programs are generated type-directed and by construction free of
//! undefined behaviour and nondeterminism:
//!
//! * all arithmetic that could overflow, divide by zero or shift out of
//!   range goes through the safe-math builtins (§4.1);
//! * work-item ids never appear in generator-chosen expressions — they are
//!   only used by the fixed communication idioms (§4.2, "Avoiding barrier
//!   divergence");
//! * barriers are only emitted at the top level of the kernel body, so no
//!   divergent control flow can surround them;
//! * every local variable is initialised at its declaration.
//!
//! The per-thread "globals struct" mirrors CLsmith's treatment of Csmith
//! globals (§4.1): OpenCL has no program-scope variables, so would-be
//! globals become fields of a struct that is passed by reference to every
//! helper function.  This is what makes CLsmith programs struct-heavy and
//! biased towards struct miscompilations, which the paper discusses at
//! length.

use crate::options::{EmiOptions, GeneratorOptions};
use crate::rng::{Rng, SliceRandom};
use clc::expr::{AssignOp, BinOp, Builtin, Expr, IdKind};
use clc::stmt::{Block, EmiBlock, Initializer, MemFence, Stmt};
use clc::types::{AddressSpace, Field, ScalarType, StructDef, StructId, Type, VectorWidth};
use clc::{BufferInit, BufferSpec, FunctionDef, KernelDef, LaunchConfig, Param, Program};

// Note on ATOMIC SECTION mode: the paper equips each group with a randomly
// sized pool of (counter, special value) pairs and lets sections pick a pair
// at random (§4.2).  If two sections share a counter, which section's body a
// given counter value triggers becomes schedule dependent — almost certainly
// the "bug in the implementation of atomic sections" that forced the authors
// to discard 1563 ATOMIC SECTION and 1622 ALL tests (§7.3).  We therefore give
// every section its own (counter, special value) pair.

/// Generates one random program from the given options.
///
/// The same options (including the seed) always produce the same program.
pub fn generate(options: &GeneratorOptions) -> Program {
    Generator::new(options.clone()).generate()
}

/// A convenience wrapper that pairs generation with its options.
#[derive(Debug)]
pub struct Generator {
    opts: GeneratorOptions,
    rng: Rng,
    name_counter: usize,
}

/// What the current function uses to reach the globals struct.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GlobalsAccess {
    /// Kernel scope: a local value named `g`.
    Direct,
    /// Helper function scope: a pointer parameter named `gp`.
    ViaPointer,
}

/// Generation-time symbol pools for one function body.
#[derive(Debug, Clone)]
struct GenCtx {
    scalars: Vec<(String, ScalarType)>,
    vectors: Vec<(String, ScalarType, VectorWidth)>,
    /// Struct-typed locals (name, struct id).
    structs: Vec<(String, StructId)>,
    /// Pointer-to-struct locals (name, pointee struct id).
    struct_ptrs: Vec<(String, StructId)>,
    globals: GlobalsAccess,
    /// Whether we are generating inside a helper function (restricts calls).
    in_helper: bool,
    /// Whether the statements being generated are inside an EMI block (the
    /// code is dead, so jumps and heavier nesting are allowed).
    in_emi: bool,
    /// Whether we are directly inside a loop (break/continue are legal).
    in_loop: bool,
}

impl GenCtx {
    fn kernel() -> GenCtx {
        GenCtx {
            scalars: Vec::new(),
            vectors: Vec::new(),
            structs: Vec::new(),
            struct_ptrs: Vec::new(),
            globals: GlobalsAccess::Direct,
            in_helper: false,
            in_emi: false,
            in_loop: false,
        }
    }

    fn helper() -> GenCtx {
        GenCtx {
            globals: GlobalsAccess::ViaPointer,
            in_helper: true,
            ..GenCtx::kernel()
        }
    }

    fn checkpoint(&self) -> (usize, usize, usize, usize) {
        (
            self.scalars.len(),
            self.vectors.len(),
            self.structs.len(),
            self.struct_ptrs.len(),
        )
    }

    fn restore(&mut self, cp: (usize, usize, usize, usize)) {
        self.scalars.truncate(cp.0);
        self.vectors.truncate(cp.1);
        self.structs.truncate(cp.2);
        self.struct_ptrs.truncate(cp.3);
    }
}

/// Description of the globals struct, shared between the kernel and helpers.
#[derive(Debug, Clone)]
struct GlobalsInfo {
    id: StructId,
    scalar_fields: Vec<(String, ScalarType)>,
    vector_fields: Vec<(String, ScalarType, VectorWidth)>,
}

/// How the BARRIER-mode shared array is allocated (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SharedArrayKind {
    Local,
    Global,
}

impl Generator {
    /// Creates a generator.
    pub fn new(opts: GeneratorOptions) -> Generator {
        let rng = Rng::seed_from_u64(opts.seed);
        Generator {
            opts,
            rng,
            name_counter: 0,
        }
    }

    /// Generates the program.
    pub fn generate(mut self) -> Program {
        let launch = self.pick_launch();
        let mut program = Program::new(
            KernelDef {
                name: "entry".into(),
                params: Vec::new(),
                body: Block::new(),
            },
            launch,
        );

        let globals = self.make_globals_struct(&mut program);
        let extra_structs = self.make_extra_structs(&mut program);
        self.make_helper_functions(&mut program, &globals, &extra_structs);

        let mode = self.opts.mode;
        let w_linear = launch.group_size();
        let n_linear = launch.total_work_items();
        let num_groups = launch.total_groups();

        // Decide mode-specific plumbing before building the body.
        let shared_kind = if mode.uses_barrier_comm() {
            if self.rng.gen_bool(0.5) {
                Some(SharedArrayKind::Local)
            } else {
                Some(SharedArrayKind::Global)
            }
        } else {
            None
        };
        if mode.uses_barrier_comm() {
            program.permutations = (0..self.opts.permutation_rows)
                .map(|_| {
                    let mut perm: Vec<u32> = (0..w_linear as u32).collect();
                    perm.shuffle(&mut self.rng);
                    perm
                })
                .collect();
        }

        // Kernel parameters and buffers.
        let emi = self.opts.emi.clone();
        let dead_len = emi.as_ref().map(|e| e.dead_len).unwrap_or(0);
        program.dead_len = dead_len;
        let mut params = Program::standard_clsmith_params(dead_len);
        program
            .buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n_linear));
        if dead_len > 0 {
            program.buffers.push(BufferSpec::new(
                "dead",
                ScalarType::Int,
                dead_len,
                BufferInit::Iota,
            ));
        }
        if shared_kind == Some(SharedArrayKind::Global) {
            params.push(Param::new(
                "A_global",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            program.buffers.push(BufferSpec::new(
                "A_global",
                ScalarType::UInt,
                n_linear.max(num_groups * w_linear),
                BufferInit::Fill(1),
            ));
        }
        let section_slots = self.opts.atomic_sections.max(1);
        if mode.uses_atomic_sections() {
            params.push(Param::new(
                "sec_counters",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            params.push(Param::new(
                "sec_specials",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            let len = num_groups * section_slots;
            program.buffers.push(BufferSpec::new(
                "sec_counters",
                ScalarType::UInt,
                len,
                BufferInit::Zero,
            ));
            program.buffers.push(BufferSpec::new(
                "sec_specials",
                ScalarType::UInt,
                len,
                BufferInit::Zero,
            ));
        }
        if mode.uses_atomic_reductions() {
            params.push(Param::new(
                "red",
                Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
            ));
            program.buffers.push(BufferSpec::new(
                "red",
                ScalarType::UInt,
                num_groups,
                BufferInit::Zero,
            ));
        }
        program.kernel.params = params;

        // Build the kernel body.
        let mut ctx = GenCtx::kernel();
        let mut body = Block::new();

        // Globals struct instance.
        body.push(self.globals_decl(&globals));

        // Extra struct locals (and pointers to them).
        for &sid in &extra_structs {
            let (decl, extras) = self.struct_local_decl(&mut ctx, &program, sid);
            body.push(decl);
            for stmt in extras {
                body.push(stmt);
            }
        }

        // A few scalar / vector locals.
        for _ in 0..3 {
            body.push(self.scalar_local_decl(&mut ctx));
        }
        if mode.uses_vectors() {
            for _ in 0..2 {
                body.push(self.vector_local_decl(&mut ctx));
            }
        }

        // BARRIER-mode prelude.
        let shared_lvalue = shared_kind.map(|kind| {
            let (stmts, lvalue) = self.barrier_prelude(kind, w_linear);
            for s in stmts {
                body.push(s);
            }
            lvalue
        });

        // ATOMIC REDUCTION running total.
        if mode.uses_atomic_reductions() {
            body.push(Stmt::decl(
                "total",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::lit(0, ScalarType::UInt)),
            ));
        }

        // The main statement soup: random statements with the communication
        // idioms and EMI blocks interleaved at top level.
        let mut items: Vec<Stmt> = Vec::new();
        for _ in 0..self.opts.block_statements {
            let stmt = self.gen_stmt(&mut ctx, &program, &globals, shared_lvalue.as_ref(), 1);
            items.push(stmt);
        }
        if mode.uses_barrier_comm() {
            let fence = if shared_kind == Some(SharedArrayKind::Local) {
                MemFence::Local
            } else {
                MemFence::Global
            };
            for _ in 0..self.opts.barrier_sync_points {
                let rnd = self.rng.gen_range(0..self.opts.permutation_rows);
                items.push(Stmt::Barrier(fence));
                items.push(Stmt::assign(
                    Expr::var("A_offset"),
                    Expr::index(
                        Expr::index(Expr::var("permutations"), Expr::int(rnd as i64)),
                        Expr::IdQuery(IdKind::LocalLinearId),
                    ),
                ));
            }
        }
        if mode.uses_atomic_sections() {
            for i in 0..self.opts.atomic_sections {
                items.push(self.atomic_section(i, section_slots, w_linear));
            }
        }
        if mode.uses_atomic_reductions() {
            for _ in 0..self.opts.atomic_reductions {
                items.push(self.atomic_reduction(&mut ctx));
            }
        }
        if let Some(emi_opts) = &emi {
            let emi_opts = emi_opts.clone();
            let count = self
                .rng
                .gen_range(emi_opts.min_blocks..=emi_opts.max_blocks);
            for index in 0..count {
                let block = self.gen_emi_block(&mut ctx, &program, &globals, index, &emi_opts);
                items.push(Stmt::Emi(block));
            }
        }
        items.shuffle(&mut self.rng);
        for stmt in items {
            body.push(stmt);
        }

        // Result accumulation.
        body.push(Stmt::decl(
            "result",
            Type::Scalar(ScalarType::ULong),
            Some(Expr::lit(0, ScalarType::ULong)),
        ));
        let mut hash_exprs: Vec<Expr> = Vec::new();
        for (name, _) in &globals.scalar_fields {
            hash_exprs.push(Expr::field(Expr::var("g"), name.clone()));
        }
        for (name, _, _) in &globals.vector_fields {
            hash_exprs.push(Expr::lane(Expr::field(Expr::var("g"), name.clone()), 0));
            hash_exprs.push(Expr::lane(Expr::field(Expr::var("g"), name.clone()), 1));
        }
        for (name, ty) in ctx.scalars.clone() {
            let _ = ty;
            hash_exprs.push(Expr::var(name));
        }
        for (name, _sid) in ctx.structs.clone() {
            // Hash the first scalar field of each struct local.
            let sid = _sid;
            if let Some(field) = program
                .struct_def(sid)
                .fields
                .iter()
                .find(|f| f.ty.is_scalar())
            {
                hash_exprs.push(Expr::field(Expr::var(name), field.name.clone()));
            }
        }
        if let Some(lvalue) = &shared_lvalue {
            hash_exprs.push(lvalue.clone());
        }
        if mode.uses_atomic_reductions() {
            hash_exprs.push(Expr::var("total"));
        }
        for e in hash_exprs {
            body.push(Stmt::assign(
                Expr::var("result"),
                Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::var("result"),
                        Expr::lit(31, ScalarType::ULong),
                    ),
                    Expr::cast(Type::Scalar(ScalarType::ULong), e),
                ),
            ));
        }
        // ATOMIC SECTION epilogue: after a final barrier, the group leader
        // folds the per-group special values into its result (§4.2).
        if mode.uses_atomic_sections() {
            body.push(Stmt::Barrier(MemFence::Global));
            let mut leader_block = Block::new();
            for slot in 0..section_slots {
                leader_block.push(Stmt::assign(
                    Expr::var("result"),
                    Expr::binary(
                        BinOp::Add,
                        Expr::var("result"),
                        Expr::cast(
                            Type::Scalar(ScalarType::ULong),
                            Expr::index(
                                Expr::var("sec_specials"),
                                self.group_slot_index(slot, section_slots),
                            ),
                        ),
                    ),
                ));
            }
            body.push(Stmt::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::IdQuery(IdKind::LocalLinearId),
                    Expr::lit(0, ScalarType::UInt),
                ),
                leader_block,
            ));
        }
        body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
            Expr::var("result"),
        ));

        program.kernel.body = body;
        program
    }

    // ----- naming -------------------------------------------------------

    fn fresh(&mut self, prefix: &str) -> String {
        self.name_counter += 1;
        format!("{prefix}_{}", self.name_counter)
    }

    // ----- launch geometry ----------------------------------------------

    fn pick_launch(&mut self) -> LaunchConfig {
        let total = self
            .rng
            .gen_range(self.opts.min_threads..self.opts.max_threads);
        // Split `total` into three dimensions by picking random divisors.
        let nx = *divisors(total).choose(&mut self.rng).unwrap_or(&total);
        let rest = total / nx;
        let ny = *divisors(rest).choose(&mut self.rng).unwrap_or(&rest);
        let nz = rest / ny;
        let global = [nx, ny, nz];
        // Pick a work-group size dividing each dimension with product <= max.
        let mut local = [1usize; 3];
        let mut budget = self.opts.max_group_size;
        for d in 0..3 {
            let candidates: Vec<usize> = divisors(global[d])
                .into_iter()
                .filter(|w| *w <= budget)
                .collect();
            local[d] = *candidates.choose(&mut self.rng).unwrap_or(&1);
            budget /= local[d].max(1);
        }
        LaunchConfig::new(global, local).unwrap_or(LaunchConfig {
            global,
            local: [1, 1, 1],
        })
    }

    // ----- struct construction ------------------------------------------

    fn make_globals_struct(&mut self, program: &mut Program) -> GlobalsInfo {
        let mut fields = Vec::new();
        let mut scalar_fields = Vec::new();
        let mut vector_fields = Vec::new();
        for i in 0..self.opts.global_fields {
            if self.opts.mode.uses_vectors() && self.rng.gen_bool(0.3) {
                let elem = self.pick_scalar_type();
                let width = *[VectorWidth::W2, VectorWidth::W4, VectorWidth::W8]
                    .choose(&mut self.rng)
                    .unwrap();
                let name = format!("gv{i}");
                fields.push(Field::new(name.clone(), Type::Vector(elem, width)));
                vector_fields.push((name, elem, width));
            } else {
                let ty = self.pick_scalar_type();
                let name = format!("gf{i}");
                fields.push(Field::new(name.clone(), Type::Scalar(ty)));
                scalar_fields.push((name, ty));
            }
        }
        let id = program.add_struct(StructDef::new("Globals", fields));
        GlobalsInfo {
            id,
            scalar_fields,
            vector_fields,
        }
    }

    fn make_extra_structs(&mut self, program: &mut Program) -> Vec<StructId> {
        let mut ids = Vec::new();
        for i in 0..self.opts.extra_structs {
            let mut fields = Vec::new();
            let field_count = self.rng.gen_range(2..=4);
            for j in 0..field_count {
                // Bias the first two fields towards the char-then-wider
                // layout that trips the AMD struct bug (Figure 1(a)).
                let ty = if j == 0 && self.rng.gen_bool(0.4) {
                    ScalarType::Char
                } else if j == 1 && self.rng.gen_bool(0.4) {
                    *[ScalarType::Short, ScalarType::Int, ScalarType::Long]
                        .choose(&mut self.rng)
                        .unwrap()
                } else {
                    self.pick_scalar_type()
                };
                let volatile = self.rng.gen_bool(0.1);
                let field_ty = if self.opts.mode.uses_vectors() && self.rng.gen_bool(0.15) {
                    Type::Vector(self.pick_scalar_type(), VectorWidth::W2)
                } else {
                    Type::Scalar(ty)
                };
                let field = if volatile {
                    Field::volatile(format!("m{j}"), field_ty)
                } else {
                    Field::new(format!("m{j}"), field_ty)
                };
                fields.push(field);
            }
            let is_union = self.rng.gen_bool(0.25);
            let name = format!("S{i}");
            let def = if is_union {
                StructDef::union(name, fields)
            } else {
                StructDef::new(name, fields)
            };
            ids.push(program.add_struct(def));
        }
        ids
    }

    // ----- helper functions -----------------------------------------------

    fn make_helper_functions(
        &mut self,
        program: &mut Program,
        globals: &GlobalsInfo,
        _extra: &[StructId],
    ) {
        for i in 0..self.opts.helper_functions {
            let mut ctx = GenCtx::helper();
            let ret_ty = self.pick_scalar_type();
            let param_ty = self.pick_scalar_type();
            ctx.scalars.push(("p0".into(), param_ty));
            let mut body = Block::new();
            // A couple of locals.
            for _ in 0..2 {
                body.push(self.scalar_local_decl(&mut ctx));
            }
            let stmt_count = self.rng.gen_range(2..=self.opts.block_statements.max(3));
            for _ in 0..stmt_count {
                let stmt = self.gen_stmt(&mut ctx, program, globals, None, 1);
                body.push(stmt);
            }
            body.push(Stmt::Return(Some(
                self.gen_scalar_expr(&mut ctx, globals, 0),
            )));
            let forward_declared = self.rng.gen_bool(0.3);
            program.functions.push(FunctionDef {
                name: format!("func_{i}"),
                ret: Some(Type::Scalar(ret_ty)),
                params: vec![
                    Param::new(
                        "gp",
                        Type::Struct(globals.id).pointer_to(AddressSpace::Private),
                    ),
                    Param::new("p0", Type::Scalar(param_ty)),
                ],
                body,
                forward_declared,
                noinline: false,
            });
        }
    }

    // ----- declarations ----------------------------------------------------

    fn globals_decl(&mut self, globals: &GlobalsInfo) -> Stmt {
        let mut items = Vec::new();
        for (_, ty) in &globals.scalar_fields {
            items.push(Initializer::Expr(self.literal(*ty)));
        }
        for (_, elem, width) in &globals.vector_fields {
            let parts = (0..width.lanes()).map(|_| self.literal(*elem)).collect();
            items.push(Initializer::Expr(Expr::VectorLit {
                elem: *elem,
                width: *width,
                parts,
            }));
        }
        // Field order in the struct definition is scalars interleaved with
        // vectors exactly as constructed in `make_globals_struct`; rebuild
        // the initialiser in declaration order instead.
        let mut ordered = Vec::new();
        let mut si = 0usize;
        let mut vi = 0usize;
        for i in 0..self.opts.global_fields {
            let scalar_name = format!("gf{i}");
            if globals.scalar_fields.iter().any(|(n, _)| *n == scalar_name) {
                ordered.push(items[si].clone());
                si += 1;
            } else {
                ordered.push(items[globals.scalar_fields.len() + vi].clone());
                vi += 1;
            }
        }
        Stmt::decl_init_list("g", Type::Struct(globals.id), Initializer::List(ordered))
    }

    fn scalar_local_decl(&mut self, ctx: &mut GenCtx) -> Stmt {
        let ty = self.pick_scalar_type();
        let name = self.fresh("l");
        ctx.scalars.push((name.clone(), ty));
        Stmt::decl(name, Type::Scalar(ty), Some(self.literal(ty)))
    }

    fn vector_local_decl(&mut self, ctx: &mut GenCtx) -> Stmt {
        let elem = self.pick_scalar_type();
        let width = *[
            VectorWidth::W2,
            VectorWidth::W4,
            VectorWidth::W8,
            VectorWidth::W16,
        ]
        .choose(&mut self.rng)
        .unwrap();
        let name = self.fresh("v");
        ctx.vectors.push((name.clone(), elem, width));
        let parts = (0..width.lanes()).map(|_| self.literal(elem)).collect();
        Stmt::decl(
            name,
            Type::Vector(elem, width),
            Some(Expr::VectorLit { elem, width, parts }),
        )
    }

    fn struct_local_decl(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        sid: StructId,
    ) -> (Stmt, Vec<Stmt>) {
        let def = program.struct_def(sid).clone();
        let name = self.fresh("s");
        ctx.structs.push((name.clone(), sid));
        let init_fields: Vec<Initializer> = if def.is_union {
            vec![self.field_initializer(&def.fields[0])]
        } else {
            def.fields
                .iter()
                .map(|f| self.field_initializer(f))
                .collect()
        };
        let decl = Stmt::decl_init_list(
            name.clone(),
            Type::Struct(sid),
            Initializer::List(init_fields),
        );
        let mut extras = Vec::new();
        // Sometimes add a pointer alias, exercising `->` accesses.
        if self.rng.gen_bool(0.6) {
            let pname = self.fresh("p");
            ctx.struct_ptrs.push((pname.clone(), sid));
            extras.push(Stmt::decl(
                pname,
                Type::Struct(sid).pointer_to(AddressSpace::Private),
                Some(Expr::addr_of(Expr::var(name.clone()))),
            ));
        }
        // Sometimes declare a sibling of the same type and copy it over,
        // exercising whole-struct assignment (cf. Figures 1(b) and 1(f)).
        if self.rng.gen_bool(0.4) {
            let sibling = self.fresh("t");
            let init_fields: Vec<Initializer> = if def.is_union {
                vec![self.field_initializer(&def.fields[0])]
            } else {
                def.fields
                    .iter()
                    .map(|f| self.field_initializer(f))
                    .collect()
            };
            ctx.structs.push((sibling.clone(), sid));
            extras.push(Stmt::decl_init_list(
                sibling.clone(),
                Type::Struct(sid),
                Initializer::List(init_fields),
            ));
            extras.push(Stmt::assign(Expr::var(name), Expr::var(sibling)));
        }
        (decl, extras)
    }

    fn field_initializer(&mut self, field: &Field) -> Initializer {
        match &field.ty {
            Type::Scalar(s) => Initializer::Expr(self.literal(*s)),
            Type::Vector(e, w) => {
                let parts = (0..w.lanes()).map(|_| self.literal(*e)).collect();
                Initializer::Expr(Expr::VectorLit {
                    elem: *e,
                    width: *w,
                    parts,
                })
            }
            Type::Array(elem, len) => {
                let inner = Field::new("elem", (**elem).clone());
                Initializer::List((0..*len).map(|_| self.field_initializer(&inner)).collect())
            }
            Type::Struct(_) => Initializer::List(vec![Initializer::Expr(Expr::int(0))]),
            Type::Pointer(..) => Initializer::Expr(Expr::int(0)),
        }
    }

    // ----- communication idioms (§4.2) ------------------------------------

    fn barrier_prelude(&mut self, kind: SharedArrayKind, w_linear: usize) -> (Vec<Stmt>, Expr) {
        let rnd = self.rng.gen_range(0..self.opts.permutation_rows);
        let offset_init = Expr::index(
            Expr::index(Expr::var("permutations"), Expr::int(rnd as i64)),
            Expr::IdQuery(IdKind::LocalLinearId),
        );
        match kind {
            SharedArrayKind::Local => {
                let stmts = vec![
                    Stmt::Decl {
                        name: "A".into(),
                        ty: Type::Scalar(ScalarType::UInt).array_of(w_linear),
                        space: AddressSpace::Local,
                        volatile: false,
                        init: None,
                        init_list: None,
                    },
                    Stmt::assign(
                        Expr::index(Expr::var("A"), Expr::IdQuery(IdKind::LocalLinearId)),
                        Expr::lit(1, ScalarType::UInt),
                    ),
                    Stmt::Barrier(MemFence::Local),
                    Stmt::decl(
                        "A_offset",
                        Type::Scalar(ScalarType::UInt),
                        Some(offset_init),
                    ),
                ];
                (stmts, Expr::index(Expr::var("A"), Expr::var("A_offset")))
            }
            SharedArrayKind::Global => {
                let base = Expr::binary(
                    BinOp::Mul,
                    Expr::IdQuery(IdKind::GroupLinearId),
                    Expr::lit(w_linear as i128, ScalarType::UInt),
                );
                let stmts = vec![Stmt::decl(
                    "A_offset",
                    Type::Scalar(ScalarType::UInt),
                    Some(offset_init),
                )];
                (
                    stmts,
                    Expr::index(
                        Expr::var("A_global"),
                        Expr::binary(BinOp::Add, base, Expr::var("A_offset")),
                    ),
                )
            }
        }
    }

    fn group_slot_index(&mut self, slot: usize, section_slots: usize) -> Expr {
        Expr::binary(
            BinOp::Add,
            Expr::binary(
                BinOp::Mul,
                Expr::IdQuery(IdKind::GroupLinearId),
                Expr::lit(section_slots as i128, ScalarType::UInt),
            ),
            Expr::lit(slot as i128, ScalarType::UInt),
        )
    }

    fn atomic_section(&mut self, index: usize, section_slots: usize, w_linear: usize) -> Stmt {
        // Each section owns its (counter, special value) pair; see the note
        // at the top of this file.
        let slot = index % section_slots;
        let counter = Expr::addr_of(Expr::index(
            Expr::var("sec_counters"),
            self.group_slot_index(slot, section_slots),
        ));
        let special = Expr::addr_of(Expr::index(
            Expr::var("sec_specials"),
            self.group_slot_index(slot, section_slots),
        ));
        // Which arrival rank enters the section.
        let rnd = self.rng.gen_range(0..w_linear.max(1)) as i128;
        // The section body: declarations and assignments touching only data
        // declared inside the section, then a hash folded into the special
        // value (§4.2 ATOMIC SECTION mode).
        let mut inner = Block::new();
        let mut inner_vars: Vec<(String, ScalarType)> = Vec::new();
        let count = self.rng.gen_range(2..=4);
        for _ in 0..count {
            let ty = self.pick_scalar_type();
            let name = self.fresh(&format!("as{index}"));
            inner.push(Stmt::decl(
                name.clone(),
                Type::Scalar(ty),
                Some(self.literal(ty)),
            ));
            inner_vars.push((name, ty));
        }
        for _ in 0..count {
            let (target, _) = inner_vars[self.rng.gen_range(0..inner_vars.len())].clone();
            let expr = self.inner_only_expr(&inner_vars, 2);
            inner.push(Stmt::assign(Expr::var(target), expr));
        }
        let mut hash = Expr::lit(0, ScalarType::UInt);
        for (name, _) in &inner_vars {
            hash = Expr::binary(
                BinOp::Add,
                Expr::binary(BinOp::Mul, hash, Expr::lit(31, ScalarType::UInt)),
                Expr::cast(Type::Scalar(ScalarType::UInt), Expr::var(name.clone())),
            );
        }
        inner.push(Stmt::expr(Expr::builtin(
            Builtin::AtomicAdd,
            vec![special, hash],
        )));
        Stmt::if_then(
            Expr::binary(
                BinOp::Eq,
                Expr::builtin(Builtin::AtomicInc, vec![counter]),
                Expr::lit(rnd, ScalarType::UInt),
            ),
            inner,
        )
    }

    /// Expression over literals and the given variables only (used inside
    /// atomic sections to keep their hash thread-independent).
    fn inner_only_expr(&mut self, vars: &[(String, ScalarType)], depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.4) {
            return if !vars.is_empty() && self.rng.gen_bool(0.5) {
                let (name, _) = vars[self.rng.gen_range(0..vars.len())].clone();
                Expr::var(name)
            } else {
                let ty = self.pick_scalar_type();
                self.literal(ty)
            };
        }
        let lhs = self.inner_only_expr(vars, depth - 1);
        let rhs = self.inner_only_expr(vars, depth - 1);
        self.combine_scalars(lhs, rhs)
    }

    fn atomic_reduction(&mut self, _ctx: &mut GenCtx) -> Stmt {
        let op = *[
            Builtin::AtomicAdd,
            Builtin::AtomicMin,
            Builtin::AtomicMax,
            Builtin::AtomicOr,
            Builtin::AtomicAnd,
            Builtin::AtomicXor,
        ]
        .choose(&mut self.rng)
        .unwrap();
        let target = Expr::addr_of(Expr::index(
            Expr::var("red"),
            Expr::IdQuery(IdKind::GroupLinearId),
        ));
        let contribution = self.literal(ScalarType::UInt);
        Stmt::Block(Block::of(vec![
            Stmt::expr(Expr::builtin(op, vec![target, contribution])),
            Stmt::Barrier(MemFence::Global),
            Stmt::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::IdQuery(IdKind::LocalLinearId),
                    Expr::lit(0, ScalarType::UInt),
                ),
                Block::of(vec![Stmt::expr(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var("total"),
                    Expr::index(Expr::var("red"), Expr::IdQuery(IdKind::GroupLinearId)),
                ))]),
            ),
            Stmt::Barrier(MemFence::Global),
        ]))
    }

    // ----- EMI blocks (§5) -------------------------------------------------

    fn gen_emi_block(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        globals: &GlobalsInfo,
        index: usize,
        emi: &EmiOptions,
    ) -> EmiBlock {
        // Guard dead[a] < dead[b] with b < a so the block is dead under the
        // host's dead[j] = j initialisation.
        let a = self.rng.gen_range(1..emi.dead_len);
        let b = self.rng.gen_range(0..a);
        let cp = ctx.checkpoint();
        let was_in_emi = ctx.in_emi;
        ctx.in_emi = true;
        let mut body = Block::new();
        let count = self.rng.gen_range(2..=5);
        for _ in 0..count {
            body.push(self.gen_stmt(ctx, program, globals, None, 1));
        }
        if emi.allow_infinite_loops && self.rng.gen_bool(0.3) {
            body.push(Stmt::While {
                cond: Expr::int(1),
                body: Block::new(),
            });
        }
        ctx.in_emi = was_in_emi;
        ctx.restore(cp);
        EmiBlock {
            index,
            guard: (a, b),
            body,
        }
    }

    // ----- statements ------------------------------------------------------

    fn gen_stmt(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        globals: &GlobalsInfo,
        shared_lvalue: Option<&Expr>,
        depth: usize,
    ) -> Stmt {
        let max_depth = self.opts.max_block_depth;
        let roll = self.rng.gen_range(0..100);
        if depth < max_depth && roll < 18 {
            // if statement
            let cond = self.gen_scalar_expr(ctx, globals, 1);
            let cp = ctx.checkpoint();
            let then_block = self.gen_block(ctx, program, globals, shared_lvalue, depth + 1);
            ctx.restore(cp);
            if self.rng.gen_bool(0.4) {
                let cp = ctx.checkpoint();
                let else_block = self.gen_block(ctx, program, globals, shared_lvalue, depth + 1);
                ctx.restore(cp);
                Stmt::if_else(cond, then_block, else_block)
            } else {
                Stmt::if_then(cond, then_block)
            }
        } else if depth < max_depth && roll < 32 {
            // bounded for loop
            let loop_var = self.fresh("i");
            let bound = self.rng.gen_range(1i64..=10);
            let cp = ctx.checkpoint();
            let was_in_loop = ctx.in_loop;
            ctx.in_loop = true;
            let mut body = self.gen_block(ctx, program, globals, shared_lvalue, depth + 1);
            // Occasionally add an early exit guarded by a generated condition.
            if self.rng.gen_bool(0.25) {
                let cond = self.gen_scalar_expr(ctx, globals, 1);
                body.push(Stmt::if_then(cond, Block::of(vec![Stmt::Break])));
            }
            ctx.in_loop = was_in_loop;
            ctx.restore(cp);
            Stmt::For {
                init: Some(Box::new(Stmt::decl(
                    loop_var.clone(),
                    Type::Scalar(ScalarType::Int),
                    Some(Expr::int(0)),
                ))),
                cond: Some(Expr::binary(
                    BinOp::Lt,
                    Expr::var(loop_var.clone()),
                    Expr::int(bound),
                )),
                update: Some(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var(loop_var),
                    Expr::int(1),
                )),
                body,
            }
        } else if roll < 40 && !ctx.in_helper && !program.functions.is_empty() && !ctx.in_emi {
            // call a helper function and store its result
            let idx = self.rng.gen_range(0..program.functions.len());
            let func = &program.functions[idx];
            let arg = self.gen_scalar_expr(ctx, globals, 1);
            let call = Expr::call(func.name.clone(), vec![Expr::addr_of(Expr::var("g")), arg]);
            match self.pick_scalar_lvalue(ctx, globals, shared_lvalue) {
                Some(lvalue) => Stmt::assign(lvalue, call),
                None => Stmt::expr(call),
            }
        } else if roll < 45 && depth < max_depth {
            // nested block with fresh locals
            let cp = ctx.checkpoint();
            let mut block = Block::new();
            block.push(self.scalar_local_decl(ctx));
            let inner = self.gen_stmt(ctx, program, globals, shared_lvalue, depth + 1);
            block.push(inner);
            ctx.restore(cp);
            Stmt::Block(block)
        } else if roll < 50 && ctx.in_loop && ctx.in_emi {
            // jumps are only generated inside (dead) EMI code
            if self.rng.gen_bool(0.5) {
                Stmt::Break
            } else {
                Stmt::Continue
            }
        } else {
            // assignment
            self.gen_assignment(ctx, globals, program, shared_lvalue)
        }
    }

    fn gen_block(
        &mut self,
        ctx: &mut GenCtx,
        program: &Program,
        globals: &GlobalsInfo,
        shared_lvalue: Option<&Expr>,
        depth: usize,
    ) -> Block {
        let count = self.rng.gen_range(1..=3);
        let mut block = Block::new();
        for _ in 0..count {
            block.push(self.gen_stmt(ctx, program, globals, shared_lvalue, depth));
        }
        block
    }

    fn gen_assignment(
        &mut self,
        ctx: &mut GenCtx,
        globals: &GlobalsInfo,
        program: &Program,
        shared_lvalue: Option<&Expr>,
    ) -> Stmt {
        // Vector assignment?
        if !ctx.vectors.is_empty() && self.rng.gen_bool(0.25) {
            let (name, elem, width) = ctx.vectors[self.rng.gen_range(0..ctx.vectors.len())].clone();
            let rhs = self.gen_vector_expr(ctx, elem, width, self.opts.max_expr_depth);
            return Stmt::assign(Expr::var(name), rhs);
        }
        // Whole-struct copy?
        if ctx.structs.len() >= 2 && self.rng.gen_bool(0.15) {
            let mut candidates: Vec<(String, StructId)> = ctx.structs.clone();
            candidates.shuffle(&mut self.rng);
            for i in 0..candidates.len() {
                for j in (i + 1)..candidates.len() {
                    if candidates[i].1 == candidates[j].1 {
                        return Stmt::assign(
                            Expr::var(candidates[i].0.clone()),
                            Expr::var(candidates[j].0.clone()),
                        );
                    }
                }
            }
        }
        let rhs = self.gen_scalar_expr(ctx, globals, self.opts.max_expr_depth);
        match self.pick_scalar_lvalue_with_structs(ctx, globals, program, shared_lvalue) {
            Some(lvalue) => {
                if self.rng.gen_bool(0.25) {
                    let op = *[
                        AssignOp::AddAssign,
                        AssignOp::SubAssign,
                        AssignOp::XorAssign,
                        AssignOp::OrAssign,
                        AssignOp::AndAssign,
                    ]
                    .choose(&mut self.rng)
                    .unwrap();
                    Stmt::expr(Expr::assign_op(op, lvalue, rhs))
                } else {
                    Stmt::assign(lvalue, rhs)
                }
            }
            None => Stmt::expr(rhs),
        }
    }

    fn pick_scalar_lvalue(
        &mut self,
        ctx: &GenCtx,
        globals: &GlobalsInfo,
        shared_lvalue: Option<&Expr>,
    ) -> Option<Expr> {
        let mut options: Vec<Expr> = Vec::new();
        for (name, _) in &ctx.scalars {
            options.push(Expr::var(name.clone()));
        }
        for (name, _) in &globals.scalar_fields {
            options.push(self.globals_field(ctx, name));
        }
        if let Some(shared) = shared_lvalue {
            options.push(shared.clone());
        }
        if options.is_empty() {
            None
        } else {
            let idx = self.rng.gen_range(0..options.len());
            Some(options.swap_remove(idx))
        }
    }

    fn pick_scalar_lvalue_with_structs(
        &mut self,
        ctx: &GenCtx,
        globals: &GlobalsInfo,
        program: &Program,
        shared_lvalue: Option<&Expr>,
    ) -> Option<Expr> {
        let mut options: Vec<Expr> = Vec::new();
        if let Some(base) = self.pick_scalar_lvalue(ctx, globals, shared_lvalue) {
            options.push(base);
        }
        for (name, sid) in &ctx.structs {
            if let Some(field) = program
                .struct_def(*sid)
                .fields
                .iter()
                .find(|f| f.ty.is_scalar())
            {
                options.push(Expr::field(Expr::var(name.clone()), field.name.clone()));
            }
        }
        for (name, sid) in &ctx.struct_ptrs {
            if let Some(field) = program
                .struct_def(*sid)
                .fields
                .iter()
                .find(|f| f.ty.is_scalar())
            {
                options.push(Expr::arrow(Expr::var(name.clone()), field.name.clone()));
            }
        }
        if options.is_empty() {
            None
        } else {
            let idx = self.rng.gen_range(0..options.len());
            Some(options.swap_remove(idx))
        }
    }

    fn globals_field(&self, ctx: &GenCtx, field: &str) -> Expr {
        match ctx.globals {
            GlobalsAccess::Direct => Expr::field(Expr::var("g"), field),
            GlobalsAccess::ViaPointer => Expr::arrow(Expr::var("gp"), field),
        }
    }

    // ----- expressions -----------------------------------------------------

    fn gen_scalar_expr(&mut self, ctx: &mut GenCtx, globals: &GlobalsInfo, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return self.scalar_leaf(ctx, globals);
        }
        match self.rng.gen_range(0..100) {
            0..=44 => {
                let lhs = self.gen_scalar_expr(ctx, globals, depth - 1);
                let rhs = self.gen_scalar_expr(ctx, globals, depth - 1);
                self.combine_scalars(lhs, rhs)
            }
            45..=59 => {
                let cond = self.gen_scalar_expr(ctx, globals, depth - 1);
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                Expr::cond(cond, a, b)
            }
            60..=72 => {
                let x = self.gen_scalar_expr(ctx, globals, depth - 1);
                let lo = self.literal(ScalarType::Int);
                let hi = self.literal(ScalarType::Int);
                Expr::builtin(Builtin::SafeClamp, vec![x, lo, hi])
            }
            73..=82 => {
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                let f = if self.rng.gen_bool(0.5) {
                    Builtin::Min
                } else {
                    Builtin::Max
                };
                Expr::builtin(f, vec![a, b])
            }
            83..=90 => {
                let ty = self.pick_scalar_type();
                Expr::cast(
                    Type::Scalar(ty),
                    self.gen_scalar_expr(ctx, globals, depth - 1),
                )
            }
            91..=95 => {
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                Expr::builtin(
                    Builtin::Rotate,
                    vec![
                        Expr::cast(Type::Scalar(ScalarType::UInt), a),
                        Expr::cast(Type::Scalar(ScalarType::UInt), b),
                    ],
                )
            }
            _ => {
                // comma expression (no side effects on the discarded side)
                let a = self.gen_scalar_expr(ctx, globals, depth - 1);
                let b = self.gen_scalar_expr(ctx, globals, depth - 1);
                Expr::comma(a, b)
            }
        }
    }

    fn combine_scalars(&mut self, lhs: Expr, rhs: Expr) -> Expr {
        match self.rng.gen_range(0..100) {
            0..=17 => Expr::builtin(Builtin::SafeAdd, vec![lhs, rhs]),
            18..=33 => Expr::builtin(Builtin::SafeSub, vec![lhs, rhs]),
            34..=47 => Expr::builtin(Builtin::SafeMul, vec![lhs, rhs]),
            48..=55 => Expr::builtin(Builtin::SafeDiv, vec![lhs, rhs]),
            56..=61 => Expr::builtin(Builtin::SafeMod, vec![lhs, rhs]),
            62..=67 => Expr::builtin(
                if self.rng.gen_bool(0.5) {
                    Builtin::SafeLshift
                } else {
                    Builtin::SafeRshift
                },
                vec![lhs, rhs],
            ),
            68..=79 => {
                let op = *[BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor]
                    .choose(&mut self.rng)
                    .unwrap();
                Expr::binary(op, lhs, rhs)
            }
            80..=91 => {
                let op = *[
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::Le,
                    BinOp::Ge,
                ]
                .choose(&mut self.rng)
                .unwrap();
                Expr::binary(op, lhs, rhs)
            }
            _ => {
                let op = *[BinOp::LAnd, BinOp::LOr].choose(&mut self.rng).unwrap();
                Expr::binary(op, lhs, rhs)
            }
        }
    }

    fn scalar_leaf(&mut self, ctx: &mut GenCtx, globals: &GlobalsInfo) -> Expr {
        let leaf_ty = self.pick_scalar_type();
        let mut options: Vec<Expr> = vec![self.literal(leaf_ty)];
        for (name, _) in &ctx.scalars {
            options.push(Expr::var(name.clone()));
        }
        for (name, _) in &globals.scalar_fields {
            options.push(self.globals_field(ctx, name));
        }
        for (name, _, width) in &ctx.vectors {
            let lane = self.rng.gen_range(0..width.lanes()) as u8;
            options.push(Expr::lane(Expr::var(name.clone()), lane));
        }
        for (name, _, width) in &globals.vector_fields {
            if ctx.globals == GlobalsAccess::Direct || self.rng.gen_bool(0.5) {
                let lane = self.rng.gen_range(0..width.lanes()) as u8;
                options.push(Expr::lane(self.globals_field(ctx, name), lane));
            }
        }
        let idx = self.rng.gen_range(0..options.len());
        options.swap_remove(idx)
    }

    fn gen_vector_expr(
        &mut self,
        ctx: &mut GenCtx,
        elem: ScalarType,
        width: VectorWidth,
        depth: usize,
    ) -> Expr {
        let leaf = |gen: &mut Generator, ctx: &GenCtx| -> Expr {
            let mut options: Vec<Expr> = Vec::new();
            for (name, e, w) in &ctx.vectors {
                if *e == elem && *w == width {
                    options.push(Expr::var(name.clone()));
                }
            }
            if options.is_empty() || gen.rng.gen_bool(0.5) {
                let parts = (0..width.lanes()).map(|_| gen.literal(elem)).collect();
                return Expr::VectorLit { elem, width, parts };
            }
            let idx = gen.rng.gen_range(0..options.len());
            options.swap_remove(idx)
        };
        if depth == 0 || self.rng.gen_bool(0.4) {
            return leaf(self, ctx);
        }
        let lhs = self.gen_vector_expr(ctx, elem, width, depth - 1);
        let rhs = self.gen_vector_expr(ctx, elem, width, depth - 1);
        match self.rng.gen_range(0..100) {
            0..=24 => Expr::builtin(Builtin::SafeAdd, vec![lhs, rhs]),
            25..=44 => Expr::builtin(Builtin::SafeMul, vec![lhs, rhs]),
            45..=59 => {
                let op = *[BinOp::BitAnd, BinOp::BitOr, BinOp::BitXor]
                    .choose(&mut self.rng)
                    .unwrap();
                Expr::binary(op, lhs, rhs)
            }
            60..=74 => Expr::builtin(Builtin::Rotate, vec![lhs, rhs]),
            75..=87 => {
                let f = if self.rng.gen_bool(0.5) {
                    Builtin::Min
                } else {
                    Builtin::Max
                };
                Expr::builtin(f, vec![lhs, rhs])
            }
            _ => {
                let lo = leaf(self, ctx);
                Expr::builtin(Builtin::SafeClamp, vec![lhs, lo, rhs])
            }
        }
    }

    fn literal(&mut self, ty: ScalarType) -> Expr {
        let interesting: [i128; 8] = [0, 1, 2, 7, 31, 255, -1, 65535];
        let value = if self.rng.gen_bool(0.5) {
            *interesting.choose(&mut self.rng).unwrap()
        } else {
            self.rng.gen_range(-128i128..=1024)
        };
        let clamped = value.clamp(ty.min_value(), ty.max_value());
        Expr::lit(clamped, ty)
    }

    fn pick_scalar_type(&mut self) -> ScalarType {
        *ScalarType::ALL.choose(&mut self.rng).unwrap()
    }
}

/// All divisors of `n` (n >= 1), unordered.
fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            if d != n / d {
                out.push(n / d);
            }
        }
        d += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{GenMode, GeneratorOptions};

    #[test]
    fn divisors_are_correct() {
        let mut d = divisors(12);
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        let mut p = divisors(97);
        p.sort_unstable();
        assert_eq!(p, vec![1, 97]);
    }

    #[test]
    fn generation_is_deterministic() {
        let opts = GeneratorOptions::new(GenMode::All, 1234).with_emi();
        let a = generate(&opts);
        let b = generate(&opts);
        assert_eq!(a, b);
        let c = generate(&GeneratorOptions::new(GenMode::All, 1235).with_emi());
        assert_ne!(a, c);
    }

    #[test]
    fn launch_configs_respect_constraints() {
        for seed in 0..30 {
            let opts = GeneratorOptions::new(GenMode::Basic, seed);
            let p = generate(&opts);
            assert!(p.launch.validate().is_ok(), "seed {seed}: {:?}", p.launch);
            let total = p.launch.total_work_items();
            assert!(total >= opts.min_threads && total < opts.max_threads);
            assert!(p.launch.group_size() <= 256);
        }
    }

    #[test]
    fn generated_programs_typecheck() {
        for seed in 0..20 {
            for mode in GenMode::ALL {
                let opts = GeneratorOptions::new(mode, seed);
                let p = generate(&opts);
                if let Err(e) = clc::check_program(&p) {
                    panic!("seed {seed} mode {mode}: {e}\n{}", clc::print_program(&p));
                }
            }
        }
    }

    #[test]
    fn barrier_modes_emit_barriers_and_basic_does_not() {
        let barrier = generate(&GeneratorOptions::new(GenMode::Barrier, 7));
        assert!(barrier.kernel.body.contains_barrier());
        assert!(!barrier.permutations.is_empty());
        let basic = generate(&GeneratorOptions::new(GenMode::Basic, 7));
        assert!(!basic.kernel.body.contains_barrier());
        assert!(basic.permutations.is_empty());
    }

    #[test]
    fn atomic_modes_declare_their_buffers() {
        let section = generate(&GeneratorOptions::new(GenMode::AtomicSection, 9));
        assert!(section.buffer_for("sec_counters").is_some());
        assert!(section.buffer_for("sec_specials").is_some());
        let reduction = generate(&GeneratorOptions::new(GenMode::AtomicReduction, 9));
        assert!(reduction.buffer_for("red").is_some());
        let features = clc::Features::detect(&reduction);
        assert!(features.atomic_count > 0);
    }

    #[test]
    fn emi_blocks_are_dead_by_construction() {
        for seed in 0..10 {
            let opts = GeneratorOptions::new(GenMode::All, seed).with_emi();
            let p = generate(&opts);
            let blocks = p.emi_blocks();
            assert!(!blocks.is_empty(), "seed {seed} generated no EMI blocks");
            assert!(blocks.iter().all(|b| b.is_dead_by_construction()));
            assert!(p.has_dead_array());
            assert!(p.buffer_for("dead").is_some());
        }
    }

    #[test]
    fn generated_ids_only_in_controlled_idioms() {
        // The generator must not emit thread ids in arbitrary expressions:
        // every id use must be part of a fixed idiom (out index, permutation
        // lookup, group-slot indexing, leader checks).  We check a weaker
        // but still useful invariant: no id query appears as an operand of a
        // generated comparison other than equality-with-zero leader checks.
        let p = generate(&GeneratorOptions::new(GenMode::All, 21));
        let features = clc::Features::detect(&p);
        assert!(!features.group_id_in_comparison);
    }

    #[test]
    fn printed_programs_contain_expected_structure() {
        let p = generate(&GeneratorOptions::new(GenMode::All, 3).with_emi());
        let src = clc::print_program(&p);
        assert!(src.contains("struct Globals"));
        assert!(src.contains("kernel void entry"));
        assert!(src.contains("out["));
        assert!(src.contains("dead["));
        assert!(src.contains("safe_"));
    }
}
