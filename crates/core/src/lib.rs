//! # clsmith — random differential and EMI testing for OpenCL compilers
//!
//! This crate is the Rust reproduction of the primary contribution of
//! *Many-Core Compiler Fuzzing* (PLDI 2015): **CLsmith**, a generator of
//! random, deterministic, communicating OpenCL kernels, together with the
//! paper's EMI (equivalence-modulo-inputs) testing machinery based on
//! injection of dead-by-construction code.
//!
//! * [`generate`] produces a random [`clc::Program`] from
//!   [`GeneratorOptions`]; the six [`GenMode`]s correspond to the paper's
//!   BASIC / VECTOR / BARRIER / ATOMIC SECTION / ATOMIC REDUCTION / ALL modes
//!   (§4).
//! * [`emi::prune_variant`] derives EMI variants with the *leaf*, *compound*
//!   and *lift* pruning strategies (§5); [`emi::inject_emi_blocks`] retrofits
//!   EMI blocks onto existing kernels such as the Parboil/Rodinia miniatures
//!   in the `parboil-rodinia` crate.
//!
//! Generated programs are deterministic and free of undefined behaviour by
//! construction, which is what makes majority voting (differential testing)
//! and variant agreement (EMI testing) sound oracles.
//!
//! ```
//! use clsmith::{generate, GenMode, GeneratorOptions};
//!
//! let program = generate(&GeneratorOptions::new(GenMode::Barrier, 42));
//! let source = clc::print_program(&program);
//! assert!(source.contains("barrier("));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod emi;
pub mod feedback;
pub mod generator;
pub mod mutator;
pub mod options;
pub mod rng;

pub use emi::{all_emi_blocks_dead, inject_emi_blocks, prune_variant, InjectionOptions};
pub use feedback::{coverage_hash, CoverageClass, CoverageMap};
pub use generator::{generate, Generator, KernelSource};
pub use mutator::{mutate, Mutation, MutationChain, MutationKind};
pub use options::{EmiOptions, GenMode, GeneratorOptions, PruneProbabilities};
pub use rng::{job_seed, Rng};

pub use clc_analyze::AnalysisReport;

/// Statically validates a generated (or retrofitted) program.
///
/// Campaigns call this before executing a kernel so that statically-invalid
/// kernels (barrier divergence, must-races, definite out-of-bounds accesses)
/// can be tallied and skipped instead of poisoning the differential vote,
/// and so the soundness differential can compare the static verdict against
/// the dynamic race detector.
pub fn validate(program: &clc::Program) -> AnalysisReport {
    clc_analyze::analyze(program)
}
