//! Cross-crate validation of the generator against the reference emulator:
//! the invariants the paper relies on (§4: deterministic output, no undefined
//! behaviour; §5: EMI variants agree with their base) must hold for every
//! generated program.

use clc_interp::{launch, LaunchOptions, Schedule};
use clsmith::{generate, job_seed, prune_variant, GenMode, GeneratorOptions, PruneProbabilities};

/// Small launch geometry so the emulated NDRange stays fast in tests.
fn test_options(mode: GenMode, seed: u64) -> GeneratorOptions {
    GeneratorOptions {
        min_threads: 16,
        max_threads: 64,
        ..GeneratorOptions::new(mode, seed)
    }
}

fn run_with(
    program: &clc::Program,
    schedule: Schedule,
    detect_races: bool,
) -> clc_interp::LaunchResult {
    let options = LaunchOptions {
        schedule,
        detect_races,
        ..LaunchOptions::default()
    };
    match launch(program, &options) {
        Ok(r) => r,
        Err(e) => panic!(
            "generated program must be UB-free but failed: {e}\n{}",
            clc::print_program(program)
        ),
    }
}

#[test]
fn all_modes_run_deterministically_across_schedules() {
    for mode in GenMode::ALL {
        for seed in 0..6u64 {
            let program = generate(&test_options(mode, seed));
            let forward = run_with(&program, Schedule::Forward, false);
            let reverse = run_with(&program, Schedule::Reverse, false);
            let shuffled = run_with(&program, Schedule::Shuffled(seed ^ 0xdead), false);
            assert_eq!(
                forward.result_string, reverse.result_string,
                "mode {mode} seed {seed}: schedule changed the result"
            );
            assert_eq!(forward.result_string, shuffled.result_string);
        }
    }
}

#[test]
fn generated_programs_are_race_free() {
    for mode in GenMode::ALL {
        for seed in 10..14u64 {
            let program = generate(&test_options(mode, seed));
            let result = run_with(&program, Schedule::Forward, true);
            assert!(
                result.race.is_none(),
                "mode {mode} seed {seed}: race {:?}\n{}",
                result.race,
                clc::print_program(&program)
            );
        }
    }
}

#[test]
fn emi_variants_agree_with_their_base() {
    for seed in 0..4u64 {
        let program = generate(&test_options(GenMode::All, seed).with_emi());
        let base = run_with(&program, Schedule::Forward, false);
        for (i, probs) in PruneProbabilities::table5_combinations()
            .iter()
            .enumerate()
            .step_by(7)
        {
            let variant = prune_variant(&program, probs, i as u64);
            let result = run_with(&variant, Schedule::Forward, false);
            assert_eq!(
                base.result_string, result.result_string,
                "seed {seed}, pruning {probs:?}: EMI variant diverged from its base"
            );
        }
    }
}

#[test]
fn inverting_the_dead_array_exposes_live_emi_blocks() {
    // §7.4: a candidate base kernel is kept only if inverting the dead array
    // changes its result (otherwise the blocks were injected into code that
    // is already dead).  Verify the mechanism: at least some seeds produce
    // bases whose inverted run differs, and the inverted run still exercises
    // the EMI bodies without crashing the emulator in most cases.
    let mut differing = 0;
    let mut total = 0;
    for seed in 0..8u64 {
        let program = generate(&test_options(GenMode::Basic, seed).with_emi());
        let normal = run_with(&program, Schedule::Forward, false);
        let mut options = LaunchOptions::default();
        std::sync::Arc::make_mut(&mut options.buffer_overrides).insert(
            "dead".into(),
            clc::BufferInit::ReverseIota.materialize(program.dead_len),
        );
        total += 1;
        if let Ok(inverted) = launch(&program, &options) {
            if inverted.result_string != normal.result_string {
                differing += 1;
            }
        } else {
            // The dead code is allowed to be "wild" (it never executes under
            // the standard input); an error under inversion still proves the
            // block is live.
            differing += 1;
        }
    }
    assert!(total == 8);
    assert!(
        differing >= 2,
        "expected several bases with live EMI blocks, found {differing}"
    );
}

/// Property form of the determinism invariant, over a deterministic spread
/// of pseudo-random (seed, mode) cases derived with [`job_seed`].
#[test]
fn prop_generated_programs_are_schedule_deterministic() {
    for case in 0..12u64 {
        let pick = job_seed(0xD37E, case);
        let seed = pick % 10_000;
        let mode = GenMode::ALL[(pick >> 32) as usize % 6];
        let program = generate(&test_options(mode, seed));
        assert!(
            clc::check_program(&program).is_ok(),
            "mode {mode} seed {seed}"
        );
        let a = run_with(&program, Schedule::Forward, false);
        let b = run_with(&program, Schedule::Shuffled(seed), false);
        assert_eq!(a.result_string, b.result_string, "mode {mode} seed {seed}");
    }
}

/// EMI pruning never produces ill-typed programs and never resurrects dead
/// blocks, over a deterministic spread of (seed, probabilities) cases.
#[test]
fn prop_pruning_preserves_validity() {
    let grid = [0.0, 0.3, 0.6, 1.0];
    for case in 0..12u64 {
        let pick = job_seed(0x9121, case);
        let seed = pick % 10_000;
        let prune_seed = (pick >> 16) % 1000;
        let probs = match PruneProbabilities::new(
            grid[(pick >> 32) as usize % 4],
            grid[(pick >> 40) as usize % 4],
            grid[(pick >> 48) as usize % 4],
        ) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let program = generate(&test_options(GenMode::All, seed).with_emi());
        let variant = prune_variant(&program, &probs, prune_seed);
        assert!(
            clc::check_program(&variant).is_ok(),
            "seed {seed} probs {probs:?}"
        );
        assert!(
            clsmith::all_emi_blocks_dead(&variant),
            "seed {seed} probs {probs:?}"
        );
    }
}
