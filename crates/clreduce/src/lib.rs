//! # clreduce — test-case reduction for OpenCL kernels
//!
//! §8 of the paper notes that reducing randomly generated kernels by hand is
//! time-consuming and that a C-Reduce-style tool for OpenCL "would require a
//! concurrency-aware static analysis to avoid introducing data races".  This
//! crate implements that idea as a delta-debugging loop over the `clc` AST:
//!
//! * candidate reductions remove statements, empty out EMI blocks, or
//!   replace compound statements by their bodies;
//! * a candidate is accepted only if it still **typechecks**, still runs on
//!   the reference emulator **without undefined behaviour, barrier
//!   divergence or data races** (the concurrency-aware validity check), and
//!   still satisfies the caller's *interestingness* predicate (e.g. "this
//!   configuration still miscompiles it").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use clc::stmt::Stmt;
use clc::Program;
use clc_interp::{launch, LaunchOptions, Schedule};

/// Options controlling the reduction loop.
#[derive(Debug, Clone)]
pub struct ReduceOptions {
    /// Maximum number of full passes over the program.
    pub max_passes: usize,
    /// Step budget for validity runs.
    pub step_limit: u64,
    /// Whether validity checking also requires race freedom (needs an extra
    /// run with the race detector enabled).
    pub check_races: bool,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            max_passes: 6,
            step_limit: 2_000_000,
            check_races: true,
        }
    }
}

/// Statistics about a reduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceStats {
    /// Statements before reduction.
    pub initial_statements: usize,
    /// Statements after reduction.
    pub final_statements: usize,
    /// Number of candidate reductions tried.
    pub candidates_tried: usize,
    /// Number of candidates accepted.
    pub candidates_accepted: usize,
}

/// Checks that a candidate program is still a valid, deterministic,
/// race-free test case (the concurrency-aware validity check of §8).
pub fn is_valid_test_case(program: &Program, options: &ReduceOptions) -> bool {
    if clc::check_program(program).is_err() {
        return false;
    }
    let run = |schedule: Schedule, races: bool| {
        launch(
            program,
            &LaunchOptions {
                step_limit: options.step_limit,
                detect_races: races,
                schedule,
                ..LaunchOptions::default()
            },
        )
    };
    let forward = match run(Schedule::Forward, options.check_races) {
        Ok(r) => {
            if options.check_races && r.race.is_some() {
                return false;
            }
            r
        }
        Err(_) => return false,
    };
    // Schedule determinism: the reducer must not create a kernel whose
    // result depends on work-item ordering.
    match run(Schedule::Reverse, false) {
        Ok(r) => r.result_string == forward.result_string,
        Err(_) => false,
    }
}

/// Reduces `program` while `interesting` keeps returning `true`.
///
/// The predicate receives candidate programs that are already known to be
/// valid test cases; it should re-run whatever observation made the original
/// program interesting (e.g. "configuration 14 still yields the wrong
/// result").
pub fn reduce(
    program: &Program,
    interesting: &mut dyn FnMut(&Program) -> bool,
    options: &ReduceOptions,
) -> (Program, ReduceStats) {
    let mut current = program.clone();
    let mut stats = ReduceStats {
        initial_statements: current.statement_count(),
        final_statements: 0,
        candidates_tried: 0,
        candidates_accepted: 0,
    };
    for _pass in 0..options.max_passes {
        let mut changed = false;
        let mut index = 0usize;
        loop {
            let candidates = candidate_reductions(&current, index);
            if candidates.is_empty() {
                break;
            }
            let mut accepted = false;
            for candidate in candidates {
                stats.candidates_tried += 1;
                if candidate.statement_count() >= current.statement_count() {
                    continue;
                }
                if is_valid_test_case(&candidate, options) && interesting(&candidate) {
                    current = candidate;
                    stats.candidates_accepted += 1;
                    accepted = true;
                    changed = true;
                    break;
                }
            }
            if !accepted {
                index += 1;
            }
        }
        if !changed {
            break;
        }
    }
    stats.final_statements = current.statement_count();
    (current, stats)
}

/// Candidate reductions at the given top-level statement index of the kernel
/// body: remove the statement entirely, or replace a compound statement with
/// its (jump-stripped) children.
fn candidate_reductions(program: &Program, index: usize) -> Vec<Program> {
    let body_len = program.kernel.body.stmts.len();
    if index >= body_len {
        return Vec::new();
    }
    let mut out = Vec::new();
    // 1. Drop the statement.
    {
        let mut candidate = program.clone();
        candidate.kernel.body.stmts.remove(index);
        out.push(candidate);
    }
    // 2. Replace a compound statement by its children (flattening).
    let stmt = &program.kernel.body.stmts[index];
    if stmt.is_compound() {
        let children: Vec<Stmt> = clsmith_lift(stmt);
        let mut candidate = program.clone();
        candidate.kernel.body.stmts.splice(index..=index, children);
        out.push(candidate);
    }
    out
}

/// Reuses the EMI *lift* transformation as a structural simplification.
fn clsmith_lift(stmt: &Stmt) -> Vec<Stmt> {
    clsmith::emi::lift_statement(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::{Expr, IdKind, ScalarType, Stmt, Type};
    use clsmith::{generate, GenMode, GeneratorOptions};

    fn small_program(seed: u64) -> Program {
        generate(&GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::new(GenMode::Basic, seed)
        })
    }

    #[test]
    fn valid_test_case_check_accepts_generated_programs() {
        let p = small_program(5);
        assert!(is_valid_test_case(&p, &ReduceOptions::default()));
    }

    #[test]
    fn valid_test_case_check_rejects_broken_programs() {
        let mut p = small_program(6);
        // Introduce a read of an undeclared variable.
        p.kernel.body.stmts.insert(
            0,
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                Expr::var("nonexistent"),
            ),
        );
        assert!(!is_valid_test_case(&p, &ReduceOptions::default()));
    }

    #[test]
    fn reduction_shrinks_while_preserving_the_property() {
        let p = small_program(7);
        // Property: the kernel still writes something non-trivial to out[0]
        // — checked via the reference emulator.
        let original = clc_interp::run(&p).unwrap();
        let first = original.output[0].as_u64();
        let mut interesting = |candidate: &Program| match clc_interp::run(candidate) {
            Ok(r) => r.output.first().map(|s| s.as_u64()) == Some(first),
            Err(_) => false,
        };
        let (reduced, stats) = reduce(&p, &mut interesting, &ReduceOptions::default());
        assert!(stats.final_statements <= stats.initial_statements);
        assert!(stats.candidates_tried > 0);
        let after = clc_interp::run(&reduced).unwrap();
        assert_eq!(after.output[0].as_u64(), first);
        // The reduced program is usually much smaller; at minimum it must
        // not have grown.
        assert!(reduced.statement_count() <= p.statement_count());
    }

    #[test]
    fn reduction_respects_race_freedom() {
        // A program with a deliberate race must be rejected by the validity
        // check, so the reducer never "reduces into" racy territory.
        let racy = parboil_rodinia_like_racy_program();
        assert!(!is_valid_test_case(&racy, &ReduceOptions::default()));
    }

    fn parboil_rodinia_like_racy_program() -> Program {
        use clc::{BufferSpec, KernelDef, LaunchConfig, MemFence, Param};
        let mut p = Program::new(
            KernelDef {
                name: "racy".into(),
                params: vec![Param::new(
                    "out",
                    Type::Scalar(ScalarType::ULong).pointer_to(clc::AddressSpace::Global),
                )],
                body: clc::Block::new(),
            },
            LaunchConfig::single_group(4),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));
        // Everyone writes out[0] (a cross-work-item write/write race), then a
        // barrier so it is not also divergence.
        p.kernel.body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::IdQuery(IdKind::LocalLinearId),
        ));
        p.kernel.body.push(Stmt::Barrier(MemFence::Global));
        p
    }
}
