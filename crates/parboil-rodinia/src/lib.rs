//! # parboil-rodinia — miniature versions of the Table 2 benchmarks
//!
//! The paper evaluates EMI testing on ten kernels from the Parboil and
//! Rodinia suites (Table 2, §7.2).  The original benchmarks are large,
//! partly floating-point OpenCL applications; this crate provides faithful
//! *miniatures*: kernels with the same computational shape (graph traversal,
//! stencils, dynamic programming, reductions, sparse matrix–vector products,
//! ...), written against the `clc` AST, using integer / fixed-point
//! arithmetic so that results are exact — the same reason the paper favours
//! non-floating-point benchmarks (§7.2).
//!
//! Two miniatures intentionally reproduce the defects the paper *discovered
//! while doing EMI testing* (§2.4): `spmv` and `myocyte` contain data races,
//! which the emulator's race detector flags and which make their results
//! schedule dependent.  They are excluded from Table 3 exactly as the paper
//! excludes them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use clc::expr::{AssignOp, BinOp, Builtin, Expr, IdKind};
use clc::stmt::{Block, MemFence, Stmt};
use clc::types::{AddressSpace, ScalarType, Type};
use clc::{BufferInit, BufferSpec, KernelDef, LaunchConfig, Param, Program};

/// Which suite a benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Parboil v2.5.
    Parboil,
    /// Rodinia v2.8.
    Rodinia,
}

impl Suite {
    /// Suite name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Parboil => "Parboil",
            Suite::Rodinia => "Rodinia",
        }
    }
}

/// One benchmark: Table 2 metadata plus the miniature kernel.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (Table 2).
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Description (Table 2).
    pub description: &'static str,
    /// Number of kernels in the original benchmark (Table 2).
    pub original_kernels: usize,
    /// Lines of kernel code in the original benchmark (Table 2).
    pub original_loc: usize,
    /// Whether the original uses floating point (Table 2); miniatures always
    /// use integer arithmetic.
    pub original_uses_fp: bool,
    /// Whether the miniature deliberately contains the data race the paper
    /// discovered (spmv, myocyte).
    pub has_known_race: bool,
    /// The miniature kernel.
    pub program: Program,
}

fn global_ptr(name: &str, ty: ScalarType) -> Param {
    Param::new(name, Type::Scalar(ty).pointer_to(AddressSpace::Global))
}

fn tid() -> Expr {
    Expr::IdQuery(IdKind::GlobalLinearId)
}

fn lid() -> Expr {
    Expr::IdQuery(IdKind::LocalLinearId)
}

fn out_store(value: Expr) -> Stmt {
    Stmt::assign(Expr::index(Expr::var("out"), tid()), value)
}

fn base_program(name: &str, params: Vec<Param>, launch: LaunchConfig) -> Program {
    let mut p = Program::new(
        KernelDef {
            name: name.into(),
            params,
            body: Block::new(),
        },
        launch,
    );
    p.buffers.push(BufferSpec::result(
        "out",
        ScalarType::ULong,
        launch.total_work_items(),
    ));
    p
}

fn for_loop(var: &str, bound: i64, body: Block) -> Stmt {
    Stmt::For {
        init: Some(Box::new(Stmt::decl(
            var,
            Type::Scalar(ScalarType::Int),
            Some(Expr::int(0)),
        ))),
        cond: Some(Expr::binary(BinOp::Lt, Expr::var(var), Expr::int(bound))),
        update: Some(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var(var),
            Expr::int(1),
        )),
        body,
    }
}

/// Parboil `bfs`: one level of a breadth-first search frontier expansion over
/// a synthetic ring-with-chords graph held in CSR-like arrays.
pub fn bfs() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "bfs_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("edges", ScalarType::Int),
            global_ptr("offsets", ScalarType::Int),
            global_ptr("cost", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [16, 1, 1]).expect("valid launch"),
    );
    // offsets[i] = 2*i, edges[2*i] = (i+1) % n, edges[2*i+1] = (i+7) % n,
    // cost[i] = i % 4.
    p.buffers.push(BufferSpec::new(
        "edges",
        ScalarType::Int,
        2 * n,
        BufferInit::Data(
            (0..2 * n as i64)
                .map(|e| {
                    let i = e / 2;
                    if e % 2 == 0 {
                        (i + 1) % n as i64
                    } else {
                        (i + 7) % n as i64
                    }
                })
                .collect(),
        ),
    ));
    p.buffers.push(BufferSpec::new(
        "offsets",
        ScalarType::Int,
        n + 1,
        BufferInit::Data((0..=n as i64).map(|i| 2 * i).collect()),
    ));
    p.buffers.push(BufferSpec::new(
        "cost",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| i % 4).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "best",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(1 << 20)),
    ));
    body.push(Stmt::decl(
        "start",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(Expr::var("offsets"), tid())),
    ));
    body.push(Stmt::decl(
        "end",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(
            Expr::var("offsets"),
            Expr::binary(BinOp::Add, tid(), Expr::lit(1, ScalarType::UInt)),
        )),
    ));
    body.push(Stmt::For {
        init: Some(Box::new(Stmt::decl(
            "e",
            Type::Scalar(ScalarType::Int),
            Some(Expr::var("start")),
        ))),
        cond: Some(Expr::binary(BinOp::Lt, Expr::var("e"), Expr::var("end"))),
        update: Some(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("e"),
            Expr::int(1),
        )),
        body: Block::of(vec![
            Stmt::decl(
                "neighbour",
                Type::Scalar(ScalarType::Int),
                Some(Expr::index(Expr::var("edges"), Expr::var("e"))),
            ),
            Stmt::decl(
                "candidate",
                Type::Scalar(ScalarType::Int),
                Some(Expr::binary(
                    BinOp::Add,
                    Expr::index(Expr::var("cost"), Expr::var("neighbour")),
                    Expr::int(1),
                )),
            ),
            Stmt::assign(
                Expr::var("best"),
                Expr::builtin(
                    Builtin::Min,
                    vec![Expr::var("best"), Expr::var("candidate")],
                ),
            ),
        ]),
    });
    body.push(out_store(Expr::var("best")));
    Benchmark {
        name: "bfs",
        suite: Suite::Parboil,
        description: "Graph breadth-first search",
        original_kernels: 1,
        original_loc: 65,
        original_uses_fp: false,
        has_known_race: false,
        program: p,
    }
}

/// Parboil `cutcp`: cutoff-limited Coulombic potential accumulation on a
/// small lattice (fixed point).
pub fn cutcp() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "cutcp_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("atoms", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [32, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "atoms",
        ScalarType::Int,
        32,
        BufferInit::Data((0..32).map(|i| (i * 37) % 101).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "potential",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "a",
        32,
        Block::of(vec![
            Stmt::decl(
                "distance",
                Type::Scalar(ScalarType::Int),
                Some(Expr::cast(
                    Type::Scalar(ScalarType::Int),
                    Expr::builtin(
                        Builtin::Abs,
                        vec![Expr::binary(
                            BinOp::Sub,
                            Expr::cast(Type::Scalar(ScalarType::Int), tid()),
                            Expr::index(Expr::var("atoms"), Expr::var("a")),
                        )],
                    ),
                )),
            ),
            Stmt::if_then(
                Expr::binary(BinOp::Lt, Expr::var("distance"), Expr::int(16)),
                Block::of(vec![Stmt::expr(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var("potential"),
                    Expr::builtin(
                        Builtin::SafeDiv,
                        vec![
                            Expr::int(1 << 10),
                            Expr::binary(BinOp::Add, Expr::var("distance"), Expr::int(1)),
                        ],
                    ),
                ))]),
            ),
        ]),
    ));
    body.push(out_store(Expr::var("potential")));
    Benchmark {
        name: "cutcp",
        suite: Suite::Parboil,
        description: "Molecular modeling simulation",
        original_kernels: 1,
        original_loc: 98,
        original_uses_fp: true,
        has_known_race: false,
        program: p,
    }
}

/// Parboil `lbm`: a lattice-Boltzmann style 9-direction collide-and-stream
/// step over a 1D slice (fixed point).
pub fn lbm() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "lbm_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("cells", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [16, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "cells",
        ScalarType::Int,
        n * 9,
        BufferInit::Data((0..(n * 9) as i64).map(|i| (i * 13) % 97).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "density",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "d",
        9,
        Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("density"),
            Expr::index(
                Expr::var("cells"),
                Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::cast(Type::Scalar(ScalarType::Int), tid()),
                        Expr::int(9),
                    ),
                    Expr::var("d"),
                ),
            ),
        ))]),
    ));
    body.push(Stmt::decl(
        "equilibrium",
        Type::Scalar(ScalarType::Int),
        Some(Expr::builtin(
            Builtin::SafeDiv,
            vec![Expr::var("density"), Expr::int(9)],
        )),
    ));
    body.push(Stmt::decl(
        "relaxed",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "d2",
        9,
        Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("relaxed"),
            Expr::builtin(
                Builtin::SafeDiv,
                vec![
                    Expr::binary(
                        BinOp::Add,
                        Expr::index(
                            Expr::var("cells"),
                            Expr::binary(
                                BinOp::Add,
                                Expr::binary(
                                    BinOp::Mul,
                                    Expr::cast(Type::Scalar(ScalarType::Int), tid()),
                                    Expr::int(9),
                                ),
                                Expr::var("d2"),
                            ),
                        ),
                        Expr::var("equilibrium"),
                    ),
                    Expr::int(2),
                ],
            ),
        ))]),
    ));
    body.push(out_store(Expr::var("relaxed")));
    Benchmark {
        name: "lbm",
        suite: Suite::Parboil,
        description: "Fluid dynamics simulation",
        original_kernels: 1,
        original_loc: 139,
        original_uses_fp: true,
        has_known_race: false,
        program: p,
    }
}

/// Parboil `sad`: sum-of-absolute-differences over a 16-pixel window, the
/// core of video motion estimation.
pub fn sad() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "sad_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("frame", ScalarType::Int),
            global_ptr("reference", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [16, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "frame",
        ScalarType::Int,
        n + 16,
        BufferInit::Data((0..(n + 16) as i64).map(|i| (i * 7) % 251).collect()),
    ));
    p.buffers.push(BufferSpec::new(
        "reference",
        ScalarType::Int,
        n + 16,
        BufferInit::Data((0..(n + 16) as i64).map(|i| (i * 11) % 251).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "sum",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "px",
        16,
        Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("sum"),
            Expr::cast(
                Type::Scalar(ScalarType::Int),
                Expr::builtin(
                    Builtin::Abs,
                    vec![Expr::binary(
                        BinOp::Sub,
                        Expr::index(
                            Expr::var("frame"),
                            Expr::binary(BinOp::Add, tid(), Expr::var("px")),
                        ),
                        Expr::index(
                            Expr::var("reference"),
                            Expr::binary(BinOp::Add, tid(), Expr::var("px")),
                        ),
                    )],
                ),
            ),
        ))]),
    ));
    body.push(out_store(Expr::var("sum")));
    Benchmark {
        name: "sad",
        suite: Suite::Parboil,
        description: "Video processing (sum of absolute differences)",
        original_kernels: 3,
        original_loc: 134,
        original_uses_fp: false,
        has_known_race: false,
        program: p,
    }
}

/// Parboil `spmv`: sparse matrix–vector product in a JDS-like layout.
///
/// This miniature reproduces the defect the paper found (§2.4): the result
/// vector is updated with a read–modify–write on a location also written by
/// a neighbouring work-item — a data race that makes the output schedule
/// dependent.  The emulator's race detector flags it.
pub fn spmv() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "spmv_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("values", ScalarType::Int),
            global_ptr("columns", ScalarType::Int),
            global_ptr("x", ScalarType::Int),
            global_ptr("y", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [16, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "values",
        ScalarType::Int,
        n * 4,
        BufferInit::Data((0..(n * 4) as i64).map(|i| (i % 9) - 4).collect()),
    ));
    p.buffers.push(BufferSpec::new(
        "columns",
        ScalarType::Int,
        n * 4,
        BufferInit::Data((0..(n * 4) as i64).map(|i| (i * 5) % n as i64).collect()),
    ));
    p.buffers.push(BufferSpec::new(
        "x",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| i + 1).collect()),
    ));
    p.buffers
        .push(BufferSpec::new("y", ScalarType::Int, n, BufferInit::Zero));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "acc",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "k",
        4,
        Block::of(vec![
            Stmt::decl(
                "idx",
                Type::Scalar(ScalarType::Int),
                Some(Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::cast(Type::Scalar(ScalarType::Int), tid()),
                        Expr::int(4),
                    ),
                    Expr::var("k"),
                )),
            ),
            Stmt::expr(Expr::assign_op(
                AssignOp::AddAssign,
                Expr::var("acc"),
                Expr::binary(
                    BinOp::Mul,
                    Expr::index(Expr::var("values"), Expr::var("idx")),
                    Expr::index(
                        Expr::var("x"),
                        Expr::index(Expr::var("columns"), Expr::var("idx")),
                    ),
                ),
            )),
        ]),
    ));
    // The race: every work-item also "scatters" a correction into its
    // neighbour's slot of y without synchronisation, then reads its own slot.
    body.push(Stmt::expr(Expr::assign_op(
        AssignOp::AddAssign,
        Expr::index(
            Expr::var("y"),
            Expr::builtin(
                Builtin::SafeMod,
                vec![
                    Expr::binary(
                        BinOp::Add,
                        Expr::cast(Type::Scalar(ScalarType::Int), tid()),
                        Expr::int(1),
                    ),
                    Expr::int(n as i64),
                ],
            ),
        ),
        Expr::var("acc"),
    )));
    body.push(out_store(Expr::binary(
        BinOp::Add,
        Expr::var("acc"),
        Expr::index(Expr::var("y"), tid()),
    )));
    Benchmark {
        name: "spmv",
        suite: Suite::Parboil,
        description: "Sparse linear algebra (contains the data race reported by the paper)",
        original_kernels: 1,
        original_loc: 32,
        original_uses_fp: true,
        has_known_race: true,
        program: p,
    }
}

/// Parboil `tpacf`: two-point angular correlation histogramming.
pub fn tpacf() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "tpacf_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("data", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [32, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "data",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| (i * 29) % 359).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "bins",
        Type::Scalar(ScalarType::Int).array_of(8),
        None,
    ));
    body.push(for_loop(
        "b",
        8,
        Block::of(vec![Stmt::assign(
            Expr::index(Expr::var("bins"), Expr::var("b")),
            Expr::int(0),
        )]),
    ));
    body.push(for_loop(
        "j",
        32,
        Block::of(vec![
            Stmt::decl(
                "angle",
                Type::Scalar(ScalarType::Int),
                Some(Expr::cast(
                    Type::Scalar(ScalarType::Int),
                    Expr::builtin(
                        Builtin::Abs,
                        vec![Expr::binary(
                            BinOp::Sub,
                            Expr::index(Expr::var("data"), tid()),
                            Expr::index(Expr::var("data"), Expr::var("j")),
                        )],
                    ),
                )),
            ),
            Stmt::decl(
                "bin",
                Type::Scalar(ScalarType::Int),
                Some(Expr::builtin(
                    Builtin::SafeClamp,
                    vec![
                        Expr::builtin(Builtin::SafeDiv, vec![Expr::var("angle"), Expr::int(45)]),
                        Expr::int(0),
                        Expr::int(7),
                    ],
                )),
            ),
            Stmt::expr(Expr::assign_op(
                AssignOp::AddAssign,
                Expr::index(Expr::var("bins"), Expr::var("bin")),
                Expr::int(1),
            )),
        ]),
    ));
    body.push(Stmt::decl(
        "weighted",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "b2",
        8,
        Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("weighted"),
            Expr::binary(
                BinOp::Mul,
                Expr::index(Expr::var("bins"), Expr::var("b2")),
                Expr::binary(BinOp::Add, Expr::var("b2"), Expr::int(1)),
            ),
        ))]),
    ));
    body.push(out_store(Expr::var("weighted")));
    Benchmark {
        name: "tpacf",
        suite: Suite::Parboil,
        description: "Two-point angular correlation function (N-body method)",
        original_kernels: 1,
        original_loc: 129,
        original_uses_fp: true,
        has_known_race: false,
        program: p,
    }
}

/// Rodinia `heartwall`: window tracking — average intensity in a window
/// followed by a best-offset search.
pub fn heartwall() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "heartwall_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("image", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [16, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "image",
        ScalarType::Int,
        n + 32,
        BufferInit::Data((0..(n + 32) as i64).map(|i| (i * 17) % 256).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "mean",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "w",
        16,
        Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("mean"),
            Expr::index(
                Expr::var("image"),
                Expr::binary(BinOp::Add, tid(), Expr::var("w")),
            ),
        ))]),
    ));
    body.push(Stmt::assign(
        Expr::var("mean"),
        Expr::builtin(Builtin::SafeDiv, vec![Expr::var("mean"), Expr::int(16)]),
    ));
    body.push(Stmt::decl(
        "best",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(1 << 20)),
    ));
    body.push(Stmt::decl(
        "best_offset",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    body.push(for_loop(
        "offset",
        16,
        Block::of(vec![
            Stmt::decl(
                "diff",
                Type::Scalar(ScalarType::Int),
                Some(Expr::cast(
                    Type::Scalar(ScalarType::Int),
                    Expr::builtin(
                        Builtin::Abs,
                        vec![Expr::binary(
                            BinOp::Sub,
                            Expr::index(
                                Expr::var("image"),
                                Expr::binary(BinOp::Add, tid(), Expr::var("offset")),
                            ),
                            Expr::var("mean"),
                        )],
                    ),
                )),
            ),
            Stmt::if_then(
                Expr::binary(BinOp::Lt, Expr::var("diff"), Expr::var("best")),
                Block::of(vec![
                    Stmt::assign(Expr::var("best"), Expr::var("diff")),
                    Stmt::assign(Expr::var("best_offset"), Expr::var("offset")),
                ]),
            ),
        ]),
    ));
    body.push(out_store(Expr::binary(
        BinOp::Add,
        Expr::binary(BinOp::Mul, Expr::var("best"), Expr::int(100)),
        Expr::var("best_offset"),
    )));
    Benchmark {
        name: "heartwall",
        suite: Suite::Rodinia,
        description: "Medical imaging (heart wall tracking)",
        original_kernels: 1,
        original_loc: 1060,
        original_uses_fp: true,
        has_known_race: false,
        program: p,
    }
}

/// Rodinia `hotspot`: a thermal stencil over a row of cells, using
/// work-group local memory and a barrier.
pub fn hotspot() -> Benchmark {
    let n = 64usize;
    let group = 16usize;
    let mut p = base_program(
        "hotspot_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("temperature", ScalarType::Int),
            global_ptr("power", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [group, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "temperature",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| 300 + (i * 3) % 40).collect()),
    ));
    p.buffers.push(BufferSpec::new(
        "power",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| (i * 7) % 20).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::Decl {
        name: "tile".into(),
        ty: Type::Scalar(ScalarType::Int).array_of(group),
        space: AddressSpace::Local,
        volatile: false,
        init: None,
        init_list: None,
    });
    body.push(Stmt::assign(
        Expr::index(Expr::var("tile"), lid()),
        Expr::index(Expr::var("temperature"), tid()),
    ));
    body.push(Stmt::Barrier(MemFence::Local));
    body.push(Stmt::decl(
        "left",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(
            Expr::var("tile"),
            Expr::cond(
                Expr::binary(BinOp::Eq, lid(), Expr::lit(0, ScalarType::UInt)),
                Expr::lit(0, ScalarType::UInt),
                Expr::binary(BinOp::Sub, lid(), Expr::lit(1, ScalarType::UInt)),
            ),
        )),
    ));
    body.push(Stmt::decl(
        "right",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(
            Expr::var("tile"),
            Expr::cond(
                Expr::binary(
                    BinOp::Eq,
                    lid(),
                    Expr::lit(group as i128 - 1, ScalarType::UInt),
                ),
                Expr::lit(group as i128 - 1, ScalarType::UInt),
                Expr::binary(BinOp::Add, lid(), Expr::lit(1, ScalarType::UInt)),
            ),
        )),
    ));
    body.push(Stmt::decl(
        "centre",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(Expr::var("tile"), lid())),
    ));
    body.push(Stmt::decl(
        "delta",
        Type::Scalar(ScalarType::Int),
        Some(Expr::builtin(
            Builtin::SafeDiv,
            vec![
                Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Sub,
                        Expr::binary(BinOp::Add, Expr::var("left"), Expr::var("right")),
                        Expr::binary(BinOp::Mul, Expr::var("centre"), Expr::int(2)),
                    ),
                    Expr::index(Expr::var("power"), tid()),
                ),
                Expr::int(4),
            ],
        )),
    ));
    body.push(out_store(Expr::binary(
        BinOp::Add,
        Expr::var("centre"),
        Expr::var("delta"),
    )));
    Benchmark {
        name: "hotspot",
        suite: Suite::Rodinia,
        description: "Thermal physics simulation (stencil)",
        original_kernels: 1,
        original_loc: 89,
        original_uses_fp: true,
        has_known_race: false,
        program: p,
    }
}

/// Rodinia `myocyte`: an ODE-style state update.  Reproduces the race the
/// paper found: state is shared between work-items of a group without a
/// barrier between the write and the neighbour's read.
pub fn myocyte() -> Benchmark {
    let n = 64usize;
    let group = 16usize;
    let mut p = base_program(
        "myocyte_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("state", ScalarType::Int),
            global_ptr("rates", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [group, 1, 1]).expect("valid launch"),
    );
    p.buffers.push(BufferSpec::new(
        "state",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| (i * 23) % 71).collect()),
    ));
    p.buffers.push(BufferSpec::new(
        "rates",
        ScalarType::Int,
        n,
        BufferInit::Data((0..n as i64).map(|i| (i % 5) - 2).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::Decl {
        name: "shared_state".into(),
        ty: Type::Scalar(ScalarType::Int).array_of(group),
        space: AddressSpace::Local,
        volatile: false,
        init: None,
        init_list: None,
    });
    body.push(Stmt::assign(
        Expr::index(Expr::var("shared_state"), lid()),
        Expr::index(Expr::var("state"), tid()),
    ));
    // Missing barrier here: the neighbour read below races with the write
    // above, exactly the class of defect §2.4 reports for myocyte.
    body.push(Stmt::decl(
        "neighbour",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(
            Expr::var("shared_state"),
            Expr::builtin(
                Builtin::SafeMod,
                vec![
                    Expr::binary(
                        BinOp::Add,
                        Expr::cast(Type::Scalar(ScalarType::Int), lid()),
                        Expr::int(1),
                    ),
                    Expr::int(group as i64),
                ],
            ),
        )),
    ));
    body.push(Stmt::decl(
        "value",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(Expr::var("state"), tid())),
    ));
    body.push(for_loop(
        "step",
        8,
        Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("value"),
            Expr::builtin(
                Builtin::SafeDiv,
                vec![
                    Expr::binary(
                        BinOp::Add,
                        Expr::binary(
                            BinOp::Mul,
                            Expr::index(Expr::var("rates"), tid()),
                            Expr::var("value"),
                        ),
                        Expr::var("neighbour"),
                    ),
                    Expr::int(8),
                ],
            ),
        ))]),
    ));
    body.push(out_store(Expr::var("value")));
    Benchmark {
        name: "myocyte",
        suite: Suite::Rodinia,
        description: "Cardiac myocyte simulation (contains the data race reported by the paper)",
        original_kernels: 1,
        original_loc: 1050,
        original_uses_fp: true,
        has_known_race: true,
        program: p,
    }
}

/// Rodinia `pathfinder`: dynamic programming over a cost grid.
pub fn pathfinder() -> Benchmark {
    let n = 64usize;
    let mut p = base_program(
        "pathfinder_kernel",
        vec![
            Param::new(
                "out",
                Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
            ),
            global_ptr("wall", ScalarType::Int),
        ],
        LaunchConfig::new([n, 1, 1], [16, 1, 1]).expect("valid launch"),
    );
    let rows = 8usize;
    p.buffers.push(BufferSpec::new(
        "wall",
        ScalarType::Int,
        n * rows,
        BufferInit::Data((0..(n * rows) as i64).map(|i| (i * 19) % 23).collect()),
    ));
    let body = &mut p.kernel.body;
    body.push(Stmt::decl(
        "cost",
        Type::Scalar(ScalarType::Int),
        Some(Expr::index(Expr::var("wall"), tid())),
    ));
    body.push(for_loop(
        "row",
        (rows - 1) as i64,
        Block::of(vec![
            Stmt::decl(
                "base",
                Type::Scalar(ScalarType::Int),
                Some(Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::binary(BinOp::Add, Expr::var("row"), Expr::int(1)),
                        Expr::int(n as i64),
                    ),
                    Expr::cast(Type::Scalar(ScalarType::Int), tid()),
                )),
            ),
            Stmt::decl(
                "left",
                Type::Scalar(ScalarType::Int),
                Some(Expr::index(
                    Expr::var("wall"),
                    Expr::builtin(
                        Builtin::SafeClamp,
                        vec![
                            Expr::binary(BinOp::Sub, Expr::var("base"), Expr::int(1)),
                            Expr::binary(
                                BinOp::Mul,
                                Expr::binary(BinOp::Add, Expr::var("row"), Expr::int(1)),
                                Expr::int(n as i64),
                            ),
                            Expr::binary(
                                BinOp::Sub,
                                Expr::binary(
                                    BinOp::Mul,
                                    Expr::binary(BinOp::Add, Expr::var("row"), Expr::int(2)),
                                    Expr::int(n as i64),
                                ),
                                Expr::int(1),
                            ),
                        ],
                    ),
                )),
            ),
            Stmt::decl(
                "here",
                Type::Scalar(ScalarType::Int),
                Some(Expr::index(Expr::var("wall"), Expr::var("base"))),
            ),
            Stmt::expr(Expr::assign_op(
                AssignOp::AddAssign,
                Expr::var("cost"),
                Expr::builtin(Builtin::Min, vec![Expr::var("left"), Expr::var("here")]),
            )),
        ]),
    ));
    body.push(out_store(Expr::var("cost")));
    Benchmark {
        name: "pathfinder",
        suite: Suite::Rodinia,
        description: "Dynamic programming (grid traversal)",
        original_kernels: 1,
        original_loc: 102,
        original_uses_fp: false,
        has_known_race: false,
        program: p,
    }
}

/// All ten Table 2 benchmarks, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        bfs(),
        cutcp(),
        lbm(),
        sad(),
        spmv(),
        tpacf(),
        heartwall(),
        hotspot(),
        myocyte(),
        pathfinder(),
    ]
}

/// The eight benchmarks used in Table 3 (spmv and myocyte are excluded
/// because of their data races, §2.4).
pub fn table3_benchmarks() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| !b.has_known_race)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc_interp::{launch, LaunchOptions, Schedule};

    #[test]
    fn there_are_ten_benchmarks_matching_table_2() {
        let benchmarks = all_benchmarks();
        assert_eq!(benchmarks.len(), 10);
        let names: Vec<&str> = benchmarks.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "bfs",
                "cutcp",
                "lbm",
                "sad",
                "spmv",
                "tpacf",
                "heartwall",
                "hotspot",
                "myocyte",
                "pathfinder"
            ]
        );
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.suite == Suite::Parboil)
                .count(),
            6
        );
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.suite == Suite::Rodinia)
                .count(),
            4
        );
        assert_eq!(benchmarks.iter().filter(|b| !b.original_uses_fp).count(), 3);
        assert_eq!(Suite::Parboil.name(), "Parboil");
    }

    #[test]
    fn benchmarks_typecheck_and_run() {
        for b in all_benchmarks() {
            assert!(
                clc::check_program(&b.program).is_ok(),
                "{} fails typecheck",
                b.name
            );
            let result = clc_interp::run(&b.program);
            assert!(result.is_ok(), "{} failed: {:?}", b.name, result.err());
            let result = result.unwrap();
            assert_eq!(result.output.len(), b.program.launch.total_work_items());
        }
    }

    #[test]
    fn race_free_benchmarks_are_schedule_deterministic() {
        for b in table3_benchmarks() {
            let forward = clc_interp::run(&b.program).unwrap();
            let reverse = launch(
                &b.program,
                &LaunchOptions {
                    schedule: Schedule::Reverse,
                    ..LaunchOptions::default()
                },
            )
            .unwrap();
            assert_eq!(forward.result_string, reverse.result_string, "{}", b.name);
            let raced = launch(
                &b.program,
                &LaunchOptions {
                    detect_races: true,
                    ..LaunchOptions::default()
                },
            )
            .unwrap();
            assert!(raced.race.is_none(), "{} unexpectedly races", b.name);
        }
    }

    #[test]
    fn spmv_and_myocyte_reproduce_the_papers_races() {
        for b in all_benchmarks().into_iter().filter(|b| b.has_known_race) {
            let raced = launch(
                &b.program,
                &LaunchOptions {
                    detect_races: true,
                    ..LaunchOptions::default()
                },
            )
            .unwrap();
            assert!(
                raced.race.is_some(),
                "{} should contain a data race",
                b.name
            );
        }
    }

    #[test]
    fn benchmark_kernels_have_realistic_structure() {
        for b in all_benchmarks() {
            let features = clc::Features::detect(&b.program);
            assert!(
                features.loop_count >= 1 || b.name == "hotspot",
                "{} should contain loops",
                b.name
            );
            assert!(
                b.program.kernel.body.stmts.len() >= 3,
                "{} too small",
                b.name
            );
        }
        // hotspot exercises local memory and barriers.
        let hotspot = hotspot();
        assert!(hotspot.program.kernel.body.contains_barrier());
    }
}
