//! Shared pre-order AST walker.
//!
//! Feature detection ([`crate::analysis`]) and the static analyzer (crate
//! `clc-analyze`) both need the same traversal: every statement and
//! expression in program order, together with the structural context their
//! checks condition on — loop nesting, whether an expression is the root of
//! a control-flow condition, and the innermost literal `for` bound.  The
//! walker owns that recursion once; visitors implement [`Visitor::enter_stmt`]
//! / [`Visitor::enter_expr`] and inspect only the node they are handed.

use crate::expr::{BinOp, Expr};
use crate::stmt::{Block, Initializer, Stmt};

/// Structural context maintained by the walker.
#[derive(Debug, Clone, Copy, Default)]
pub struct VisitCtx {
    /// Whether the node sits inside a loop body (`for` / `while`).
    pub in_loop: bool,
    /// Whether the expression is the *root* of a control-flow condition (an
    /// `if` / `while` / `for` condition or the first operand of `?:`).
    /// Children of a condition are visited with the flag cleared.
    pub in_condition: bool,
    /// Innermost enclosing literal `for` bound (`i < N` / `i <= N`), if any.
    pub enclosing_for_bound: Option<i128>,
}

impl VisitCtx {
    fn child_expr(self) -> VisitCtx {
        VisitCtx {
            in_condition: false,
            ..self
        }
    }

    fn condition(self) -> VisitCtx {
        VisitCtx {
            in_condition: true,
            ..self
        }
    }
}

/// A pre-order AST visitor.  Both hooks default to doing nothing, so a
/// visitor only implements the granularity it cares about; the walker
/// functions ([`walk_block`], [`walk_stmt`], [`walk_expr`]) perform the
/// recursion.
pub trait Visitor {
    /// Called on every statement before its children are walked.
    fn enter_stmt(&mut self, _stmt: &Stmt, _cx: &VisitCtx) {}

    /// Called on every expression before its sub-expressions are walked.
    fn enter_expr(&mut self, _expr: &Expr, _cx: &VisitCtx) {}
}

/// Walks every statement of a block, in order.
pub fn walk_block<V: Visitor>(v: &mut V, block: &Block, cx: VisitCtx) {
    for s in block.iter() {
        walk_stmt(v, s, cx);
    }
}

/// Walks a statement and everything it contains.
pub fn walk_stmt<V: Visitor>(v: &mut V, stmt: &Stmt, cx: VisitCtx) {
    v.enter_stmt(stmt, &cx);
    match stmt {
        Stmt::Decl {
            init, init_list, ..
        } => {
            if let Some(e) = init {
                walk_expr(v, e, cx.child_expr());
            }
            if let Some(list) = init_list {
                walk_initializer(v, list, cx);
            }
        }
        Stmt::Expr(e) => walk_expr(v, e, cx.child_expr()),
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            walk_expr(v, cond, cx.condition());
            walk_block(v, then_block, cx);
            if let Some(b) = else_block {
                walk_block(v, b, cx);
            }
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(init) = init {
                walk_stmt(v, init, cx);
            }
            let bound = cond.as_ref().and_then(extract_literal_bound);
            if let Some(c) = cond {
                walk_expr(v, c, cx.condition());
            }
            if let Some(u) = update {
                walk_expr(v, u, cx.child_expr());
            }
            let body_cx = VisitCtx {
                in_loop: true,
                enclosing_for_bound: bound.or(cx.enclosing_for_bound),
                ..cx
            };
            walk_block(v, body, body_cx);
        }
        Stmt::While { cond, body } => {
            walk_expr(v, cond, cx.condition());
            walk_block(
                v,
                body,
                VisitCtx {
                    in_loop: true,
                    ..cx
                },
            );
        }
        Stmt::Block(b) => walk_block(v, b, cx),
        Stmt::Return(Some(e)) => walk_expr(v, e, cx.child_expr()),
        Stmt::Emi(emi) => walk_block(v, &emi.body, cx),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Barrier(_) => {}
    }
}

fn walk_initializer<V: Visitor>(v: &mut V, init: &Initializer, cx: VisitCtx) {
    match init {
        Initializer::Expr(e) => walk_expr(v, e, cx.child_expr()),
        Initializer::List(items) => {
            for item in items {
                walk_initializer(v, item, cx);
            }
        }
    }
}

/// Walks an expression and its sub-expressions.
pub fn walk_expr<V: Visitor>(v: &mut V, expr: &Expr, cx: VisitCtx) {
    v.enter_expr(expr, &cx);
    let child = cx.child_expr();
    match expr {
        Expr::IntLit { .. } | Expr::Var(_) | Expr::IdQuery(_) => {}
        Expr::VectorLit { parts, .. } => {
            for p in parts {
                walk_expr(v, p, child);
            }
        }
        Expr::Unary { expr, .. }
        | Expr::Deref(expr)
        | Expr::AddrOf(expr)
        | Expr::Cast { expr, .. } => walk_expr(v, expr, child),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Assign { lhs, rhs, .. }
        | Expr::Comma { lhs, rhs } => {
            walk_expr(v, lhs, child);
            walk_expr(v, rhs, child);
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            walk_expr(v, cond, cx.condition());
            walk_expr(v, then_expr, child);
            walk_expr(v, else_expr, child);
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
            for a in args {
                walk_expr(v, a, child);
            }
        }
        Expr::Index { base, index } => {
            walk_expr(v, base, child);
            walk_expr(v, index, child);
        }
        Expr::Field { base, .. } | Expr::Swizzle { base, .. } => walk_expr(v, base, child),
    }
}

/// Extracts a literal loop bound from conditions of the shape `i < N` or
/// `i <= N` with `N` a literal.
pub fn extract_literal_bound(cond: &Expr) -> Option<i128> {
    if let Expr::Binary { op, rhs, .. } = cond {
        if matches!(op, BinOp::Lt | BinOp::Le) {
            if let Expr::IntLit { value, .. } = rhs.as_ref() {
                return Some(*value);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::MemFence;
    use crate::types::{ScalarType, Type};

    #[derive(Default)]
    struct Recorder {
        stmts: usize,
        exprs: usize,
        condition_roots: Vec<String>,
        barrier_in_loop: bool,
        bounds_at_while: Vec<Option<i128>>,
    }

    impl Visitor for Recorder {
        fn enter_stmt(&mut self, stmt: &Stmt, cx: &VisitCtx) {
            self.stmts += 1;
            match stmt {
                Stmt::Barrier(_) if cx.in_loop => self.barrier_in_loop = true,
                Stmt::While { .. } => self.bounds_at_while.push(cx.enclosing_for_bound),
                _ => {}
            }
        }

        fn enter_expr(&mut self, expr: &Expr, cx: &VisitCtx) {
            self.exprs += 1;
            if cx.in_condition {
                let label = match expr {
                    Expr::Binary { .. } => "binary".to_string(),
                    Expr::Var(name) => name.clone(),
                    _ => "other".to_string(),
                };
                self.condition_roots.push(label);
            }
        }
    }

    #[test]
    fn condition_flag_marks_only_roots() {
        let stmt = Stmt::if_then(
            Expr::binary(BinOp::Lt, Expr::var("x"), Expr::int(3)),
            Block::of(vec![Stmt::expr(Expr::cond(
                Expr::var("y"),
                Expr::int(1),
                Expr::int(2),
            ))]),
        );
        let mut rec = Recorder::default();
        walk_stmt(&mut rec, &stmt, VisitCtx::default());
        // Only the `if` condition root and the `?:` condition root carry the
        // flag, not their children.
        assert_eq!(rec.condition_roots, vec!["binary".to_string(), "y".into()]);
    }

    #[test]
    fn loop_context_and_for_bounds_propagate() {
        let stmt = Stmt::For {
            init: Some(Box::new(Stmt::decl(
                "i",
                Type::Scalar(ScalarType::Int),
                Some(Expr::int(0)),
            ))),
            cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(9))),
            update: None,
            body: Block::of(vec![
                Stmt::Barrier(MemFence::Local),
                Stmt::While {
                    cond: Expr::int(1),
                    body: Block::new(),
                },
            ]),
        };
        let mut rec = Recorder::default();
        walk_stmt(&mut rec, &stmt, VisitCtx::default());
        assert!(rec.barrier_in_loop);
        assert_eq!(rec.bounds_at_while, vec![Some(9)]);
    }

    #[test]
    fn walker_reaches_initializer_and_emi_expressions() {
        let block = Block::of(vec![
            Stmt::decl_init_list(
                "s",
                Type::Scalar(ScalarType::Int),
                Initializer::of_exprs(vec![Expr::int(1), Expr::int(2)]),
            ),
            Stmt::Emi(crate::stmt::EmiBlock {
                index: 0,
                guard: (3, 1),
                body: Block::of(vec![Stmt::expr(Expr::int(7))]),
            }),
        ]);
        let mut rec = Recorder::default();
        walk_block(&mut rec, &block, VisitCtx::default());
        // decl + emi + inner expr statement; exprs: 1, 2, 7.
        assert_eq!(rec.stmts, 3);
        assert_eq!(rec.exprs, 3);
    }

    #[test]
    fn literal_bound_extraction() {
        let lt = Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(12));
        let le = Expr::binary(BinOp::Le, Expr::var("i"), Expr::int(4));
        let ne = Expr::binary(BinOp::Ne, Expr::var("i"), Expr::int(4));
        assert_eq!(extract_literal_bound(&lt), Some(12));
        assert_eq!(extract_literal_bound(&le), Some(4));
        assert_eq!(extract_literal_bound(&ne), None);
    }
}
