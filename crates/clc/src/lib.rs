//! # clc — the OpenCL C subset used by the CLsmith reproduction
//!
//! This crate defines the abstract syntax, type system, pretty printer,
//! static feature analysis and type checker for the OpenCL C subset that the
//! PLDI 2015 paper *Many-Core Compiler Fuzzing* exercises: integer scalars,
//! OpenCL vectors, structs/unions, pointers across the four OpenCL address
//! spaces, barriers, and atomic read-modify-write operations.
//!
//! Everything downstream builds on these types:
//!
//! * the `clsmith` crate generates random [`Program`]s,
//! * the `clc-interp` crate executes them over an NDRange,
//! * the `opencl-sim` crate transforms them with optimisation passes and
//!   injected miscompilation bug models,
//! * the `fuzz-harness` crate compares the results.
//!
//! # Example
//!
//! Build and print a tiny kernel reminiscent of Figure 1(a) of the paper:
//!
//! ```
//! use clc::{
//!     Expr, Field, KernelDef, LaunchConfig, Program, ScalarType, Stmt, StructDef, Type,
//! };
//!
//! let mut program = Program::new(
//!     KernelDef {
//!         name: "k".into(),
//!         params: Program::standard_clsmith_params(0),
//!         body: clc::Block::new(),
//!     },
//!     LaunchConfig::single_group(4),
//! );
//! let s = program.add_struct(StructDef::new(
//!     "S",
//!     vec![
//!         Field::new("a", Type::Scalar(ScalarType::Char)),
//!         Field::new("b", Type::Scalar(ScalarType::Short)),
//!     ],
//! ));
//! program.kernel.body.push(Stmt::decl_init_list(
//!     "s",
//!     Type::Struct(s),
//!     clc::Initializer::of_exprs(vec![Expr::int(1), Expr::int(1)]),
//! ));
//! let source = clc::print_program(&program);
//! assert!(source.contains("struct S"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod expr;
pub mod fingerprint;
pub mod printer;
pub mod program;
pub mod stmt;
pub mod typecheck;
pub mod types;
pub mod visit;

pub use analysis::Features;
pub use expr::{AssignOp, BinOp, Builtin, Dim, Expr, IdKind, UnOp};
pub use fingerprint::{Fingerprint, ProgramHasher};
pub use printer::{print_expr, print_program, print_stmt};
pub use program::{BufferInit, BufferSpec, FunctionDef, KernelDef, LaunchConfig, Param, Program};
pub use stmt::{Block, EmiBlock, Initializer, MemFence, Stmt};
pub use typecheck::{check_program, type_of_expr_in_kernel, TypeError};
pub use types::{AddressSpace, Field, ScalarType, StructDef, StructId, Type, VectorWidth};
pub use visit::{walk_block, walk_expr, walk_stmt, VisitCtx, Visitor};
