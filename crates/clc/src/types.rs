//! The OpenCL C type system subset used by CLsmith-generated kernels.
//!
//! The paper (§3.1) restricts generation to integer scalar types, the OpenCL
//! vector types of widths 2/4/8/16, structs and unions, fixed-size arrays and
//! pointers qualified by one of the four OpenCL address spaces.  Floating
//! point is deliberately excluded (§9 of the paper).

use std::fmt;

/// An OpenCL C integer scalar type.
///
/// OpenCL mandates exact widths and two's complement representation (§3.1 of
/// the paper), so each variant has a fixed bit width.
///
/// ```
/// use clc::ScalarType;
/// assert_eq!(ScalarType::Int.bits(), 32);
/// assert!(ScalarType::Int.is_signed());
/// assert_eq!(ScalarType::Int.to_unsigned(), ScalarType::UInt);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// 8-bit signed integer.
    Char,
    /// 8-bit unsigned integer.
    UChar,
    /// 16-bit signed integer.
    Short,
    /// 16-bit unsigned integer.
    UShort,
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    UInt,
    /// 64-bit signed integer.
    Long,
    /// 64-bit unsigned integer.
    ULong,
}

impl ScalarType {
    /// All scalar types, smallest first.
    pub const ALL: [ScalarType; 8] = [
        ScalarType::Char,
        ScalarType::UChar,
        ScalarType::Short,
        ScalarType::UShort,
        ScalarType::Int,
        ScalarType::UInt,
        ScalarType::Long,
        ScalarType::ULong,
    ];

    /// Bit width of the type.
    pub fn bits(self) -> u32 {
        match self {
            ScalarType::Char | ScalarType::UChar => 8,
            ScalarType::Short | ScalarType::UShort => 16,
            ScalarType::Int | ScalarType::UInt => 32,
            ScalarType::Long | ScalarType::ULong => 64,
        }
    }

    /// Whether the type is signed.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarType::Char | ScalarType::Short | ScalarType::Int | ScalarType::Long
        )
    }

    /// The unsigned type of the same width.
    pub fn to_unsigned(self) -> ScalarType {
        match self {
            ScalarType::Char | ScalarType::UChar => ScalarType::UChar,
            ScalarType::Short | ScalarType::UShort => ScalarType::UShort,
            ScalarType::Int | ScalarType::UInt => ScalarType::UInt,
            ScalarType::Long | ScalarType::ULong => ScalarType::ULong,
        }
    }

    /// The signed type of the same width.
    pub fn to_signed(self) -> ScalarType {
        match self {
            ScalarType::Char | ScalarType::UChar => ScalarType::Char,
            ScalarType::Short | ScalarType::UShort => ScalarType::Short,
            ScalarType::Int | ScalarType::UInt => ScalarType::Int,
            ScalarType::Long | ScalarType::ULong => ScalarType::Long,
        }
    }

    /// The OpenCL C spelling of the type.
    pub fn name(self) -> &'static str {
        match self {
            ScalarType::Char => "char",
            ScalarType::UChar => "uchar",
            ScalarType::Short => "short",
            ScalarType::UShort => "ushort",
            ScalarType::Int => "int",
            ScalarType::UInt => "uint",
            ScalarType::Long => "long",
            ScalarType::ULong => "ulong",
        }
    }

    /// Minimum representable value.
    pub fn min_value(self) -> i128 {
        if self.is_signed() {
            -(1i128 << (self.bits() - 1))
        } else {
            0
        }
    }

    /// Maximum representable value.
    pub fn max_value(self) -> i128 {
        if self.is_signed() {
            (1i128 << (self.bits() - 1)) - 1
        } else {
            (1i128 << self.bits()) - 1
        }
    }

    /// The type produced by C's "usual arithmetic conversions" when combining
    /// two operands of these types (integer promotion to at least `int`, then
    /// the larger / unsigned-preferring rank).
    pub fn usual_arithmetic_conversion(self, other: ScalarType) -> ScalarType {
        let a = self.promoted();
        let b = other.promoted();
        if a == b {
            return a;
        }
        let (wide, narrow) = if a.bits() >= b.bits() { (a, b) } else { (b, a) };
        if wide.bits() > narrow.bits() {
            // Same signedness rank rules collapse to: wider type wins; if the
            // wider type is signed but cannot represent the unsigned narrower
            // type's range it still wins because bits() differ (C99 6.3.1.8).
            if !narrow.is_signed() && wide.is_signed() && wide.bits() == narrow.bits() {
                wide.to_unsigned()
            } else {
                wide
            }
        } else {
            // Same width, differing signedness: unsigned wins.
            wide.to_unsigned()
        }
    }

    /// Integer promotion: anything narrower than `int` becomes `int`.
    pub fn promoted(self) -> ScalarType {
        if self.bits() < 32 {
            ScalarType::Int
        } else {
            self
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Width of an OpenCL vector type (§3.1: lengths 2, 4, 8 and 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VectorWidth {
    /// Two lanes (`int2`, ...).
    W2,
    /// Four lanes.
    W4,
    /// Eight lanes.
    W8,
    /// Sixteen lanes.
    W16,
}

impl VectorWidth {
    /// All supported widths.
    pub const ALL: [VectorWidth; 4] = [
        VectorWidth::W2,
        VectorWidth::W4,
        VectorWidth::W8,
        VectorWidth::W16,
    ];

    /// Number of lanes.
    pub fn lanes(self) -> usize {
        match self {
            VectorWidth::W2 => 2,
            VectorWidth::W4 => 4,
            VectorWidth::W8 => 8,
            VectorWidth::W16 => 16,
        }
    }

    /// The width with the given lane count, if supported.
    pub fn from_lanes(lanes: usize) -> Option<VectorWidth> {
        match lanes {
            2 => Some(VectorWidth::W2),
            4 => Some(VectorWidth::W4),
            8 => Some(VectorWidth::W8),
            16 => Some(VectorWidth::W16),
            _ => None,
        }
    }
}

impl fmt::Display for VectorWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// One of the four OpenCL memory spaces (§3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressSpace {
    /// Per-work-item memory (the default for locals).
    #[default]
    Private,
    /// Per-work-group shared memory.
    Local,
    /// Device-wide shared memory.
    Global,
    /// Device-wide read-only memory.
    Constant,
}

impl AddressSpace {
    /// The OpenCL C qualifier keyword, or the empty string for `private`.
    pub fn qualifier(self) -> &'static str {
        match self {
            AddressSpace::Private => "",
            AddressSpace::Local => "local",
            AddressSpace::Global => "global",
            AddressSpace::Constant => "constant",
        }
    }

    /// Whether the space is shared between work-items (local or global).
    ///
    /// The paper calls a location "in shared memory" when it is in either of
    /// these spaces (§3.1).
    pub fn is_shared(self) -> bool {
        matches!(self, AddressSpace::Local | AddressSpace::Global)
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.qualifier();
        f.write_str(if q.is_empty() { "private" } else { q })
    }
}

/// Index of a struct (or union) definition within a [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub usize);

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A field of a struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Whether the field is declared `volatile`.
    pub volatile: bool,
}

impl Field {
    /// Creates a non-volatile field.
    pub fn new(name: impl Into<String>, ty: Type) -> Field {
        Field {
            name: name.into(),
            ty,
            volatile: false,
        }
    }

    /// Creates a `volatile` field.
    pub fn volatile(name: impl Into<String>, ty: Type) -> Field {
        Field {
            name: name.into(),
            ty,
            volatile: true,
        }
    }
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructDef {
    /// Type name as emitted in OpenCL C (`struct S0` / typedef name).
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
    /// `true` for a union (fields overlap), `false` for a struct.
    pub is_union: bool,
}

impl StructDef {
    /// Creates a struct definition.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> StructDef {
        StructDef {
            name: name.into(),
            fields,
            is_union: false,
        }
    }

    /// Creates a union definition.
    pub fn union(name: impl Into<String>, fields: Vec<Field>) -> StructDef {
        StructDef {
            name: name.into(),
            fields,
            is_union: true,
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// An OpenCL C type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Integer scalar.
    Scalar(ScalarType),
    /// Integer vector (`int4`, `uchar16`, ...).
    Vector(ScalarType, VectorWidth),
    /// Struct or union, by definition index.
    Struct(StructId),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// Pointer into a given address space.
    Pointer(Box<Type>, AddressSpace),
}

impl Type {
    /// Shorthand for a scalar type.
    pub fn scalar(ty: ScalarType) -> Type {
        Type::Scalar(ty)
    }

    /// Shorthand for a vector type.
    pub fn vector(elem: ScalarType, width: VectorWidth) -> Type {
        Type::Vector(elem, width)
    }

    /// Shorthand for a pointer to `self` in `space`.
    pub fn pointer_to(self, space: AddressSpace) -> Type {
        Type::Pointer(Box::new(self), space)
    }

    /// Shorthand for an array of `len` elements of `self`.
    pub fn array_of(self, len: usize) -> Type {
        Type::Array(Box::new(self), len)
    }

    /// Whether this is a scalar integer type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// Whether this is a vector type.
    pub fn is_vector(&self) -> bool {
        matches!(self, Type::Vector(..))
    }

    /// Whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(..))
    }

    /// Whether this is a struct or union type.
    pub fn is_struct(&self) -> bool {
        matches!(self, Type::Struct(_))
    }

    /// Whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..))
    }

    /// The scalar type of a scalar, or the element type of a vector.
    pub fn scalar_elem(&self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(*s),
            Type::Vector(s, _) => Some(*s),
            _ => None,
        }
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Pointer(inner, _) => Some(inner),
            _ => None,
        }
    }

    /// The element type of an array type.
    pub fn array_elem(&self) -> Option<&Type> {
        match self {
            Type::Array(inner, _) => Some(inner),
            _ => None,
        }
    }

    /// Number of scalar "cells" occupied by a value of this type.
    ///
    /// The interpreter's memory model is cell based rather than byte based;
    /// unions occupy the cell count of their widest member.  Pointers occupy
    /// one cell.
    pub fn cell_count(&self, structs: &[StructDef]) -> usize {
        match self {
            Type::Scalar(_) | Type::Pointer(..) => 1,
            Type::Vector(_, w) => w.lanes(),
            Type::Array(elem, len) => elem.cell_count(structs) * len,
            Type::Struct(id) => {
                let def = &structs[id.0];
                if def.is_union {
                    def.fields
                        .iter()
                        .map(|f| f.ty.cell_count(structs))
                        .max()
                        .unwrap_or(0)
                } else {
                    def.fields.iter().map(|f| f.ty.cell_count(structs)).sum()
                }
            }
        }
    }

    /// Cell offset of field `name` inside a struct of this type.
    ///
    /// Unions always have offset zero.  Returns `None` if this is not a
    /// struct type or the field does not exist.
    pub fn field_offset(&self, name: &str, structs: &[StructDef]) -> Option<usize> {
        let Type::Struct(id) = self else { return None };
        let def = &structs[id.0];
        if def.is_union {
            def.field(name).map(|_| 0)
        } else {
            let mut offset = 0;
            for f in &def.fields {
                if f.name == name {
                    return Some(offset);
                }
                offset += f.ty.cell_count(structs);
            }
            None
        }
    }

    /// Renders the type as OpenCL C (without address-space qualifier).
    pub fn render(&self, structs: &[StructDef]) -> String {
        match self {
            Type::Scalar(s) => s.name().to_string(),
            Type::Vector(s, w) => format!("{}{}", s.name(), w.lanes()),
            Type::Struct(id) => format!("struct {}", structs[id.0].name),
            Type::Array(elem, len) => format!("{}[{}]", elem.render(structs), len),
            Type::Pointer(inner, space) => {
                let q = space.qualifier();
                if q.is_empty() {
                    format!("{}*", inner.render(structs))
                } else {
                    format!("{} {}*", q, inner.render(structs))
                }
            }
        }
    }
}

impl From<ScalarType> for Type {
    fn from(value: ScalarType) -> Self {
        Type::Scalar(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_widths_and_signs() {
        assert_eq!(ScalarType::Char.bits(), 8);
        assert_eq!(ScalarType::ULong.bits(), 64);
        assert!(ScalarType::Long.is_signed());
        assert!(!ScalarType::UShort.is_signed());
        for ty in ScalarType::ALL {
            assert_eq!(ty.to_unsigned().bits(), ty.bits());
            assert!(!ty.to_unsigned().is_signed());
            assert!(ty.to_signed().is_signed());
        }
    }

    #[test]
    fn scalar_ranges() {
        assert_eq!(ScalarType::Char.min_value(), -128);
        assert_eq!(ScalarType::Char.max_value(), 127);
        assert_eq!(ScalarType::UChar.max_value(), 255);
        assert_eq!(ScalarType::UInt.max_value(), u32::MAX as i128);
        assert_eq!(ScalarType::Long.min_value(), i64::MIN as i128);
        assert_eq!(ScalarType::ULong.max_value(), u64::MAX as i128);
    }

    #[test]
    fn usual_arithmetic_conversions() {
        use ScalarType::*;
        // Narrow types promote to int.
        assert_eq!(Char.usual_arithmetic_conversion(Short), Int);
        assert_eq!(UChar.usual_arithmetic_conversion(UShort), Int);
        // Same width, mixed signedness: unsigned wins.
        assert_eq!(Int.usual_arithmetic_conversion(UInt), UInt);
        assert_eq!(Long.usual_arithmetic_conversion(ULong), ULong);
        // Wider type wins.
        assert_eq!(Int.usual_arithmetic_conversion(Long), Long);
        assert_eq!(UInt.usual_arithmetic_conversion(Long), Long);
        assert_eq!(UInt.usual_arithmetic_conversion(ULong), ULong);
    }

    #[test]
    fn vector_widths() {
        assert_eq!(VectorWidth::W2.lanes(), 2);
        assert_eq!(VectorWidth::from_lanes(16), Some(VectorWidth::W16));
        assert_eq!(VectorWidth::from_lanes(3), None);
    }

    #[test]
    fn address_space_qualifiers() {
        assert_eq!(AddressSpace::Private.qualifier(), "");
        assert_eq!(AddressSpace::Global.qualifier(), "global");
        assert!(AddressSpace::Local.is_shared());
        assert!(!AddressSpace::Constant.is_shared());
    }

    fn sample_structs() -> Vec<StructDef> {
        vec![
            StructDef::new(
                "S0",
                vec![
                    Field::new("a", Type::Scalar(ScalarType::Char)),
                    Field::new("b", Type::Scalar(ScalarType::Short)),
                    Field::new("arr", Type::Scalar(ScalarType::Int).array_of(4)),
                ],
            ),
            StructDef::union(
                "U0",
                vec![
                    Field::new("x", Type::Scalar(ScalarType::UInt)),
                    Field::new("s", Type::Struct(StructId(0))),
                ],
            ),
        ]
    }

    #[test]
    fn cell_counts() {
        let structs = sample_structs();
        assert_eq!(Type::Scalar(ScalarType::Int).cell_count(&structs), 1);
        assert_eq!(
            Type::Vector(ScalarType::Int, VectorWidth::W8).cell_count(&structs),
            8
        );
        // struct S0 = 1 + 1 + 4 cells
        assert_eq!(Type::Struct(StructId(0)).cell_count(&structs), 6);
        // union U0 = max(1, 6)
        assert_eq!(Type::Struct(StructId(1)).cell_count(&structs), 6);
        assert_eq!(
            Type::Struct(StructId(0)).array_of(3).cell_count(&structs),
            18
        );
        assert_eq!(
            Type::Scalar(ScalarType::Int)
                .pointer_to(AddressSpace::Global)
                .cell_count(&structs),
            1
        );
    }

    #[test]
    fn field_offsets() {
        let structs = sample_structs();
        let s0 = Type::Struct(StructId(0));
        assert_eq!(s0.field_offset("a", &structs), Some(0));
        assert_eq!(s0.field_offset("b", &structs), Some(1));
        assert_eq!(s0.field_offset("arr", &structs), Some(2));
        assert_eq!(s0.field_offset("nope", &structs), None);
        let u0 = Type::Struct(StructId(1));
        assert_eq!(u0.field_offset("s", &structs), Some(0));
        assert_eq!(u0.field_offset("x", &structs), Some(0));
    }

    #[test]
    fn rendering() {
        let structs = sample_structs();
        assert_eq!(Type::Scalar(ScalarType::UInt).render(&structs), "uint");
        assert_eq!(
            Type::Vector(ScalarType::Int, VectorWidth::W4).render(&structs),
            "int4"
        );
        assert_eq!(Type::Struct(StructId(0)).render(&structs), "struct S0");
        assert_eq!(
            Type::Scalar(ScalarType::ULong)
                .pointer_to(AddressSpace::Global)
                .render(&structs),
            "global ulong*"
        );
    }
}
