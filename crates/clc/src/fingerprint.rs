//! Structural program fingerprints with reusable hasher state.
//!
//! Differential execution fans one kernel out over dozens of
//! (configuration, optimisation level) targets, and most of those targets
//! end up compiling the program to a bit-identical AST.  Detecting that
//! cheaply requires two things from the hash layer:
//!
//! 1. a **fingerprint** — a single-pass structural hash of a [`Program`]
//!    that distinguishes any observable difference (literals, struct
//!    layout, launch geometry, buffer setup, ...), used as the key of
//!    compiled-kernel and outcome caches; and
//! 2. **reusable hasher state** — the simulated platform derives its
//!    deterministic background-outcome rolls from
//!    `hash(program, config, opt, salt)`.  Hashing the program prefix once
//!    and cloning the hasher for every `(config, opt, salt)` suffix keeps
//!    those rolls *bit-identical* to hashing the whole tuple from scratch
//!    (Rust tuples hash their fields in order into one hasher), while
//!    paying the full AST traversal exactly once per kernel instead of
//!    once per roll.
//!
//! The hasher is [`DefaultHasher`] with its default (fixed) keys, the same
//! hasher the platform has always used, so every historical table and
//! campaign result is preserved.

use crate::program::Program;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A structural fingerprint of a [`Program`].
///
/// Equal fingerprints identify structurally identical programs (up to the
/// negligible 64-bit collision probability); any semantic difference —
/// a changed literal, a reordered struct field, a different launch
/// configuration — produces a different fingerprint with overwhelming
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hasher state seeded with one full pass over a [`Program`], cloneable per
/// suffix.
///
/// Constructing a `ProgramHasher` walks the AST once.  Every subsequent
/// [`ProgramHasher::chain`] clones the small internal hasher state and hashes
/// only the suffix, producing exactly the value that
/// `hash(&(program, suffix...))` would — without re-walking the AST.
#[derive(Debug, Clone)]
pub struct ProgramHasher {
    state: DefaultHasher,
}

impl ProgramHasher {
    /// Hashes `program` once and captures the hasher state.
    pub fn new(program: &Program) -> ProgramHasher {
        let mut state = DefaultHasher::new();
        program.hash(&mut state);
        ProgramHasher { state }
    }

    /// The program's structural fingerprint (no suffix).
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint(self.state.clone().finish())
    }

    /// Hashes `suffix` on top of the captured program state.
    ///
    /// Bit-identical to hashing the flattened tuple
    /// `(program, suffix fields...)` into a fresh [`DefaultHasher`], because
    /// tuple hashing feeds each field into the same hasher in order.
    pub fn chain<T: Hash>(&self, suffix: &T) -> u64 {
        let mut state = self.state.clone();
        suffix.hash(&mut state);
        state.finish()
    }
}

impl Program {
    /// The program's structural fingerprint: a single-pass hash over the
    /// whole AST, launch geometry and buffer setup.  See [`Fingerprint`].
    pub fn fingerprint(&self) -> Fingerprint {
        ProgramHasher::new(self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, IdKind};
    use crate::program::{BufferSpec, KernelDef, LaunchConfig};
    use crate::stmt::{Block, Stmt};
    use crate::types::{Field, ScalarType, StructDef, Type};

    fn program(value: i64) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(vec![Stmt::assign(
                    Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                    Expr::int(value),
                )]),
            },
            LaunchConfig::single_group(4),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));
        p
    }

    #[test]
    fn fingerprint_is_stable_across_clones_and_calls() {
        let p = program(7);
        assert_eq!(p.fingerprint(), p.fingerprint());
        assert_eq!(p.fingerprint(), p.clone().fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_literal_only_differences() {
        // The exact bug class the caches must never conflate: two kernels
        // identical except for one literal (e.g. a PerturbLiteral
        // miscompilation).
        assert_ne!(program(7).fingerprint(), program(8).fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_struct_layout_differences() {
        let base = program(1);
        let mut reordered = base.clone();
        let mut swapped = base.clone();
        reordered.add_struct(StructDef::new(
            "S",
            vec![
                Field::new("a", Type::Scalar(ScalarType::Char)),
                Field::new("b", Type::Scalar(ScalarType::Long)),
            ],
        ));
        swapped.add_struct(StructDef::new(
            "S",
            vec![
                Field::new("b", Type::Scalar(ScalarType::Long)),
                Field::new("a", Type::Scalar(ScalarType::Char)),
            ],
        ));
        assert_ne!(base.fingerprint(), reordered.fingerprint());
        assert_ne!(reordered.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_launch_config_differences() {
        let base = program(1);
        let mut regrouped = base.clone();
        regrouped.launch = LaunchConfig::new([4, 1, 1], [2, 1, 1]).unwrap();
        assert_ne!(base.fingerprint(), regrouped.fingerprint());
    }

    #[test]
    fn chained_suffix_matches_whole_tuple_hash() {
        // The property `platform::chance` depends on: prefix-captured state
        // plus a chained suffix equals hashing the flat tuple from scratch.
        let p = program(3);
        let hasher = ProgramHasher::new(&p);
        for (config_id, opt, salt) in [(1usize, 0u8, "bf"), (19, 1, "wc"), (7, 0, "perturb")] {
            let chained = hasher.chain(&(config_id, opt, salt));
            let mut whole = DefaultHasher::new();
            (&p, config_id, opt, salt).hash(&mut whole);
            assert_eq!(chained, whole.finish());
        }
    }
}
