//! Expressions of the OpenCL C subset.
//!
//! Expressions never contain barriers, so the interpreter evaluates them
//! atomically; statements (see [`crate::stmt`]) are the resumption points.

use crate::types::{ScalarType, Type, VectorWidth};
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    LNot,
    /// Bitwise not `~x`.
    BitNot,
}

impl UnOp {
    /// The OpenCL C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::LNot => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl BinOp {
    /// All binary operators.
    pub const ALL: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::LAnd,
        BinOp::LOr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Gt,
        BinOp::Le,
        BinOp::Ge,
    ];

    /// The OpenCL C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
        }
    }

    /// Whether the operator yields a boolean-ish `int` result (comparisons
    /// and logical connectives).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }

    /// Whether the operator is `&&` or `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }

    /// Whether the operator is a shift.
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::Shr)
    }

    /// Whether the operator can exhibit undefined behaviour on signed
    /// operands (overflow, divide by zero, oversized shift) and therefore
    /// must be wrapped in a safe-math builtin by the generator.
    pub fn needs_safe_wrapper(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Sub
                | BinOp::Mul
                | BinOp::Div
                | BinOp::Mod
                | BinOp::Shl
                | BinOp::Shr
        )
    }
}

/// Compound assignment operators (`=`, `+=`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=` (wrapping)
    AddAssign,
    /// `-=` (wrapping)
    SubAssign,
    /// `*=` (wrapping)
    MulAssign,
    /// `&=`
    AndAssign,
    /// `|=`
    OrAssign,
    /// `^=`
    XorAssign,
}

impl AssignOp {
    /// The OpenCL C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::AndAssign => "&=",
            AssignOp::OrAssign => "|=",
            AssignOp::XorAssign => "^=",
        }
    }

    /// The underlying binary operator for a compound assignment.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::AndAssign => Some(BinOp::BitAnd),
            AssignOp::OrAssign => Some(BinOp::BitOr),
            AssignOp::XorAssign => Some(BinOp::BitXor),
        }
    }
}

/// A dimension of the 3D NDRange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// x / dimension 0
    X,
    /// y / dimension 1
    Y,
    /// z / dimension 2
    Z,
}

impl Dim {
    /// All dimensions.
    pub const ALL: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

    /// The numeric index used by `get_global_id(n)` etc.
    pub fn index(self) -> usize {
        match self {
            Dim::X => 0,
            Dim::Y => 1,
            Dim::Z => 2,
        }
    }
}

/// Work-item identity queries (`get_global_id` and friends, plus the
/// linearised forms the paper defines in §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdKind {
    /// `get_global_id(dim)` — the paper's `t_i`.
    GlobalId(Dim),
    /// `get_local_id(dim)` — the paper's `l_i`.
    LocalId(Dim),
    /// `get_group_id(dim)` — the paper's `g_i`.
    GroupId(Dim),
    /// `get_global_size(dim)` — `N_i`.
    GlobalSize(Dim),
    /// `get_local_size(dim)` — `W_i`.
    LocalSize(Dim),
    /// `get_num_groups(dim)`.
    NumGroups(Dim),
    /// `t_linear = (t_z*N_y + t_y)*N_x + t_x`.
    GlobalLinearId,
    /// `l_linear`.
    LocalLinearId,
    /// `g_linear`.
    GroupLinearId,
    /// `W_linear = W_x*W_y*W_z`.
    LinearGroupSize,
    /// `N_linear = N_x*N_y*N_z`.
    LinearGlobalSize,
}

impl IdKind {
    /// Whether the query depends on the identity of the executing work-item
    /// (as opposed to launch-uniform sizes).  The generator must never place
    /// identity-dependent queries where they could cause divergent control
    /// flow around barriers (§4.2, "Avoiding barrier divergence").
    pub fn is_identity_dependent(self) -> bool {
        !matches!(
            self,
            IdKind::GlobalSize(_)
                | IdKind::LocalSize(_)
                | IdKind::NumGroups(_)
                | IdKind::LinearGroupSize
                | IdKind::LinearGlobalSize
        )
    }
}

/// Built-in functions: the CLsmith safe-math wrappers (§4.1), the OpenCL
/// vector built-ins discussed in §3.1, and the atomic operations of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `safe_add(a, b)` — wrapping addition.
    SafeAdd,
    /// `safe_sub(a, b)` — wrapping subtraction.
    SafeSub,
    /// `safe_mul(a, b)` — wrapping multiplication.
    SafeMul,
    /// `safe_div(a, b)` — division guarded against zero and overflow.
    SafeDiv,
    /// `safe_mod(a, b)` — remainder guarded against zero and overflow.
    SafeMod,
    /// `safe_lshift(a, b)` — shift guarded against oversized shift amounts.
    SafeLshift,
    /// `safe_rshift(a, b)`.
    SafeRshift,
    /// `safe_unary_minus(a)` — negation guarded against `INT_MIN`.
    SafeUnaryMinus,
    /// `clamp(x, lo, hi)` (raw OpenCL builtin; UB when `lo > hi`).
    Clamp,
    /// `safe_clamp(x, lo, hi)` = `(lo > hi ? x : clamp(x, lo, hi))` (§4.1).
    SafeClamp,
    /// `rotate(x, y)` — bitwise left-rotate, per-component on vectors.
    Rotate,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `abs(a)` — returns the unsigned type.
    Abs,
    /// `atomic_inc(p)`.
    AtomicInc,
    /// `atomic_dec(p)`.
    AtomicDec,
    /// `atomic_add(p, v)`.
    AtomicAdd,
    /// `atomic_sub(p, v)`.
    AtomicSub,
    /// `atomic_min(p, v)`.
    AtomicMin,
    /// `atomic_max(p, v)`.
    AtomicMax,
    /// `atomic_and(p, v)`.
    AtomicAnd,
    /// `atomic_or(p, v)`.
    AtomicOr,
    /// `atomic_xor(p, v)`.
    AtomicXor,
    /// `atomic_xchg(p, v)`.
    AtomicXchg,
    /// `atomic_cmpxchg(p, cmp, v)`.
    AtomicCmpxchg,
}

impl Builtin {
    /// The name emitted in OpenCL C source.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::SafeAdd => "safe_add",
            Builtin::SafeSub => "safe_sub",
            Builtin::SafeMul => "safe_mul",
            Builtin::SafeDiv => "safe_div",
            Builtin::SafeMod => "safe_mod",
            Builtin::SafeLshift => "safe_lshift",
            Builtin::SafeRshift => "safe_rshift",
            Builtin::SafeUnaryMinus => "safe_unary_minus",
            Builtin::Clamp => "clamp",
            Builtin::SafeClamp => "safe_clamp",
            Builtin::Rotate => "rotate",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Abs => "abs",
            Builtin::AtomicInc => "atomic_inc",
            Builtin::AtomicDec => "atomic_dec",
            Builtin::AtomicAdd => "atomic_add",
            Builtin::AtomicSub => "atomic_sub",
            Builtin::AtomicMin => "atomic_min",
            Builtin::AtomicMax => "atomic_max",
            Builtin::AtomicAnd => "atomic_and",
            Builtin::AtomicOr => "atomic_or",
            Builtin::AtomicXor => "atomic_xor",
            Builtin::AtomicXchg => "atomic_xchg",
            Builtin::AtomicCmpxchg => "atomic_cmpxchg",
        }
    }

    /// Whether this is a read-modify-write atomic operation.
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            Builtin::AtomicInc
                | Builtin::AtomicDec
                | Builtin::AtomicAdd
                | Builtin::AtomicSub
                | Builtin::AtomicMin
                | Builtin::AtomicMax
                | Builtin::AtomicAnd
                | Builtin::AtomicOr
                | Builtin::AtomicXor
                | Builtin::AtomicXchg
                | Builtin::AtomicCmpxchg
        )
    }

    /// Expected argument count.
    pub fn arity(self) -> usize {
        match self {
            Builtin::SafeUnaryMinus | Builtin::Abs | Builtin::AtomicInc | Builtin::AtomicDec => 1,
            Builtin::Clamp | Builtin::SafeClamp | Builtin::AtomicCmpxchg => 3,
            _ => 2,
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal of a given scalar type.
    IntLit {
        /// Value (interpreted according to `ty`).
        value: i128,
        /// Literal type.
        ty: ScalarType,
    },
    /// Vector literal `(int4)(a, b, c, d)`; element expressions may
    /// themselves be narrower vectors, as in `(int4)((int2)(1, 1), 1, 1)`.
    VectorLit {
        /// Element scalar type.
        elem: ScalarType,
        /// Vector width.
        width: VectorWidth,
        /// Component expressions (scalars or narrower vectors).
        parts: Vec<Expr>,
    },
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment (also usable as an expression, as in C).
    Assign {
        /// Operator (`=`, `+=`, ...).
        op: AssignOp,
        /// Assignable target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// Ternary conditional `c ? a : b`.
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_expr: Box<Expr>,
        /// Value when the condition is zero.
        else_expr: Box<Expr>,
    },
    /// Comma operator `a, b` (evaluates both, yields `b`).
    ///
    /// Included explicitly because mis-handling of the comma operator is one
    /// of the Oclgrind bugs the paper reports (Figure 2(f)).
    Comma {
        /// Discarded operand.
        lhs: Box<Expr>,
        /// Result operand.
        rhs: Box<Expr>,
    },
    /// Call to a user-defined function.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Call to a built-in function.
    BuiltinCall {
        /// Which builtin.
        func: Builtin,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Work-item identity / size query.
    IdQuery(IdKind),
    /// Array or pointer indexing `base[index]`.
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Struct field access `base.field` or `base->field`.
    Field {
        /// Struct (or pointer-to-struct) expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`, `false` for `.`.
        arrow: bool,
    },
    /// Pointer dereference `*p`.
    Deref(Box<Expr>),
    /// Address-of `&lv`.
    AddrOf(Box<Expr>),
    /// Cast `(ty)expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Vector component access / swizzle such as `.x`, `.s3`, `.xy`.
    Swizzle {
        /// Vector expression.
        base: Box<Expr>,
        /// Selected lane indices (1, 2, 4, 8 or 16 of them).
        lanes: Vec<u8>,
    },
}

impl Expr {
    /// An `int` literal.
    pub fn int(value: i64) -> Expr {
        Expr::IntLit {
            value: value as i128,
            ty: ScalarType::Int,
        }
    }

    /// A literal of a specific scalar type.
    pub fn lit(value: i128, ty: ScalarType) -> Expr {
        Expr::IntLit { value, ty }
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// A unary operation.
    pub fn unary(op: UnOp, expr: Expr) -> Expr {
        Expr::Unary {
            op,
            expr: Box::new(expr),
        }
    }

    /// A simple assignment `lhs = rhs`.
    pub fn assign(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Assign {
            op: AssignOp::Assign,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// A compound assignment.
    pub fn assign_op(op: AssignOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Indexing `base[index]`.
    pub fn index(base: Expr, index: Expr) -> Expr {
        Expr::Index {
            base: Box::new(base),
            index: Box::new(index),
        }
    }

    /// Field access `base.field`.
    pub fn field(base: Expr, field: impl Into<String>) -> Expr {
        Expr::Field {
            base: Box::new(base),
            field: field.into(),
            arrow: false,
        }
    }

    /// Field access through a pointer, `base->field`.
    pub fn arrow(base: Expr, field: impl Into<String>) -> Expr {
        Expr::Field {
            base: Box::new(base),
            field: field.into(),
            arrow: true,
        }
    }

    /// Dereference `*p`.
    pub fn deref(expr: Expr) -> Expr {
        Expr::Deref(Box::new(expr))
    }

    /// Address-of `&lv`.
    pub fn addr_of(expr: Expr) -> Expr {
        Expr::AddrOf(Box::new(expr))
    }

    /// Cast to a type.
    pub fn cast(ty: Type, expr: Expr) -> Expr {
        Expr::Cast {
            ty,
            expr: Box::new(expr),
        }
    }

    /// Call to a user function.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Call to a builtin.
    pub fn builtin(func: Builtin, args: Vec<Expr>) -> Expr {
        Expr::BuiltinCall { func, args }
    }

    /// Ternary conditional.
    pub fn cond(cond: Expr, then_expr: Expr, else_expr: Expr) -> Expr {
        Expr::Cond {
            cond: Box::new(cond),
            then_expr: Box::new(then_expr),
            else_expr: Box::new(else_expr),
        }
    }

    /// Comma expression.
    pub fn comma(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Comma {
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Swizzle with a single lane (`.x`, `.y`, ...).
    pub fn lane(base: Expr, lane: u8) -> Expr {
        Expr::Swizzle {
            base: Box::new(base),
            lanes: vec![lane],
        }
    }

    /// Whether this expression is a syntactically valid assignment target.
    pub fn is_lvalue(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::Deref(_) => true,
            Expr::Index { base, .. } => base.is_lvalue() || base.is_pointer_like(),
            Expr::Field { base, arrow, .. } => *arrow || base.is_lvalue(),
            Expr::Swizzle { base, .. } => base.is_lvalue(),
            _ => false,
        }
    }

    fn is_pointer_like(&self) -> bool {
        matches!(
            self,
            Expr::Var(_) | Expr::Field { .. } | Expr::Index { .. } | Expr::Deref(_)
        )
    }

    /// Number of AST nodes in the expression (used for size accounting and
    /// by the EMI pruning and reduction machinery).
    pub fn node_count(&self) -> usize {
        let mut count = 0usize;
        self.for_each(&mut |_| count += 1);
        count
    }

    /// Calls `f` on this node and every sub-expression, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::IntLit { .. } | Expr::Var(_) | Expr::IdQuery(_) => {}
            Expr::VectorLit { parts, .. } => parts.iter().for_each(|p| p.for_each(f)),
            Expr::Unary { expr, .. } | Expr::Deref(expr) | Expr::AddrOf(expr) => expr.for_each(f),
            Expr::Cast { expr, .. } => expr.for_each(f),
            Expr::Binary { lhs, rhs, .. }
            | Expr::Assign { lhs, rhs, .. }
            | Expr::Comma { lhs, rhs } => {
                lhs.for_each(f);
                rhs.for_each(f);
            }
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.for_each(f);
                then_expr.for_each(f);
                else_expr.for_each(f);
            }
            Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
                args.iter().for_each(|a| a.for_each(f))
            }
            Expr::Index { base, index } => {
                base.for_each(f);
                index.for_each(f);
            }
            Expr::Field { base, .. } | Expr::Swizzle { base, .. } => base.for_each(f),
        }
    }

    /// Calls `f` on every sub-expression, mutably, post-order (children
    /// before parents so rewrites compose bottom-up).
    pub fn for_each_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        match self {
            Expr::IntLit { .. } | Expr::Var(_) | Expr::IdQuery(_) => {}
            Expr::VectorLit { parts, .. } => parts.iter_mut().for_each(|p| p.for_each_mut(f)),
            Expr::Unary { expr, .. } | Expr::Deref(expr) | Expr::AddrOf(expr) => {
                expr.for_each_mut(f)
            }
            Expr::Cast { expr, .. } => expr.for_each_mut(f),
            Expr::Binary { lhs, rhs, .. }
            | Expr::Assign { lhs, rhs, .. }
            | Expr::Comma { lhs, rhs } => {
                lhs.for_each_mut(f);
                rhs.for_each_mut(f);
            }
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.for_each_mut(f);
                then_expr.for_each_mut(f);
                else_expr.for_each_mut(f);
            }
            Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
                args.iter_mut().for_each(|a| a.for_each_mut(f))
            }
            Expr::Index { base, index } => {
                base.for_each_mut(f);
                index.for_each_mut(f);
            }
            Expr::Field { base, .. } | Expr::Swizzle { base, .. } => base.for_each_mut(f),
        }
        f(self);
    }

    /// Whether the expression (recursively) contains a work-item identity
    /// query that depends on the executing thread.
    pub fn uses_thread_identity(&self) -> bool {
        let mut found = false;
        self.for_each(&mut |e| {
            if let Expr::IdQuery(kind) = e {
                if kind.is_identity_dependent() {
                    found = true;
                }
            }
        });
        found
    }

    /// Whether the expression (recursively) contains a call or an atomic /
    /// assignment side effect.
    pub fn has_side_effects(&self) -> bool {
        let mut found = false;
        self.for_each(&mut |e| match e {
            Expr::Assign { .. } | Expr::Call { .. } => found = true,
            Expr::BuiltinCall { func, .. } if func.is_atomic() => found = true,
            _ => {}
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LAnd.is_logical());
        assert!(BinOp::Shl.is_shift());
        assert!(BinOp::Div.needs_safe_wrapper());
        assert!(!BinOp::BitAnd.needs_safe_wrapper());
        assert_eq!(BinOp::Le.symbol(), "<=");
    }

    #[test]
    fn assign_op_mapping() {
        assert_eq!(AssignOp::Assign.binop(), None);
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::XorAssign.symbol(), "^=");
    }

    #[test]
    fn builtin_metadata() {
        assert_eq!(Builtin::SafeAdd.arity(), 2);
        assert_eq!(Builtin::SafeClamp.arity(), 3);
        assert_eq!(Builtin::AtomicInc.arity(), 1);
        assert!(Builtin::AtomicCmpxchg.is_atomic());
        assert!(!Builtin::Rotate.is_atomic());
        assert_eq!(Builtin::SafeClamp.name(), "safe_clamp");
    }

    #[test]
    fn id_kind_identity_dependence() {
        assert!(IdKind::GlobalId(Dim::X).is_identity_dependent());
        assert!(IdKind::GlobalLinearId.is_identity_dependent());
        assert!(!IdKind::LocalSize(Dim::Z).is_identity_dependent());
        assert!(!IdKind::LinearGroupSize.is_identity_dependent());
    }

    #[test]
    fn lvalue_detection() {
        assert!(Expr::var("x").is_lvalue());
        assert!(Expr::deref(Expr::var("p")).is_lvalue());
        assert!(Expr::index(Expr::var("a"), Expr::int(0)).is_lvalue());
        assert!(Expr::arrow(Expr::var("p"), "f").is_lvalue());
        assert!(!Expr::int(3).is_lvalue());
        assert!(!Expr::binary(BinOp::Add, Expr::var("x"), Expr::int(1)).is_lvalue());
    }

    #[test]
    fn node_count_and_walk() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::var("x"),
            Expr::builtin(Builtin::SafeMul, vec![Expr::int(2), Expr::var("y")]),
        );
        assert_eq!(e.node_count(), 5);
        let mut vars = Vec::new();
        e.for_each(&mut |n| {
            if let Expr::Var(name) = n {
                vars.push(name.clone());
            }
        });
        assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn mutation_walk_rewrites_leaves() {
        let mut e = Expr::binary(BinOp::Add, Expr::int(1), Expr::int(2));
        e.for_each_mut(&mut |n| {
            if let Expr::IntLit { value, .. } = n {
                *value += 10;
            }
        });
        match e {
            Expr::Binary { lhs, rhs, .. } => {
                assert_eq!(*lhs, Expr::lit(11, ScalarType::Int));
                assert_eq!(*rhs, Expr::lit(12, ScalarType::Int));
            }
            _ => panic!("shape changed"),
        }
    }

    #[test]
    fn identity_and_side_effect_queries() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::IdQuery(IdKind::GlobalLinearId),
            Expr::int(1),
        );
        assert!(e.uses_thread_identity());
        let f = Expr::binary(
            BinOp::Add,
            Expr::IdQuery(IdKind::LocalSize(Dim::X)),
            Expr::int(1),
        );
        assert!(!f.uses_thread_identity());
        let g = Expr::comma(Expr::assign(Expr::var("x"), Expr::int(1)), Expr::var("x"));
        assert!(g.has_side_effects());
        assert!(!f.has_side_effects());
    }
}
