//! Static feature analysis over programs.
//!
//! The simulated OpenCL configurations (crate `opencl-sim`) decide whether a
//! bug model triggers by querying the [`Features`] of a program: e.g. the
//! AMD struct bug of Figure 1(a) triggers on "a struct whose first field is
//! `char` followed by a wider member", and the Intel Xeon front-end bug of
//! §6 triggers on "an arithmetic/bitwise operator mixing `int` with a
//! `size_t` work-item id".  Keeping feature detection here, next to the AST,
//! lets the generator, the harness and the simulated compilers all agree on
//! what a feature means.

use crate::expr::{Builtin, Expr, IdKind, UnOp};
use crate::program::Program;
use crate::stmt::{Initializer, Stmt};
use crate::types::Type;
use crate::visit::{self, VisitCtx, Visitor};
use std::collections::HashMap;

/// Static features of a program relevant to the bug models.
///
/// All counters are program-wide (kernel plus helper functions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Features {
    /// A struct whose first field is `char`/`uchar` and whose second field is
    /// wider (Figure 1(a); the AMD struct bug).
    pub struct_char_then_wider: bool,
    /// Any struct or union definition exists.
    pub uses_structs: bool,
    /// Any union definition exists.
    pub uses_unions: bool,
    /// A union appears nested inside a struct initialiser (Figure 2(a)).
    pub union_in_initializer: bool,
    /// A vector type appears as a struct field (Figure 1(c); Altera ICE).
    pub vector_in_struct: bool,
    /// Whole-struct assignment (`s = t` at struct type) appears.
    pub whole_struct_assignment: bool,
    /// A struct field is read through a pointer (`p->f` or `(*p).f`).
    pub struct_read_through_pointer: bool,
    /// A helper function writes through a pointer-to-struct parameter
    /// (Figure 1(d)).
    pub struct_written_through_pointer_param: bool,
    /// Largest struct size, in interpreter cells.
    pub max_struct_cells: usize,
    /// Number of `barrier()` statements.
    pub barrier_count: usize,
    /// A barrier appears inside a helper function (not directly in the
    /// kernel body).
    pub barrier_in_callee: bool,
    /// A barrier appears inside a *forward declared* helper function
    /// (Figure 2(c)).
    pub barrier_in_forward_declared_callee: bool,
    /// A barrier appears inside a loop body (Figure 2(d)).
    pub barrier_in_loop: bool,
    /// Number of atomic builtin calls.
    pub atomic_count: usize,
    /// Any vector-typed expression or declaration appears.
    pub uses_vectors: bool,
    /// A logical (`&&`, `||`, `!`) operator is applied to a vector operand
    /// (the Altera front-end rejection described in §6).
    pub vector_logical_op: bool,
    /// `rotate` builtin is used.
    pub uses_rotate: bool,
    /// `rotate` is called with a literal zero rotation amount
    /// (Figure 2(b); the Intel constant-folding bug).
    pub rotate_by_zero_literal: bool,
    /// The comma operator appears anywhere.
    pub uses_comma: bool,
    /// The comma operator appears in a loop or `if` condition
    /// (Figure 2(f); the Oclgrind bug).
    pub comma_in_condition: bool,
    /// A group id appears as an operand of a comparison (Figure 2(e)).
    pub group_id_in_comparison: bool,
    /// A work-item/group id (which has type `size_t` in OpenCL C) appears as
    /// a direct operand of an arithmetic/bitwise operator whose other
    /// operand is a signed `int` expression (the Intel Xeon `int`/`size_t`
    /// front-end rejection of §6).
    pub id_mixed_with_int: bool,
    /// A `while (1)`-style loop with a constant non-zero condition exists.
    pub has_infinite_loop: bool,
    /// Largest literal `for` bound enclosing an infinite `while` loop
    /// (Figure 1(e): compile hang when the bound reaches 197).
    pub max_for_bound_over_infinite_loop: i128,
    /// Any `volatile` declaration or field.
    pub uses_volatile: bool,
    /// Number of helper functions.
    pub function_count: usize,
    /// Number of loops (`for` + `while`).
    pub loop_count: usize,
    /// Total statement count.
    pub statement_count: usize,
    /// Number of EMI blocks.
    pub emi_block_count: usize,
    /// Number of struct definitions.
    pub struct_count: usize,
}

impl Features {
    /// Detects the features of a program.
    pub fn detect(program: &Program) -> Features {
        Detector::new(program).run()
    }
}

struct Detector<'p> {
    program: &'p Program,
    features: Features,
    /// Approximate variable typing environment (flat; shadowing collapses to
    /// the most recent declaration, which is sufficient for feature
    /// detection).
    var_types: HashMap<String, Type>,
    /// Set while walking a helper function body (vs the kernel body).
    in_callee: bool,
    /// Set while walking a forward-declared helper function body.
    forward_declared: bool,
}

impl<'p> Detector<'p> {
    fn new(program: &'p Program) -> Detector<'p> {
        Detector {
            program,
            features: Features::default(),
            var_types: HashMap::new(),
            in_callee: false,
            forward_declared: false,
        }
    }

    fn run(mut self) -> Features {
        self.scan_structs();
        self.collect_var_types();
        self.features.function_count = self.program.functions.len();
        self.features.statement_count = self.program.statement_count();
        self.features.struct_count = self.program.structs.len();
        self.features.emi_block_count = self.program.emi_blocks().len();

        let program = self.program;
        for f in &program.functions {
            self.in_callee = true;
            self.forward_declared = f.forward_declared;
            visit::walk_block(&mut self, &f.body, VisitCtx::default());
            self.scan_function_param_writes(f);
        }
        self.in_callee = false;
        self.forward_declared = false;
        visit::walk_block(&mut self, &program.kernel.body, VisitCtx::default());
        self.features
    }

    fn scan_structs(&mut self) {
        for def in &self.program.structs {
            self.features.uses_structs = true;
            if def.is_union {
                self.features.uses_unions = true;
            }
            if let (Some(first), Some(second)) = (def.fields.first(), def.fields.get(1)) {
                if !def.is_union {
                    if let (Type::Scalar(a), Some(b)) = (&first.ty, second.ty.scalar_elem()) {
                        if a.bits() == 8 && b.bits() > 8 {
                            self.features.struct_char_then_wider = true;
                        }
                    }
                }
            }
            for field in &def.fields {
                if field.volatile {
                    self.features.uses_volatile = true;
                }
                if field.ty.is_vector() {
                    self.features.vector_in_struct = true;
                }
                if let Type::Struct(inner) = &field.ty {
                    if self.program.struct_def(*inner).is_union {
                        // a union nested inside a struct: its initialisation
                        // via a brace list is the Figure 2(a) pattern.
                        self.features.uses_unions = true;
                    }
                }
            }
            let cells = Type::Struct(crate::types::StructId(
                self.program
                    .structs
                    .iter()
                    .position(|d| std::ptr::eq(d, def))
                    .unwrap_or(0),
            ))
            .cell_count(&self.program.structs);
            self.features.max_struct_cells = self.features.max_struct_cells.max(cells);
        }
    }

    fn collect_var_types(&mut self) {
        for p in &self.program.kernel.params {
            self.var_types.insert(p.name.clone(), p.ty.clone());
        }
        for f in &self.program.functions {
            for p in &f.params {
                self.var_types.insert(p.name.clone(), p.ty.clone());
            }
        }
        let mut decls: Vec<(String, Type)> = Vec::new();
        self.program.for_each_stmt(&mut |s| {
            if let Stmt::Decl {
                name, ty, volatile, ..
            } = s
            {
                decls.push((name.clone(), ty.clone()));
                let _ = volatile;
            }
        });
        for (name, ty) in decls {
            self.var_types.insert(name, ty);
        }
    }

    fn scan_function_param_writes(&mut self, f: &crate::program::FunctionDef) {
        let struct_ptr_params: Vec<&str> = f
            .params
            .iter()
            .filter(|p| matches!(&p.ty, Type::Pointer(inner, _) if inner.is_struct()))
            .map(|p| p.name.as_str())
            .collect();
        if struct_ptr_params.is_empty() {
            return;
        }
        let mut writes = false;
        for s in f.body.iter() {
            s.for_each_expr(true, &mut |e| {
                if let Expr::Assign { lhs, .. } = e {
                    let mut touches_param = false;
                    lhs.for_each(&mut |sub| {
                        if let Expr::Var(name) = sub {
                            if struct_ptr_params.contains(&name.as_str()) {
                                touches_param = true;
                            }
                        }
                    });
                    if touches_param {
                        writes = true;
                    }
                }
            });
        }
        if writes {
            self.features.struct_written_through_pointer_param = true;
        }
    }

    fn scan_initializer(&mut self, ty: &Type, init: &Initializer) {
        // Detect a brace-initialised union field inside a struct initialiser
        // (Figure 2(a)): struct T { union U u[1]; ... } t = { {{1}}, ... }.
        // The initialiser *expressions* are walked by the shared visitor; only
        // this structural check needs the type alongside the initialiser.
        if let (Type::Struct(id), Initializer::List(items)) = (ty, init) {
            let def = self.program.struct_def(*id);
            for (field, item) in def.fields.iter().zip(items) {
                let field_is_unionish = match &field.ty {
                    Type::Struct(fid) => self.program.struct_def(*fid).is_union,
                    Type::Array(elem, _) => {
                        matches!(elem.as_ref(), Type::Struct(fid) if self.program.struct_def(*fid).is_union)
                    }
                    _ => false,
                };
                if field_is_unionish && matches!(item, Initializer::List(_)) {
                    self.features.union_in_initializer = true;
                }
                self.scan_initializer(&field.ty, item);
            }
        }
    }

    fn is_vector_expr(&self, e: &Expr) -> bool {
        match e {
            Expr::VectorLit { .. } => true,
            Expr::Var(name) => {
                matches!(self.var_types.get(name), Some(ty) if ty.is_vector())
            }
            Expr::Swizzle { lanes, .. } => lanes.len() > 1,
            Expr::BuiltinCall { func, args } => {
                matches!(
                    func,
                    Builtin::Rotate
                        | Builtin::Clamp
                        | Builtin::SafeClamp
                        | Builtin::Min
                        | Builtin::Max
                ) && args.iter().any(|a| self.is_vector_expr(a))
            }
            Expr::Binary { lhs, rhs, .. } => self.is_vector_expr(lhs) || self.is_vector_expr(rhs),
            Expr::Cast { ty, .. } => ty.is_vector(),
            _ => false,
        }
    }

    fn is_signed_int_expr(&self, e: &Expr) -> bool {
        match e {
            Expr::IntLit { ty, .. } => ty.is_signed(),
            Expr::Var(name) => matches!(
                self.var_types.get(name),
                Some(Type::Scalar(s)) if s.is_signed()
            ),
            _ => false,
        }
    }

    fn is_struct_expr(&self, e: &Expr) -> bool {
        match e {
            Expr::Var(name) => matches!(self.var_types.get(name), Some(Type::Struct(_))),
            Expr::Deref(inner) => match inner.as_ref() {
                Expr::Var(name) => matches!(
                    self.var_types.get(name),
                    Some(Type::Pointer(t, _)) if t.is_struct()
                ),
                _ => false,
            },
            _ => false,
        }
    }
}

impl Visitor for Detector<'_> {
    fn enter_stmt(&mut self, stmt: &Stmt, cx: &VisitCtx) {
        match stmt {
            Stmt::Decl {
                ty,
                volatile,
                init_list,
                ..
            } => {
                if *volatile {
                    self.features.uses_volatile = true;
                }
                if ty.is_vector() {
                    self.features.uses_vectors = true;
                }
                if let Some(list) = init_list {
                    self.scan_initializer(ty, list);
                }
            }
            Stmt::For { .. } => self.features.loop_count += 1,
            Stmt::While { cond, .. } => {
                self.features.loop_count += 1;
                if is_nonzero_literal(cond) {
                    self.features.has_infinite_loop = true;
                    if let Some(bound) = cx.enclosing_for_bound {
                        self.features.max_for_bound_over_infinite_loop =
                            self.features.max_for_bound_over_infinite_loop.max(bound);
                    }
                }
            }
            Stmt::Barrier(_) => {
                self.features.barrier_count += 1;
                if self.in_callee {
                    self.features.barrier_in_callee = true;
                    if self.forward_declared {
                        self.features.barrier_in_forward_declared_callee = true;
                    }
                }
                if cx.in_loop {
                    self.features.barrier_in_loop = true;
                }
            }
            _ => {}
        }
    }

    fn enter_expr(&mut self, e: &Expr, cx: &VisitCtx) {
        match e {
            Expr::VectorLit { .. } => self.features.uses_vectors = true,
            Expr::Unary { op, expr } if *op == UnOp::LNot && self.is_vector_expr(expr) => {
                self.features.vector_logical_op = true;
            }
            Expr::Binary { op, lhs, rhs } => {
                if op.is_logical() && (self.is_vector_expr(lhs) || self.is_vector_expr(rhs)) {
                    self.features.vector_logical_op = true;
                }
                if op.is_comparison() && (is_group_id(lhs) || is_group_id(rhs)) {
                    self.features.group_id_in_comparison = true;
                }
                if !op.is_comparison() && !op.is_logical() {
                    let mixes = (is_identity_query(lhs) && self.is_signed_int_expr(rhs))
                        || (is_identity_query(rhs) && self.is_signed_int_expr(lhs));
                    if mixes {
                        self.features.id_mixed_with_int = true;
                    }
                }
            }
            Expr::Assign { op, lhs, rhs } => {
                if op.binop().is_some() && is_identity_query(rhs) && self.is_signed_int_expr(lhs) {
                    self.features.id_mixed_with_int = true;
                }
                if self.is_struct_expr(lhs) && self.is_struct_expr(rhs) {
                    self.features.whole_struct_assignment = true;
                }
            }
            Expr::Comma { .. } => {
                self.features.uses_comma = true;
                if cx.in_condition {
                    self.features.comma_in_condition = true;
                }
            }
            Expr::BuiltinCall { func, args } => {
                if func.is_atomic() {
                    self.features.atomic_count += 1;
                }
                if *func == Builtin::Rotate {
                    self.features.uses_rotate = true;
                    if let Some(amount) = args.get(1) {
                        if is_zero_valued(amount) {
                            self.features.rotate_by_zero_literal = true;
                        }
                    }
                }
            }
            Expr::Field { base, arrow, .. }
                if *arrow || matches!(base.as_ref(), Expr::Deref(_)) =>
            {
                self.features.struct_read_through_pointer = true;
            }
            Expr::Cast { ty, .. } if ty.is_vector() => self.features.uses_vectors = true,
            Expr::Swizzle { .. } => self.features.uses_vectors = true,
            _ => {}
        }
    }
}

fn is_group_id(e: &Expr) -> bool {
    fn direct(e: &Expr) -> bool {
        matches!(
            e,
            Expr::IdQuery(IdKind::GroupId(_)) | Expr::IdQuery(IdKind::GroupLinearId)
        )
    }
    // Only a *shallow* occurrence counts: the operand is itself a group id,
    // or a unary/cast/arithmetic node with a group id as a direct child
    // (this matches the Figure 2(e) shape `(*p - gx) != 1` without flagging
    // group-id-based buffer indexing such as `counters[g_linear*C + c]`).
    match e {
        _ if direct(e) => true,
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => direct(expr),
        Expr::Binary { lhs, rhs, .. } => direct(lhs) || direct(rhs),
        _ => false,
    }
}

fn is_identity_query(e: &Expr) -> bool {
    matches!(e, Expr::IdQuery(kind) if kind.is_identity_dependent())
}

fn is_zero_valued(e: &Expr) -> bool {
    match e {
        Expr::IntLit { value, .. } => *value == 0,
        Expr::VectorLit { parts, .. } => parts.iter().all(is_zero_valued),
        Expr::Cast { expr, .. } => is_zero_valued(expr),
        _ => false,
    }
}

fn is_nonzero_literal(e: &Expr) -> bool {
    matches!(e, Expr::IntLit { value, .. } if *value != 0)
}

/// Convenience: true when a program would be rejected by a front-end that
/// does not support logical operations on vectors (the Altera issue in §6).
pub fn uses_vector_logical_ops(program: &Program) -> bool {
    Features::detect(program).vector_logical_op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AssignOp, BinOp, Dim};
    use crate::program::{KernelDef, LaunchConfig, Param, Program};
    use crate::stmt::{Block, MemFence};
    use crate::types::{AddressSpace, Field, ScalarType, StructDef, VectorWidth};

    fn base_program() -> Program {
        Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::new(),
            },
            LaunchConfig::single_group(4),
        )
    }

    #[test]
    fn detects_struct_char_then_wider() {
        let mut p = base_program();
        p.add_struct(StructDef::new(
            "S",
            vec![
                Field::new("a", Type::Scalar(ScalarType::Char)),
                Field::new("b", Type::Scalar(ScalarType::Short)),
            ],
        ));
        let f = Features::detect(&p);
        assert!(f.struct_char_then_wider);
        assert!(f.uses_structs);
        assert_eq!(f.max_struct_cells, 2);
    }

    #[test]
    fn detects_vector_in_struct_and_unions() {
        let mut p = base_program();
        p.add_struct(StructDef::union(
            "U",
            vec![Field::new("x", Type::Scalar(ScalarType::UInt))],
        ));
        p.add_struct(StructDef::new(
            "S",
            vec![Field::new(
                "v",
                Type::Vector(ScalarType::Int, VectorWidth::W4),
            )],
        ));
        let f = Features::detect(&p);
        assert!(f.uses_unions);
        assert!(f.vector_in_struct);
    }

    #[test]
    fn detects_barrier_contexts() {
        let mut p = base_program();
        p.functions.push(crate::program::FunctionDef {
            name: "f".into(),
            ret: Some(Type::Scalar(ScalarType::Int)),
            params: vec![],
            body: Block::of(vec![
                Stmt::Barrier(MemFence::Local),
                Stmt::Return(Some(Expr::int(1))),
            ]),
            forward_declared: true,
            noinline: false,
        });
        p.kernel.body.push(Stmt::For {
            init: None,
            cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(10))),
            update: None,
            body: Block::of(vec![Stmt::Barrier(MemFence::Local)]),
        });
        let f = Features::detect(&p);
        assert_eq!(f.barrier_count, 2);
        assert!(f.barrier_in_callee);
        assert!(f.barrier_in_forward_declared_callee);
        assert!(f.barrier_in_loop);
    }

    #[test]
    fn detects_rotate_by_zero_and_comma_in_condition() {
        let mut p = base_program();
        p.kernel.body.push(Stmt::expr(Expr::builtin(
            Builtin::Rotate,
            vec![
                Expr::VectorLit {
                    elem: ScalarType::UInt,
                    width: VectorWidth::W2,
                    parts: vec![
                        Expr::lit(1, ScalarType::UInt),
                        Expr::lit(1, ScalarType::UInt),
                    ],
                },
                Expr::VectorLit {
                    elem: ScalarType::UInt,
                    width: VectorWidth::W2,
                    parts: vec![
                        Expr::lit(0, ScalarType::UInt),
                        Expr::lit(0, ScalarType::UInt),
                    ],
                },
            ],
        )));
        p.kernel.body.push(Stmt::if_then(
            Expr::comma(Expr::var("x"), Expr::int(1)),
            Block::of(vec![Stmt::Break]),
        ));
        let f = Features::detect(&p);
        assert!(f.uses_rotate);
        assert!(f.rotate_by_zero_literal);
        assert!(f.uses_comma);
        assert!(f.comma_in_condition);
        assert!(f.uses_vectors);
    }

    #[test]
    fn detects_group_id_comparison_and_int_size_t_mixing() {
        let mut p = base_program();
        p.kernel.body.push(Stmt::decl(
            "x",
            Type::Scalar(ScalarType::Int),
            Some(Expr::int(0)),
        ));
        p.kernel.body.push(Stmt::if_then(
            Expr::binary(
                BinOp::Ne,
                Expr::binary(
                    BinOp::Sub,
                    Expr::var("x"),
                    Expr::IdQuery(IdKind::GroupId(Dim::X)),
                ),
                Expr::int(1),
            ),
            Block::new(),
        ));
        p.kernel.body.push(Stmt::expr(Expr::assign_op(
            AssignOp::OrAssign,
            Expr::var("x"),
            Expr::IdQuery(IdKind::GroupId(Dim::X)),
        )));
        let f = Features::detect(&p);
        assert!(f.group_id_in_comparison);
        assert!(f.id_mixed_with_int);
    }

    #[test]
    fn detects_infinite_loop_under_for_bound() {
        let mut p = base_program();
        p.kernel.body.push(Stmt::For {
            init: Some(Box::new(Stmt::decl(
                "i",
                Type::Scalar(ScalarType::Int),
                Some(Expr::int(0)),
            ))),
            cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(197))),
            update: Some(Expr::assign_op(
                AssignOp::AddAssign,
                Expr::var("i"),
                Expr::int(1),
            )),
            body: Block::of(vec![Stmt::if_then(
                Expr::deref(Expr::var("p")),
                Block::of(vec![Stmt::While {
                    cond: Expr::int(1),
                    body: Block::new(),
                }]),
            )]),
        });
        let f = Features::detect(&p);
        assert!(f.has_infinite_loop);
        assert_eq!(f.max_for_bound_over_infinite_loop, 197);
        assert_eq!(f.loop_count, 2);
    }

    #[test]
    fn detects_struct_pointer_writes_in_callee() {
        let mut p = base_program();
        let sid = p.add_struct(StructDef::new(
            "S",
            vec![
                Field::new("x", Type::Scalar(ScalarType::Int)),
                Field::new("y", Type::Scalar(ScalarType::Int)),
            ],
        ));
        p.functions.push(crate::program::FunctionDef::new(
            "f",
            None,
            vec![Param::new(
                "p",
                Type::Struct(sid).pointer_to(AddressSpace::Private),
            )],
            Block::of(vec![Stmt::assign(
                Expr::arrow(Expr::var("p"), "x"),
                Expr::int(2),
            )]),
        ));
        let f = Features::detect(&p);
        assert!(f.struct_written_through_pointer_param);
        assert!(f.struct_read_through_pointer);
        assert_eq!(f.function_count, 1);
    }

    #[test]
    fn detects_whole_struct_assignment() {
        let mut p = base_program();
        let sid = p.add_struct(StructDef::new(
            "S",
            vec![Field::new("a", Type::Scalar(ScalarType::Int))],
        ));
        p.kernel.body.push(Stmt::decl("s", Type::Struct(sid), None));
        p.kernel.body.push(Stmt::decl("t", Type::Struct(sid), None));
        p.kernel
            .body
            .push(Stmt::assign(Expr::var("s"), Expr::var("t")));
        let f = Features::detect(&p);
        assert!(f.whole_struct_assignment);
    }

    #[test]
    fn detects_vector_logical_op() {
        let mut p = base_program();
        p.kernel.body.push(Stmt::decl(
            "v",
            Type::Vector(ScalarType::Int, VectorWidth::W4),
            None,
        ));
        p.kernel.body.push(Stmt::expr(Expr::binary(
            BinOp::LAnd,
            Expr::var("v"),
            Expr::int(1),
        )));
        let f = Features::detect(&p);
        assert!(f.vector_logical_op);
    }

    #[test]
    fn detects_union_in_struct_initializer() {
        let mut p = base_program();
        let uid = p.add_struct(StructDef::union(
            "U",
            vec![Field::new("a", Type::Scalar(ScalarType::UInt))],
        ));
        let tid = p.add_struct(StructDef::new(
            "T",
            vec![
                Field::new("u", Type::Struct(uid).array_of(1)),
                Field::new("x", Type::Scalar(ScalarType::ULong)),
            ],
        ));
        p.kernel.body.push(Stmt::decl_init_list(
            "t",
            Type::Struct(tid),
            Initializer::List(vec![
                Initializer::List(vec![Initializer::List(vec![Initializer::Expr(Expr::int(
                    1,
                ))])]),
                Initializer::Expr(Expr::int(0)),
            ]),
        ));
        let f = Features::detect(&p);
        assert!(f.union_in_initializer);
    }
}
