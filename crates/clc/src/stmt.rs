//! Statements and blocks of the OpenCL C subset.
//!
//! Statements are the granularity at which the interpreter can suspend a
//! work-item (for barrier synchronisation), and the granularity at which the
//! EMI machinery prunes code.

use crate::expr::Expr;
use crate::types::{AddressSpace, Type};

/// The memory-fence argument of a `barrier(...)` call (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemFence {
    /// `CLK_LOCAL_MEM_FENCE`
    #[default]
    Local,
    /// `CLK_GLOBAL_MEM_FENCE`
    Global,
    /// `CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE`
    Both,
}

impl MemFence {
    /// OpenCL C spelling of the fence flags.
    pub fn render(self) -> &'static str {
        match self {
            MemFence::Local => "CLK_LOCAL_MEM_FENCE",
            MemFence::Global => "CLK_GLOBAL_MEM_FENCE",
            MemFence::Both => "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE",
        }
    }
}

/// An EMI block: `if (dead[i] < dead[j]) { body }` with `j < i`, so that the
/// body is dynamically unreachable by construction (§5 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmiBlock {
    /// Sequence number of the block within the program (the paper's `i`).
    pub index: usize,
    /// Indices `(a, b)` such that the guard is `dead[a] < dead[b]`.
    ///
    /// The host initialises `dead[j] = j`, so the guard is false whenever
    /// `b < a`, which the generator guarantees.
    pub guard: (usize, usize),
    /// The dynamically dead body.
    pub body: Block,
}

impl EmiBlock {
    /// Whether the guard is false under the standard `dead[j] = j`
    /// initialisation (i.e. the body really is dead by construction).
    pub fn is_dead_by_construction(&self) -> bool {
        self.guard.1 < self.guard.0
    }
}

/// A single statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// Local variable declaration, optionally initialised.
    Decl {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: Type,
        /// Address space (`private` by default, `local` for work-group
        /// shared arrays in BARRIER mode).
        space: AddressSpace,
        /// Whether the variable is `volatile`.
        volatile: bool,
        /// Optional initialiser.  Struct/array variables may be initialised
        /// with an [`Initializer`] via `init_list` instead.
        init: Option<Expr>,
        /// Optional brace initialiser list for aggregates.
        init_list: Option<Initializer>,
    },
    /// Expression statement (assignments, calls, atomics, ...).
    Expr(Expr),
    /// `if (cond) { then } else { else }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `for (init; cond; update) { body }`.
    For {
        /// Optional init statement (a declaration or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means "true").
        cond: Option<Expr>,
        /// Optional update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) { body }`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// A nested block `{ ... }`.
    Block(Block),
    /// `return expr;` / `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `barrier(fence);`
    Barrier(MemFence),
    /// An EMI block (see [`EmiBlock`]).
    Emi(EmiBlock),
}

impl Stmt {
    /// Shorthand for a declaration with an expression initialiser.
    pub fn decl(name: impl Into<String>, ty: Type, init: Option<Expr>) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty,
            space: AddressSpace::Private,
            volatile: false,
            init,
            init_list: None,
        }
    }

    /// Shorthand for a declaration with a brace initialiser.
    pub fn decl_init_list(name: impl Into<String>, ty: Type, init: Initializer) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty,
            space: AddressSpace::Private,
            volatile: false,
            init: None,
            init_list: Some(init),
        }
    }

    /// Shorthand for an expression statement.
    pub fn expr(e: Expr) -> Stmt {
        Stmt::Expr(e)
    }

    /// Shorthand for an assignment statement `lhs = rhs;`.
    pub fn assign(lhs: Expr, rhs: Expr) -> Stmt {
        Stmt::Expr(Expr::assign(lhs, rhs))
    }

    /// Shorthand for `if (cond) { then }`.
    pub fn if_then(cond: Expr, then_block: Block) -> Stmt {
        Stmt::If {
            cond,
            then_block,
            else_block: None,
        }
    }

    /// Shorthand for `if (cond) { then } else { else }`.
    pub fn if_else(cond: Expr, then_block: Block, else_block: Block) -> Stmt {
        Stmt::If {
            cond,
            then_block,
            else_block: Some(else_block),
        }
    }

    /// Whether the statement is "compound" in the EMI pruning sense (§5):
    /// it owns nested statements.
    pub fn is_compound(&self) -> bool {
        matches!(
            self,
            Stmt::If { .. } | Stmt::For { .. } | Stmt::While { .. } | Stmt::Block(_) | Stmt::Emi(_)
        )
    }

    /// Whether the statement is a jump (`return` / `break` / `continue`).
    ///
    /// Atomic sections must not contain these (§4.2, ATOMIC SECTION mode).
    pub fn is_jump(&self) -> bool {
        matches!(self, Stmt::Return(_) | Stmt::Break | Stmt::Continue)
    }

    /// Number of AST statement nodes (this node plus nested statements).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.for_each(&mut |_| n += 1);
        n
    }

    /// Calls `f` on this statement and every nested statement, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                then_block.for_each(f);
                if let Some(b) = else_block {
                    b.for_each(f);
                }
            }
            Stmt::For { init, body, .. } => {
                if let Some(s) = init {
                    s.for_each(f);
                }
                body.for_each(f);
            }
            Stmt::While { body, .. } => body.for_each(f),
            Stmt::Block(b) => b.for_each(f),
            Stmt::Emi(emi) => emi.body.for_each(f),
            _ => {}
        }
    }

    /// Calls `f` on every expression contained in this statement (not
    /// descending into nested statements' expressions unless `recursive`).
    pub fn for_each_expr(&self, recursive: bool, f: &mut impl FnMut(&Expr)) {
        let visit_own = |s: &Stmt, f: &mut dyn FnMut(&Expr)| match s {
            Stmt::Decl {
                init, init_list, ..
            } => {
                if let Some(e) = init {
                    e.for_each(&mut |x| f(x));
                }
                if let Some(list) = init_list {
                    list.for_each_expr(f);
                }
            }
            Stmt::Expr(e) => e.for_each(&mut |x| f(x)),
            Stmt::If { cond, .. } => cond.for_each(&mut |x| f(x)),
            Stmt::For { cond, update, .. } => {
                if let Some(c) = cond {
                    c.for_each(&mut |x| f(x));
                }
                if let Some(u) = update {
                    u.for_each(&mut |x| f(x));
                }
            }
            Stmt::While { cond, .. } => cond.for_each(&mut |x| f(x)),
            Stmt::Return(Some(e)) => e.for_each(&mut |x| f(x)),
            _ => {}
        };
        if recursive {
            self.for_each(&mut |s| visit_own(s, f));
        } else {
            visit_own(self, f);
        }
    }

    /// Calls `f` mutably on every expression directly owned by this statement
    /// and, recursively, by nested statements.
    pub fn for_each_expr_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        match self {
            Stmt::Decl {
                init, init_list, ..
            } => {
                if let Some(e) = init {
                    e.for_each_mut(f);
                }
                if let Some(list) = init_list {
                    list.for_each_expr_mut(f);
                }
            }
            Stmt::Expr(e) => e.for_each_mut(f),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                cond.for_each_mut(f);
                then_block.for_each_expr_mut(f);
                if let Some(b) = else_block {
                    b.for_each_expr_mut(f);
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(s) = init {
                    s.for_each_expr_mut(f);
                }
                if let Some(c) = cond {
                    c.for_each_mut(f);
                }
                if let Some(u) = update {
                    u.for_each_mut(f);
                }
                body.for_each_expr_mut(f);
            }
            Stmt::While { cond, body } => {
                cond.for_each_mut(f);
                body.for_each_expr_mut(f);
            }
            Stmt::Block(b) => b.for_each_expr_mut(f),
            Stmt::Emi(emi) => emi.body.for_each_expr_mut(f),
            Stmt::Return(Some(e)) => e.for_each_mut(f),
            _ => {}
        }
    }

    /// Whether this statement or any nested statement is a barrier.
    pub fn contains_barrier(&self) -> bool {
        let mut found = false;
        self.for_each(&mut |s| {
            if matches!(s, Stmt::Barrier(_)) {
                found = true;
            }
        });
        found
    }
}

/// A brace-initialiser for aggregates, e.g. `{0, {1, 2}, 3}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Initializer {
    /// A single expression initialising a scalar / vector / pointer slot.
    Expr(Expr),
    /// A nested brace list initialising an aggregate.
    List(Vec<Initializer>),
}

impl Initializer {
    /// Convenience: a list of expression initialisers.
    pub fn of_exprs(exprs: Vec<Expr>) -> Initializer {
        Initializer::List(exprs.into_iter().map(Initializer::Expr).collect())
    }

    /// Calls `f` on every expression in the initialiser.
    pub fn for_each_expr(&self, f: &mut dyn FnMut(&Expr)) {
        match self {
            Initializer::Expr(e) => e.for_each(&mut |x| f(x)),
            Initializer::List(items) => items.iter().for_each(|i| i.for_each_expr(f)),
        }
    }

    /// Calls `f` mutably on every expression in the initialiser.
    pub fn for_each_expr_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        match self {
            Initializer::Expr(e) => e.for_each_mut(f),
            Initializer::List(items) => items.iter_mut().for_each(|i| i.for_each_expr_mut(f)),
        }
    }
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Block {
    /// The statements, in program order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// A block holding the given statements.
    pub fn of(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }

    /// Appends a statement.
    pub fn push(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// Number of directly contained statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Iterates over directly contained statements.
    pub fn iter(&self) -> std::slice::Iter<'_, Stmt> {
        self.stmts.iter()
    }

    /// Calls `f` on every statement in the block, recursively, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.stmts {
            s.for_each(f);
        }
    }

    /// Calls `f` mutably on every expression in the block, recursively.
    pub fn for_each_expr_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        for s in &mut self.stmts {
            s.for_each_expr_mut(f);
        }
    }

    /// Total number of statement nodes contained in the block.
    pub fn node_count(&self) -> usize {
        self.stmts.iter().map(Stmt::node_count).sum()
    }

    /// Whether any contained statement is a barrier.
    pub fn contains_barrier(&self) -> bool {
        self.stmts.iter().any(Stmt::contains_barrier)
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        Block {
            stmts: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Block {
    type Item = Stmt;
    type IntoIter = std::vec::IntoIter<Stmt>;

    fn into_iter(self) -> Self::IntoIter {
        self.stmts.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::types::ScalarType;

    fn sample_block() -> Block {
        Block::of(vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
            Stmt::If {
                cond: Expr::binary(BinOp::Lt, Expr::var("x"), Expr::int(10)),
                then_block: Block::of(vec![
                    Stmt::assign(Expr::var("x"), Expr::int(2)),
                    Stmt::Barrier(MemFence::Local),
                ]),
                else_block: Some(Block::of(vec![Stmt::Break])),
            },
            Stmt::Return(Some(Expr::var("x"))),
        ])
    }

    #[test]
    fn emi_block_deadness() {
        let dead = EmiBlock {
            index: 0,
            guard: (3, 1),
            body: Block::new(),
        };
        assert!(dead.is_dead_by_construction());
        let live = EmiBlock {
            index: 0,
            guard: (1, 3),
            body: Block::new(),
        };
        assert!(!live.is_dead_by_construction());
    }

    #[test]
    fn statement_classification() {
        assert!(Stmt::if_then(Expr::int(1), Block::new()).is_compound());
        assert!(!Stmt::Break.is_compound());
        assert!(Stmt::Break.is_jump());
        assert!(Stmt::Return(None).is_jump());
        assert!(!Stmt::Barrier(MemFence::Both).is_jump());
    }

    #[test]
    fn walking_counts_nested_statements() {
        let block = sample_block();
        // decl, if, assign, barrier, break, return = 6 statement nodes
        assert_eq!(block.node_count(), 6);
        assert!(block.contains_barrier());
    }

    #[test]
    fn expr_iteration_covers_nested_blocks() {
        let block = sample_block();
        let mut vars = 0;
        for s in block.iter() {
            s.for_each_expr(true, &mut |e| {
                if matches!(e, Expr::Var(_)) {
                    vars += 1;
                }
            });
        }
        // x in condition, x in assignment lhs, x in return
        assert_eq!(vars, 3);
    }

    #[test]
    fn expr_mutation_reaches_nested_blocks() {
        let mut block = sample_block();
        block.for_each_expr_mut(&mut |e| {
            if let Expr::IntLit { value, .. } = e {
                *value = 0;
            }
        });
        let mut nonzero = false;
        for s in block.iter() {
            s.for_each_expr(true, &mut |e| {
                if let Expr::IntLit { value, .. } = e {
                    if *value != 0 {
                        nonzero = true;
                    }
                }
            });
        }
        assert!(!nonzero);
    }

    #[test]
    fn fence_rendering() {
        assert_eq!(MemFence::Local.render(), "CLK_LOCAL_MEM_FENCE");
        assert_eq!(
            MemFence::Both.render(),
            "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE"
        );
    }

    #[test]
    fn initializer_walks() {
        let init = Initializer::List(vec![
            Initializer::Expr(Expr::int(1)),
            Initializer::List(vec![Initializer::Expr(Expr::int(2))]),
        ]);
        let mut sum = 0i128;
        init.for_each_expr(&mut |e| {
            if let Expr::IntLit { value, .. } = e {
                sum += value;
            }
        });
        assert_eq!(sum, 3);
    }
}
