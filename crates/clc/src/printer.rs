//! Pretty-printer: renders a [`Program`] as compilable OpenCL C source.
//!
//! The emitted source is what would be handed to a real OpenCL driver's
//! online compiler.  It includes the CLsmith safe-math macro preamble so the
//! text is self-contained (§4.1 of the paper describes the safe-math macros;
//! we emit functionally equivalent definitions).
//!
//! Sub-expressions are fully parenthesised.  This sidesteps precedence
//! questions entirely — notably the ambiguous-vector-literal issue the paper
//! describes in §6 ("Front-end issues"), where `(int2)(1,2).y` was parsed in
//! two different ways by different vendors; we always emit
//! `((int2)(1, 2)).y`.

use crate::expr::{Expr, IdKind};
use crate::program::{FunctionDef, KernelDef, Param, Program};
use crate::stmt::{Block, Initializer, Stmt};
use crate::types::{AddressSpace, StructDef, Type};
use std::fmt::Write as _;

/// Renders a whole program as OpenCL C.
pub fn print_program(program: &Program) -> String {
    Printer::new(program).print()
}

/// Renders a single expression (mainly for diagnostics and tests).
pub fn print_expr(expr: &Expr, program: &Program) -> String {
    let p = Printer::new(program);
    p.expr(expr)
}

/// Renders a single statement at the given indentation level.
pub fn print_stmt(stmt: &Stmt, program: &Program) -> String {
    let p = Printer::new(program);
    let mut out = String::new();
    p.stmt(&mut out, stmt, 0);
    out
}

struct Printer<'p> {
    program: &'p Program,
}

const INDENT: &str = "    ";

impl<'p> Printer<'p> {
    fn new(program: &'p Program) -> Printer<'p> {
        Printer { program }
    }

    fn print(&self) -> String {
        let mut out = String::new();
        self.header(&mut out);
        self.preamble(&mut out);
        for def in &self.program.structs {
            self.struct_def(&mut out, def);
        }
        self.permutations(&mut out);
        // Forward declarations (prototypes) first.
        for f in &self.program.functions {
            if f.forward_declared {
                let _ = writeln!(out, "{};", self.function_signature(f));
            }
        }
        if self.program.functions.iter().any(|f| f.forward_declared) {
            out.push('\n');
        }
        for f in &self.program.functions {
            self.function(&mut out, f);
        }
        self.kernel(&mut out, &self.program.kernel);
        out
    }

    fn header(&self, out: &mut String) {
        let l = &self.program.launch;
        let _ = writeln!(
            out,
            "// Auto-generated OpenCL kernel (CLsmith reproduction)\n\
             // global_work_size = [{}, {}, {}], local_work_size = [{}, {}, {}]",
            l.global[0], l.global[1], l.global[2], l.local[0], l.local[1], l.local[2]
        );
        if self.program.dead_len > 0 {
            let _ = writeln!(
                out,
                "// EMI dead array: {} elements, host initialises dead[j] = j",
                self.program.dead_len
            );
        }
        out.push('\n');
    }

    /// Emits the safe-math macro definitions used by generated code.
    fn preamble(&self, out: &mut String) {
        out.push_str(
            "#define safe_add(a, b) ((a) + (b))\n\
             #define safe_sub(a, b) ((a) - (b))\n\
             #define safe_mul(a, b) ((a) * (b))\n\
             #define safe_div(a, b) (((b) == 0) ? (a) : ((a) / (b)))\n\
             #define safe_mod(a, b) (((b) == 0) ? (a) : ((a) % (b)))\n\
             #define safe_lshift(a, b) ((a) << (((b) & 31)))\n\
             #define safe_rshift(a, b) ((a) >> (((b) & 31)))\n\
             #define safe_unary_minus(a) (-(a))\n\
             #define safe_clamp(x, lo, hi) (((lo) > (hi)) ? (x) : clamp((x), (lo), (hi)))\n\n",
        );
    }

    fn permutations(&self, out: &mut String) {
        if self.program.permutations.is_empty() {
            return;
        }
        let rows = self.program.permutations.len();
        let cols = self.program.permutations[0].len();
        let _ = writeln!(out, "constant uint permutations[{rows}][{cols}] = {{");
        for row in &self.program.permutations {
            let items: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "{INDENT}{{{}}},", items.join(", "));
        }
        out.push_str("};\n\n");
    }

    fn struct_def(&self, out: &mut String, def: &StructDef) {
        let kw = if def.is_union { "union" } else { "struct" };
        let _ = writeln!(out, "{kw} {} {{", def.name);
        for field in &def.fields {
            let vol = if field.volatile { "volatile " } else { "" };
            let _ = writeln!(
                out,
                "{INDENT}{vol}{};",
                self.declarator(&field.ty, &field.name)
            );
        }
        out.push_str("};\n\n");
    }

    /// Renders a C declarator `ty name`, placing array lengths after the
    /// name as C requires.
    fn declarator(&self, ty: &Type, name: &str) -> String {
        match ty {
            Type::Array(elem, len) => {
                format!("{}[{len}]", self.declarator(elem, name))
            }
            _ => format!("{} {name}", self.type_name(ty)),
        }
    }

    fn type_name(&self, ty: &Type) -> String {
        match ty {
            Type::Scalar(s) => s.name().to_string(),
            Type::Vector(s, w) => format!("{}{}", s.name(), w.lanes()),
            Type::Struct(id) => {
                let def = self.program.struct_def(*id);
                let kw = if def.is_union { "union" } else { "struct" };
                format!("{kw} {}", def.name)
            }
            Type::Array(elem, len) => format!("{}[{len}]", self.type_name(elem)),
            Type::Pointer(inner, space) => {
                let q = space.qualifier();
                if q.is_empty() {
                    format!("{}*", self.type_name(inner))
                } else {
                    format!("{q} {}*", self.type_name(inner))
                }
            }
        }
    }

    fn function_signature(&self, f: &FunctionDef) -> String {
        let ret = match &f.ret {
            Some(ty) => self.type_name(ty),
            None => "void".to_string(),
        };
        format!("{ret} {}({})", f.name, self.params(&f.params))
    }

    fn params(&self, params: &[Param]) -> String {
        if params.is_empty() {
            return "void".to_string();
        }
        params
            .iter()
            .map(|p| self.declarator(&p.ty, &p.name))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn function(&self, out: &mut String, f: &FunctionDef) {
        let _ = writeln!(out, "{} {{", self.function_signature(f));
        self.block_body(out, &f.body, 1);
        out.push_str("}\n\n");
    }

    fn kernel(&self, out: &mut String, k: &KernelDef) {
        let _ = writeln!(out, "kernel void {}({}) {{", k.name, self.params(&k.params));
        self.block_body(out, &k.body, 1);
        out.push_str("}\n");
    }

    fn block_body(&self, out: &mut String, block: &Block, level: usize) {
        for stmt in block.iter() {
            self.stmt(out, stmt, level);
        }
    }

    fn stmt(&self, out: &mut String, stmt: &Stmt, level: usize) {
        let pad = INDENT.repeat(level);
        match stmt {
            Stmt::Decl {
                name,
                ty,
                space,
                volatile,
                init,
                init_list,
            } => {
                let mut line = String::new();
                let q = space.qualifier();
                if !q.is_empty() && *space != AddressSpace::Private {
                    line.push_str(q);
                    line.push(' ');
                }
                if *volatile {
                    line.push_str("volatile ");
                }
                line.push_str(&self.declarator(ty, name));
                if let Some(e) = init {
                    let _ = write!(line, " = {}", self.expr(e));
                } else if let Some(list) = init_list {
                    let _ = write!(line, " = {}", self.initializer(list));
                }
                let _ = writeln!(out, "{pad}{line};");
            }
            Stmt::Expr(e) => {
                let _ = writeln!(out, "{pad}{};", self.expr(e));
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let _ = writeln!(out, "{pad}if ({}) {{", self.expr(cond));
                self.block_body(out, then_block, level + 1);
                match else_block {
                    Some(e) => {
                        let _ = writeln!(out, "{pad}}} else {{");
                        self.block_body(out, e, level + 1);
                        let _ = writeln!(out, "{pad}}}");
                    }
                    None => {
                        let _ = writeln!(out, "{pad}}}");
                    }
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let init_str = match init {
                    Some(s) => {
                        let mut tmp = String::new();
                        self.stmt(&mut tmp, s, 0);
                        tmp.trim_end().trim_end_matches(';').to_string() + ";"
                    }
                    None => ";".to_string(),
                };
                let cond_str = cond.as_ref().map(|c| self.expr(c)).unwrap_or_default();
                let update_str = update.as_ref().map(|u| self.expr(u)).unwrap_or_default();
                let _ = writeln!(out, "{pad}for ({init_str} {cond_str}; {update_str}) {{");
                self.block_body(out, body, level + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while ({}) {{", self.expr(cond));
                self.block_body(out, body, level + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Block(b) => {
                let _ = writeln!(out, "{pad}{{");
                self.block_body(out, b, level + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Return(None) => {
                let _ = writeln!(out, "{pad}return;");
            }
            Stmt::Return(Some(e)) => {
                let _ = writeln!(out, "{pad}return {};", self.expr(e));
            }
            Stmt::Break => {
                let _ = writeln!(out, "{pad}break;");
            }
            Stmt::Continue => {
                let _ = writeln!(out, "{pad}continue;");
            }
            Stmt::Barrier(fence) => {
                let _ = writeln!(out, "{pad}barrier({});", fence.render());
            }
            Stmt::Emi(emi) => {
                let _ = writeln!(
                    out,
                    "{pad}if (dead[{}] < dead[{}]) {{ /* EMI block {} */",
                    emi.guard.0, emi.guard.1, emi.index
                );
                self.block_body(out, &emi.body, level + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }

    fn initializer(&self, init: &Initializer) -> String {
        match init {
            Initializer::Expr(e) => self.expr(e),
            Initializer::List(items) => {
                let rendered: Vec<String> = items.iter().map(|i| self.initializer(i)).collect();
                format!("{{{}}}", rendered.join(", "))
            }
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::IntLit { value, ty } => {
                let suffix = match (ty.is_signed(), ty.bits()) {
                    (false, 64) => "UL",
                    (true, 64) => "L",
                    (false, _) => "U",
                    (true, _) => "",
                };
                format!("{value}{suffix}")
            }
            Expr::VectorLit { elem, width, parts } => {
                let parts_str: Vec<String> = parts.iter().map(|p| self.expr(p)).collect();
                format!(
                    "(({}{})({}))",
                    elem.name(),
                    width.lanes(),
                    parts_str.join(", ")
                )
            }
            Expr::Var(name) => name.clone(),
            Expr::Unary { op, expr } => format!("({}{})", op.symbol(), self.expr(expr)),
            Expr::Binary { op, lhs, rhs } => {
                format!("({} {} {})", self.expr(lhs), op.symbol(), self.expr(rhs))
            }
            Expr::Assign { op, lhs, rhs } => {
                format!("{} {} {}", self.expr(lhs), op.symbol(), self.expr(rhs))
            }
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => format!(
                "({} ? {} : {})",
                self.expr(cond),
                self.expr(then_expr),
                self.expr(else_expr)
            ),
            Expr::Comma { lhs, rhs } => format!("({} , {})", self.expr(lhs), self.expr(rhs)),
            Expr::Call { name, args } => {
                let args_str: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{name}({})", args_str.join(", "))
            }
            Expr::BuiltinCall { func, args } => {
                let args_str: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{}({})", func.name(), args_str.join(", "))
            }
            Expr::IdQuery(kind) => self.id_query(*kind),
            Expr::Index { base, index } => {
                format!("{}[{}]", self.expr(base), self.expr(index))
            }
            Expr::Field { base, field, arrow } => {
                let sep = if *arrow { "->" } else { "." };
                format!("{}{sep}{field}", self.expr_grouped(base))
            }
            Expr::Deref(p) => format!("(*{})", self.expr(p)),
            Expr::AddrOf(lv) => format!("(&{})", self.expr(lv)),
            Expr::Cast { ty, expr } => format!("(({}){})", self.type_name(ty), self.expr(expr)),
            Expr::Swizzle { base, lanes } => {
                format!("{}.{}", self.expr_grouped(base), swizzle_suffix(lanes))
            }
        }
    }

    /// Like [`Self::expr`], but guarantees the rendered text binds tighter
    /// than member access (wraps casts and vector literals in parens).
    fn expr_grouped(&self, e: &Expr) -> String {
        match e {
            Expr::Var(_)
            | Expr::Index { .. }
            | Expr::Field { .. }
            | Expr::Call { .. }
            | Expr::BuiltinCall { .. } => self.expr(e),
            _ => format!("({})", self.expr(e)),
        }
    }

    fn id_query(&self, kind: IdKind) -> String {
        match kind {
            IdKind::GlobalId(d) => format!("get_global_id({})", d.index()),
            IdKind::LocalId(d) => format!("get_local_id({})", d.index()),
            IdKind::GroupId(d) => format!("get_group_id({})", d.index()),
            IdKind::GlobalSize(d) => format!("get_global_size({})", d.index()),
            IdKind::LocalSize(d) => format!("get_local_size({})", d.index()),
            IdKind::NumGroups(d) => format!("get_num_groups({})", d.index()),
            IdKind::GlobalLinearId => "((get_global_id(2) * get_global_size(1) + get_global_id(1)) * get_global_size(0) + get_global_id(0))".to_string(),
            IdKind::LocalLinearId => "((get_local_id(2) * get_local_size(1) + get_local_id(1)) * get_local_size(0) + get_local_id(0))".to_string(),
            IdKind::GroupLinearId => "((get_group_id(2) * get_num_groups(1) + get_group_id(1)) * get_num_groups(0) + get_group_id(0))".to_string(),
            IdKind::LinearGroupSize => "(get_local_size(0) * get_local_size(1) * get_local_size(2))".to_string(),
            IdKind::LinearGlobalSize => "(get_global_size(0) * get_global_size(1) * get_global_size(2))".to_string(),
        }
    }
}

fn swizzle_suffix(lanes: &[u8]) -> String {
    const XYZW: [char; 4] = ['x', 'y', 'z', 'w'];
    if lanes.len() == 1 && (lanes[0] as usize) < 4 {
        return XYZW[lanes[0] as usize].to_string();
    }
    if lanes.iter().all(|&l| (l as usize) < 4) && lanes.len() <= 4 {
        return lanes.iter().map(|&l| XYZW[l as usize]).collect();
    }
    // General form: .s0, .s1, ..., .sf
    let digits: String = lanes
        .iter()
        .map(|&l| std::char::from_digit(l as u32, 16).unwrap_or('0'))
        .collect();
    format!("s{digits}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Builtin, Dim};
    use crate::program::{KernelDef, LaunchConfig, Program};
    use crate::types::{Field, ScalarType, StructId, VectorWidth};

    fn empty_program() -> Program {
        Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::new(),
            },
            LaunchConfig::single_group(4),
        )
    }

    #[test]
    fn literal_suffixes() {
        let p = empty_program();
        assert_eq!(print_expr(&Expr::int(5), &p), "5");
        assert_eq!(print_expr(&Expr::lit(5, ScalarType::UInt), &p), "5U");
        assert_eq!(print_expr(&Expr::lit(5, ScalarType::ULong), &p), "5UL");
        assert_eq!(print_expr(&Expr::lit(-1, ScalarType::Long), &p), "-1L");
    }

    #[test]
    fn vector_literal_is_unambiguous() {
        // The paper's §6 front-end issue: (int2)(1,2).y must be emitted as
        // ((int2)(1, 2)).y so all front-ends agree.
        let p = empty_program();
        let lit = Expr::VectorLit {
            elem: ScalarType::Int,
            width: VectorWidth::W2,
            parts: vec![Expr::int(1), Expr::int(2)],
        };
        let access = Expr::lane(lit, 1);
        assert_eq!(print_expr(&access, &p), "(((int2)(1, 2))).y");
    }

    #[test]
    fn binary_fully_parenthesised() {
        let p = empty_program();
        let e = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(print_expr(&e, &p), "((a + b) * c)");
    }

    #[test]
    fn builtin_and_id_queries() {
        let p = empty_program();
        let e = Expr::builtin(
            Builtin::SafeClamp,
            vec![Expr::var("x"), Expr::int(0), Expr::int(9)],
        );
        assert_eq!(print_expr(&e, &p), "safe_clamp(x, 0, 9)");
        assert_eq!(
            print_expr(&Expr::IdQuery(crate::expr::IdKind::GlobalId(Dim::X)), &p),
            "get_global_id(0)"
        );
        assert!(
            print_expr(&Expr::IdQuery(crate::expr::IdKind::GlobalLinearId), &p)
                .contains("get_global_size(0)")
        );
    }

    #[test]
    fn struct_and_declarator_rendering() {
        let mut p = empty_program();
        let sid = p.add_struct(crate::types::StructDef::new(
            "S0",
            vec![
                Field::new("a", Type::Scalar(ScalarType::Char)),
                Field::volatile("c", Type::Scalar(ScalarType::Char)),
                Field::new("f", Type::Scalar(ScalarType::Short).array_of(10)),
            ],
        ));
        p.kernel.body.push(Stmt::decl("s", Type::Struct(sid), None));
        let src = print_program(&p);
        assert!(src.contains("struct S0 {"));
        assert!(src.contains("char a;"));
        assert!(src.contains("volatile char c;"));
        assert!(src.contains("short f[10];"));
        assert!(src.contains("struct S0 s;"));
        assert!(src.contains("kernel void k(global ulong* out)"));
    }

    #[test]
    fn statements_render() {
        let p = empty_program();
        let f = Stmt::For {
            init: Some(Box::new(Stmt::decl(
                "i",
                Type::Scalar(ScalarType::Int),
                Some(Expr::int(0)),
            ))),
            cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(10))),
            update: Some(Expr::assign_op(
                crate::expr::AssignOp::AddAssign,
                Expr::var("i"),
                Expr::int(1),
            )),
            body: Block::of(vec![Stmt::Barrier(crate::stmt::MemFence::Local)]),
        };
        let text = print_stmt(&f, &p);
        assert!(text.contains("for (int i = 0; (i < 10); i += 1) {"));
        assert!(text.contains("barrier(CLK_LOCAL_MEM_FENCE);"));
    }

    #[test]
    fn emi_block_renders_dead_guard() {
        let p = empty_program();
        let emi = Stmt::Emi(crate::stmt::EmiBlock {
            index: 3,
            guard: (5, 2),
            body: Block::of(vec![Stmt::Break]),
        });
        let text = print_stmt(&emi, &p);
        assert!(text.contains("if (dead[5] < dead[2])"));
        assert!(text.contains("break;"));
    }

    #[test]
    fn swizzle_suffixes() {
        assert_eq!(swizzle_suffix(&[0]), "x");
        assert_eq!(swizzle_suffix(&[3]), "w");
        assert_eq!(swizzle_suffix(&[0, 1]), "xy");
        assert_eq!(swizzle_suffix(&[7]), "s7");
        assert_eq!(swizzle_suffix(&[10, 15]), "saf");
    }

    #[test]
    fn preamble_contains_safe_macros() {
        let p = empty_program();
        let src = print_program(&p);
        assert!(src.contains("#define safe_div"));
        assert!(src.contains("#define safe_clamp"));
    }

    #[test]
    fn permutation_table_rendering() {
        let mut p = empty_program();
        p.permutations = vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]];
        let src = print_program(&p);
        assert!(src.contains("constant uint permutations[2][4]"));
        assert!(src.contains("{3, 2, 1, 0},"));
    }

    #[test]
    fn unknown_struct_panics_is_not_triggered_for_known() {
        let mut p = empty_program();
        let id = p.add_struct(crate::types::StructDef::union(
            "U0",
            vec![Field::new("a", Type::Scalar(ScalarType::UInt))],
        ));
        assert_eq!(id, StructId(0));
        p.kernel.body.push(Stmt::decl("u", Type::Struct(id), None));
        let src = print_program(&p);
        assert!(src.contains("union U0 {"));
        assert!(src.contains("union U0 u;"));
    }
}
