//! Whole-program representation: functions, the kernel, launch geometry and
//! host-side buffer setup.
//!
//! A [`Program`] is self-contained in the same sense as a CLsmith test case:
//! it carries everything needed to compile and run it (the kernel, helper
//! functions, struct definitions, NDRange dimensions, and the initial
//! contents of every buffer argument), so the harness needs no external
//! input files.

use crate::expr::Expr;
use crate::stmt::Block;
use crate::types::{AddressSpace, ScalarType, StructDef, StructId, Type};

/// A formal parameter of a function or kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (pointers carry their address space).
    pub ty: Type,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, ty: Type) -> Param {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// A non-kernel helper function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Return type; `None` is `void`.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Whether a separate forward declaration (prototype) is emitted before
    /// all function definitions.  Figure 2(c) of the paper shows a bug that
    /// only manifests when the callee is forward-declared, so the printer
    /// and the simulated compilers need to know about prototypes.
    pub forward_declared: bool,
    /// Whether the function may be inlined by optimisation passes.
    pub noinline: bool,
}

impl FunctionDef {
    /// Creates a function definition (not forward declared, inlinable).
    pub fn new(
        name: impl Into<String>,
        ret: Option<Type>,
        params: Vec<Param>,
        body: Block,
    ) -> FunctionDef {
        FunctionDef {
            name: name.into(),
            ret,
            params,
            body,
            forward_declared: false,
            noinline: false,
        }
    }
}

/// The kernel entry point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Parameters (buffer pointers and scalars).
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
}

/// NDRange launch geometry: global size and work-group size per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Global sizes `N = (Nx, Ny, Nz)`.
    pub global: [usize; 3],
    /// Work-group sizes `W = (Wx, Wy, Wz)`; each must divide the matching
    /// global size, and `Wx*Wy*Wz <= 256` (§4.1).
    pub local: [usize; 3],
}

impl LaunchConfig {
    /// Maximum supported work-group size (the paper constrains generation to
    /// the minimum across all tested configurations, 256).
    pub const MAX_GROUP_SIZE: usize = 256;

    /// Creates and validates a launch configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if a dimension is
    /// zero, a group size does not divide the global size, or the group is
    /// larger than [`Self::MAX_GROUP_SIZE`].
    pub fn new(global: [usize; 3], local: [usize; 3]) -> Result<LaunchConfig, String> {
        let cfg = LaunchConfig { global, local };
        cfg.validate()?;
        Ok(cfg)
    }

    /// A single work-group of `n` work-items in the x dimension.
    pub fn single_group(n: usize) -> LaunchConfig {
        LaunchConfig {
            global: [n, 1, 1],
            local: [n, 1, 1],
        }
    }

    /// Validates the divisibility and size constraints.
    ///
    /// # Errors
    ///
    /// See [`LaunchConfig::new`].
    pub fn validate(&self) -> Result<(), String> {
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(format!("dimension {d} has zero size"));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(format!(
                    "work-group size {} does not divide global size {} in dimension {d}",
                    self.local[d], self.global[d]
                ));
            }
        }
        if self.group_size() > Self::MAX_GROUP_SIZE {
            return Err(format!(
                "work-group size {} exceeds the maximum {}",
                self.group_size(),
                Self::MAX_GROUP_SIZE
            ));
        }
        Ok(())
    }

    /// Total number of work-items, `N_linear`.
    pub fn total_work_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Work-items per group, `W_linear`.
    pub fn group_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Number of groups per dimension.
    pub fn groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total number of work-groups.
    pub fn total_groups(&self) -> usize {
        let g = self.groups();
        g[0] * g[1] * g[2]
    }
}

/// How the host initialises a kernel buffer argument before launch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BufferInit {
    /// All elements zero.
    Zero,
    /// Element `j` holds `j` (used for the EMI `dead` array: `dead[j] = j`).
    Iota,
    /// Element `j` holds `len - 1 - j` (the "inverted" dead array used in
    /// §7.4 to check whether EMI blocks were placed at live points).
    ReverseIota,
    /// Every element holds the same value.
    Fill(i64),
    /// Explicit element data (length must match the buffer length).
    Data(Vec<i64>),
}

impl BufferInit {
    /// Materialises the initial contents for a buffer of `len` elements.
    pub fn materialize(&self, len: usize) -> Vec<i64> {
        match self {
            BufferInit::Zero => vec![0; len],
            BufferInit::Iota => (0..len as i64).collect(),
            BufferInit::ReverseIota => (0..len as i64).rev().collect(),
            BufferInit::Fill(v) => vec![*v; len],
            BufferInit::Data(d) => {
                let mut out = d.clone();
                out.resize(len, 0);
                out
            }
        }
    }
}

/// Host-side description of one kernel buffer argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufferSpec {
    /// Name of the kernel parameter this buffer binds to.
    pub param: String,
    /// Element scalar type.
    pub elem: ScalarType,
    /// Number of elements.
    pub len: usize,
    /// Initial contents.
    pub init: BufferInit,
    /// Whether the harness reads this buffer back and includes it in the
    /// result string (true for CLsmith's `out` array).
    pub is_result: bool,
}

impl BufferSpec {
    /// Creates a buffer specification that is not part of the result.
    pub fn new(
        param: impl Into<String>,
        elem: ScalarType,
        len: usize,
        init: BufferInit,
    ) -> BufferSpec {
        BufferSpec {
            param: param.into(),
            elem,
            len,
            init,
            is_result: false,
        }
    }

    /// Creates the result (output) buffer specification.
    pub fn result(param: impl Into<String>, elem: ScalarType, len: usize) -> BufferSpec {
        BufferSpec {
            param: param.into(),
            elem,
            len,
            init: BufferInit::Zero,
            is_result: true,
        }
    }
}

/// A complete, self-contained OpenCL C program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// Struct and union definitions, indexed by [`StructId`].
    pub structs: Vec<StructDef>,
    /// Helper functions (in definition order).
    pub functions: Vec<FunctionDef>,
    /// The kernel entry point.
    pub kernel: KernelDef,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Host-side buffer setup, one entry per pointer parameter of the kernel.
    pub buffers: Vec<BufferSpec>,
    /// BARRIER-mode permutation table (`d` rows of `W_linear` entries each);
    /// empty when the program does not use the barrier communication idiom.
    pub permutations: Vec<Vec<u32>>,
    /// Length of the EMI `dead` array parameter, or 0 when absent.
    pub dead_len: usize,
}

impl Program {
    /// Creates a program with no helper functions, buffers or permutations.
    pub fn new(kernel: KernelDef, launch: LaunchConfig) -> Program {
        Program {
            structs: Vec::new(),
            functions: Vec::new(),
            kernel,
            launch,
            buffers: Vec::new(),
            permutations: Vec::new(),
            dead_len: 0,
        }
    }

    /// Looks up a struct definition.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.0]
    }

    /// Adds a struct definition and returns its id.
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        self.structs.push(def);
        StructId(self.structs.len() - 1)
    }

    /// Looks up a helper function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The buffer specification bound to a kernel parameter, if any.
    pub fn buffer_for(&self, param: &str) -> Option<&BufferSpec> {
        self.buffers.iter().find(|b| b.param == param)
    }

    /// The name of the result buffer parameter (CLsmith's `out`), if any.
    pub fn result_param(&self) -> Option<&str> {
        self.buffers
            .iter()
            .find(|b| b.is_result)
            .map(|b| b.param.as_str())
    }

    /// Whether the kernel has an EMI `dead` array parameter.
    pub fn has_dead_array(&self) -> bool {
        self.dead_len > 0
    }

    /// All EMI blocks in the program (kernel and helper functions), in
    /// pre-order.
    pub fn emi_blocks(&self) -> Vec<&crate::stmt::EmiBlock> {
        fn walk<'a>(block: &'a Block, out: &mut Vec<&'a crate::stmt::EmiBlock>) {
            for s in block.iter() {
                match s {
                    crate::stmt::Stmt::Emi(emi) => {
                        out.push(emi);
                        walk(&emi.body, out);
                    }
                    crate::stmt::Stmt::If {
                        then_block,
                        else_block,
                        ..
                    } => {
                        walk(then_block, out);
                        if let Some(b) = else_block {
                            walk(b, out);
                        }
                    }
                    crate::stmt::Stmt::For { init, body, .. } => {
                        if let Some(init) = init {
                            if let crate::stmt::Stmt::Emi(emi) = init.as_ref() {
                                out.push(emi);
                            }
                        }
                        walk(body, out);
                    }
                    crate::stmt::Stmt::While { body, .. } => walk(body, out),
                    crate::stmt::Stmt::Block(b) => walk(b, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for f in &self.functions {
            walk(&f.body, &mut out);
        }
        walk(&self.kernel.body, &mut out);
        out
    }

    /// Total number of statement nodes across the kernel and all helpers.
    pub fn statement_count(&self) -> usize {
        self.kernel.body.node_count()
            + self
                .functions
                .iter()
                .map(|f| f.body.node_count())
                .sum::<usize>()
    }

    /// Calls `f` on every expression in the program (kernel and helpers).
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        for func in &self.functions {
            for s in func.body.iter() {
                s.for_each_expr(true, f);
            }
        }
        for s in self.kernel.body.iter() {
            s.for_each_expr(true, f);
        }
    }

    /// Calls `f` mutably on every expression in the program.
    pub fn for_each_expr_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        for func in &mut self.functions {
            func.body.for_each_expr_mut(f);
        }
        self.kernel.body.for_each_expr_mut(f);
    }

    /// Calls `f` on every statement in the program.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&crate::stmt::Stmt)) {
        for func in &self.functions {
            func.body.for_each(f);
        }
        self.kernel.body.for_each(f);
    }

    /// Calls `f` mutably on every [`Block`] in the program (kernel, helper
    /// bodies, and all nested blocks), children-first so structural rewrites
    /// (statement insertion / removal) compose.
    pub fn for_each_block_mut(&mut self, f: &mut impl FnMut(&mut Block)) {
        fn walk(block: &mut Block, f: &mut impl FnMut(&mut Block)) {
            for s in &mut block.stmts {
                match s {
                    crate::stmt::Stmt::If {
                        then_block,
                        else_block,
                        ..
                    } => {
                        walk(then_block, f);
                        if let Some(b) = else_block {
                            walk(b, f);
                        }
                    }
                    crate::stmt::Stmt::For { body, .. } | crate::stmt::Stmt::While { body, .. } => {
                        walk(body, f)
                    }
                    crate::stmt::Stmt::Block(b) => walk(b, f),
                    crate::stmt::Stmt::Emi(emi) => walk(&mut emi.body, f),
                    _ => {}
                }
            }
            f(block);
        }
        for func in &mut self.functions {
            walk(&mut func.body, f);
        }
        walk(&mut self.kernel.body, f);
    }

    /// Standard kernel parameter list for CLsmith-style programs: the
    /// result buffer plus, when `dead_len > 0`, the EMI dead array.
    pub fn standard_clsmith_params(dead_len: usize) -> Vec<Param> {
        let mut params = vec![Param::new(
            "out",
            Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
        )];
        if dead_len > 0 {
            params.push(Param::new(
                "dead",
                Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Global),
            ));
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::{EmiBlock, Stmt};

    fn trivial_kernel() -> KernelDef {
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: Block::of(vec![Stmt::assign(
                Expr::index(Expr::var("out"), Expr::int(0)),
                Expr::int(42),
            )]),
        }
    }

    #[test]
    fn launch_config_validation() {
        assert!(LaunchConfig::new([64, 2, 2], [16, 2, 2]).is_ok());
        assert!(LaunchConfig::new([64, 2, 2], [5, 2, 2]).is_err());
        assert!(LaunchConfig::new([0, 1, 1], [1, 1, 1]).is_err());
        // 8*8*8 = 512 > 256
        assert!(LaunchConfig::new([8, 8, 8], [8, 8, 8]).is_err());
        let cfg = LaunchConfig::new([64, 2, 2], [16, 2, 2]).unwrap();
        assert_eq!(cfg.total_work_items(), 256);
        assert_eq!(cfg.group_size(), 64);
        assert_eq!(cfg.groups(), [4, 1, 1]);
        assert_eq!(cfg.total_groups(), 4);
    }

    #[test]
    fn buffer_init_materialisation() {
        assert_eq!(BufferInit::Zero.materialize(3), vec![0, 0, 0]);
        assert_eq!(BufferInit::Iota.materialize(4), vec![0, 1, 2, 3]);
        assert_eq!(BufferInit::ReverseIota.materialize(4), vec![3, 2, 1, 0]);
        assert_eq!(BufferInit::Fill(7).materialize(2), vec![7, 7]);
        assert_eq!(BufferInit::Data(vec![5]).materialize(3), vec![5, 0, 0]);
    }

    #[test]
    fn program_struct_and_buffer_lookup() {
        let mut p = Program::new(trivial_kernel(), LaunchConfig::single_group(4));
        let id = p.add_struct(StructDef::new("S0", vec![]));
        assert_eq!(p.struct_def(id).name, "S0");
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));
        assert_eq!(p.result_param(), Some("out"));
        assert!(p.buffer_for("out").is_some());
        assert!(p.buffer_for("missing").is_none());
        assert!(!p.has_dead_array());
    }

    #[test]
    fn emi_block_collection_is_recursive() {
        let mut p = Program::new(trivial_kernel(), LaunchConfig::single_group(4));
        p.dead_len = 8;
        let inner = EmiBlock {
            index: 1,
            guard: (5, 2),
            body: Block::new(),
        };
        let outer = EmiBlock {
            index: 0,
            guard: (4, 1),
            body: Block::of(vec![Stmt::Emi(inner)]),
        };
        p.kernel.body.push(Stmt::Emi(outer));
        let blocks = p.emi_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].index, 0);
        assert_eq!(blocks[1].index, 1);
        assert!(p.has_dead_array());
    }

    #[test]
    fn block_mutation_visits_nested_blocks() {
        let mut p = Program::new(trivial_kernel(), LaunchConfig::single_group(4));
        p.kernel.body.push(Stmt::if_then(
            Expr::int(1),
            Block::of(vec![Stmt::Block(Block::new())]),
        ));
        let mut blocks_seen = 0;
        p.for_each_block_mut(&mut |_| blocks_seen += 1);
        // kernel body + if-then block + nested empty block
        assert_eq!(blocks_seen, 3);
    }
}
