//! A lightweight type checker for the OpenCL C subset.
//!
//! The generator is type-directed and should only produce well-typed
//! programs; the checker provides an independent validation used by the
//! generator's property tests, by the EMI pruner (pruning must not produce
//! ill-typed code) and by the reducer.  It implements the typing rules the
//! paper relies on, most importantly the rule that vector types do **not**
//! implicitly convert to one another (§4.1: "it is not possible to cast an
//! `int4` to a `short4` or even a `uint4`"), while scalar integer types
//! convert freely as in C99.

use crate::expr::{BinOp, Builtin, Expr, IdKind, UnOp};
use crate::program::{FunctionDef, Program};
use crate::stmt::{Block, Initializer, Stmt};
use crate::types::{AddressSpace, ScalarType, Type, VectorWidth};
use std::collections::HashMap;
use std::fmt;

/// A type error found by [`check_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description of the problem.
    pub message: String,
    /// The function (or kernel) in which the error occurred.
    pub in_function: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error in `{}`: {}", self.in_function, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Checks a whole program.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn check_program(program: &Program) -> Result<(), TypeError> {
    let mut checker = Checker::new(program);
    for f in &program.functions {
        checker.check_function(f)?;
    }
    checker.check_kernel()?;
    Ok(())
}

/// Infers the type of an expression in the context of a function of the
/// program.  Exposed for use by the reducer and by tests.
///
/// # Errors
///
/// Returns a [`TypeError`] when the expression is ill-typed.
pub fn type_of_expr_in_kernel(program: &Program, expr: &Expr) -> Result<Type, TypeError> {
    let mut checker = Checker::new(program);
    checker.enter_function("kernel", &program.kernel.params);
    // Bring kernel-body declarations into scope so callers can query
    // arbitrary sub-expressions.
    checker.collect_decls(&program.kernel.body);
    checker.type_of(expr)
}

struct Checker<'p> {
    program: &'p Program,
    /// Current variable scope (flat map; the generator never reuses names
    /// across scopes within a function, and shadowing resolves to the most
    /// recent declaration which matches C semantics closely enough).
    vars: HashMap<String, Type>,
    current: String,
    functions: HashMap<String, (Option<Type>, Vec<Type>)>,
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Checker<'p> {
        let functions = program
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    (
                        f.ret.clone(),
                        f.params.iter().map(|p| p.ty.clone()).collect(),
                    ),
                )
            })
            .collect();
        Checker {
            program,
            vars: HashMap::new(),
            current: String::new(),
            functions,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TypeError> {
        Err(TypeError {
            message: message.into(),
            in_function: self.current.clone(),
        })
    }

    fn enter_function(&mut self, name: &str, params: &[crate::program::Param]) {
        self.current = name.to_string();
        self.vars.clear();
        // The BARRIER-mode permutation table is a program-scope constant
        // array visible everywhere (the printer emits it at file scope).
        if !self.program.permutations.is_empty() {
            let rows = self.program.permutations.len();
            let cols = self.program.permutations[0].len();
            self.vars.insert(
                "permutations".to_string(),
                Type::Scalar(ScalarType::UInt).array_of(cols).array_of(rows),
            );
        }
        for p in params {
            self.vars.insert(p.name.clone(), p.ty.clone());
        }
    }

    fn collect_decls(&mut self, block: &Block) {
        block.for_each(&mut |s| {
            if let Stmt::Decl { name, ty, .. } = s {
                self.vars.insert(name.clone(), ty.clone());
            }
        });
    }

    fn check_function(&mut self, f: &FunctionDef) -> Result<(), TypeError> {
        self.enter_function(&f.name, &f.params);
        self.check_block(&f.body, f.ret.as_ref())
    }

    fn check_kernel(&mut self) -> Result<(), TypeError> {
        let kernel = &self.program.kernel;
        self.enter_function(&kernel.name, &kernel.params);
        self.check_block(&kernel.body, None)
    }

    fn check_block(&mut self, block: &Block, ret: Option<&Type>) -> Result<(), TypeError> {
        for stmt in block.iter() {
            self.check_stmt(stmt, ret)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt, ret: Option<&Type>) -> Result<(), TypeError> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                init_list,
                space,
                ..
            } => {
                if *space == AddressSpace::Constant {
                    return self.err(format!("local declaration `{name}` cannot be constant"));
                }
                if let Some(e) = init {
                    let ity = self.type_of(e)?;
                    self.check_assignable(ty, &ity, &format!("initialiser of `{name}`"))?;
                }
                if let Some(list) = init_list {
                    self.check_initializer(ty, list)?;
                }
                self.vars.insert(name.clone(), ty.clone());
                Ok(())
            }
            Stmt::Expr(e) => {
                self.type_of(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.check_condition(cond)?;
                self.check_block(then_block, ret)?;
                if let Some(b) = else_block {
                    self.check_block(b, ret)?;
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.check_stmt(init, ret)?;
                }
                if let Some(c) = cond {
                    self.check_condition(c)?;
                }
                if let Some(u) = update {
                    self.type_of(u)?;
                }
                self.check_block(body, ret)
            }
            Stmt::While { cond, body } => {
                self.check_condition(cond)?;
                self.check_block(body, ret)
            }
            Stmt::Block(b) => self.check_block(b, ret),
            Stmt::Return(None) => {
                if ret.is_some() {
                    self.err("non-void function returns without a value")
                } else {
                    Ok(())
                }
            }
            Stmt::Return(Some(e)) => {
                let ety = self.type_of(e)?;
                match ret {
                    Some(rty) => self.check_assignable(rty, &ety, "return value"),
                    None => self.err("void function returns a value"),
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::Barrier(_) => Ok(()),
            Stmt::Emi(emi) => {
                if !self.program.has_dead_array() {
                    return self.err("EMI block present but the kernel has no dead array");
                }
                if emi.guard.0 >= self.program.dead_len || emi.guard.1 >= self.program.dead_len {
                    return self.err(format!(
                        "EMI guard indices {:?} out of range for dead array of length {}",
                        emi.guard, self.program.dead_len
                    ));
                }
                self.check_block(&emi.body, ret)
            }
        }
    }

    fn check_condition(&mut self, cond: &Expr) -> Result<(), TypeError> {
        let ty = self.type_of(cond)?;
        match ty {
            Type::Scalar(_) | Type::Pointer(..) => Ok(()),
            other => self.err(format!(
                "condition must be scalar or pointer, found {}",
                other.render(&self.program.structs)
            )),
        }
    }

    fn check_initializer(&mut self, ty: &Type, init: &Initializer) -> Result<(), TypeError> {
        match (ty, init) {
            (_, Initializer::Expr(e)) => {
                let ety = self.type_of(e)?;
                self.check_assignable(ty, &ety, "brace initialiser element")
            }
            (Type::Array(elem, len), Initializer::List(items)) => {
                if items.len() > *len {
                    return self.err(format!("too many initialisers for array of length {len}"));
                }
                for item in items {
                    self.check_initializer(elem, item)?;
                }
                Ok(())
            }
            (Type::Struct(id), Initializer::List(items)) => {
                let def = self.program.struct_def(*id);
                let max = if def.is_union { 1 } else { def.fields.len() };
                if items.len() > max {
                    return self.err(format!(
                        "too many initialisers for {} `{}`",
                        if def.is_union { "union" } else { "struct" },
                        def.name
                    ));
                }
                for (field, item) in def.fields.iter().zip(items) {
                    self.check_initializer(&field.ty, item)?;
                }
                Ok(())
            }
            (Type::Vector(elem, width), Initializer::List(items)) => {
                if items.len() > width.lanes() {
                    return self.err("too many initialisers for vector");
                }
                for item in items {
                    self.check_initializer(&Type::Scalar(*elem), item)?;
                }
                Ok(())
            }
            (other, Initializer::List(_)) => self.err(format!(
                "brace initialiser applied to non-aggregate type {}",
                other.render(&self.program.structs)
            )),
        }
    }

    /// Scalar types convert implicitly; everything else must match exactly,
    /// except that any scalar may initialise a vector (broadcast) and
    /// pointers must agree on pointee and address space.
    fn check_assignable(&self, target: &Type, source: &Type, what: &str) -> Result<(), TypeError> {
        let ok = match (target, source) {
            (Type::Scalar(_), Type::Scalar(_)) => true,
            (Type::Vector(te, tw), Type::Vector(se, sw)) => te == se && tw == sw,
            (Type::Vector(..), Type::Scalar(_)) => true,
            (Type::Struct(a), Type::Struct(b)) => a == b,
            (Type::Pointer(a, _), Type::Pointer(b, _)) => a == b,
            // The null-pointer constant (integer literal 0); the emulator
            // rejects any other integer-to-pointer store at run time.
            (Type::Pointer(..), Type::Scalar(_)) => true,
            (Type::Array(a, n), Type::Array(b, m)) => a == b && n == m,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            self.err(format!(
                "{what}: cannot assign {} to {}",
                source.render(&self.program.structs),
                target.render(&self.program.structs)
            ))
        }
    }

    fn type_of(&mut self, e: &Expr) -> Result<Type, TypeError> {
        match e {
            Expr::IntLit { ty, .. } => Ok(Type::Scalar(*ty)),
            Expr::VectorLit { elem, width, parts } => {
                let mut lanes = 0usize;
                for p in parts {
                    match self.type_of(p)? {
                        Type::Scalar(_) => lanes += 1,
                        Type::Vector(pe, pw) => {
                            if pe != *elem {
                                return self
                                    .err("vector literal component has mismatched element type");
                            }
                            lanes += pw.lanes();
                        }
                        other => {
                            return self.err(format!(
                                "vector literal component has non-numeric type {}",
                                other.render(&self.program.structs)
                            ))
                        }
                    }
                }
                if lanes != width.lanes() && lanes != 1 {
                    return self.err(format!(
                        "vector literal provides {lanes} lanes for a {}-lane vector",
                        width.lanes()
                    ));
                }
                Ok(Type::Vector(*elem, *width))
            }
            Expr::Var(name) => match self.vars.get(name) {
                Some(ty) => Ok(ty.clone()),
                None => self.err(format!("use of undeclared variable `{name}`")),
            },
            Expr::Unary { op, expr } => {
                let ty = self.type_of(expr)?;
                match (op, &ty) {
                    (UnOp::LNot, Type::Scalar(_)) => Ok(Type::Scalar(ScalarType::Int)),
                    (_, Type::Scalar(s)) => Ok(Type::Scalar(s.promoted())),
                    (_, Type::Vector(..)) => Ok(ty),
                    _ => self.err(format!(
                        "unary `{}` applied to non-numeric type {}",
                        op.symbol(),
                        ty.render(&self.program.structs)
                    )),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.type_of(lhs)?;
                let rt = self.type_of(rhs)?;
                self.binary_result(*op, &lt, &rt)
            }
            Expr::Assign { op, lhs, rhs } => {
                if !lhs.is_lvalue() {
                    return self.err("assignment target is not an lvalue");
                }
                let lt = self.type_of(lhs)?;
                let rt = self.type_of(rhs)?;
                if op.binop().is_some() {
                    // Compound assignment requires numeric operands.
                    if !(lt.is_scalar() || lt.is_vector()) {
                        return self.err("compound assignment to non-numeric lvalue");
                    }
                }
                self.check_assignable(&lt, &rt, "assignment")?;
                Ok(lt)
            }
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                let ct = self.type_of(cond)?;
                if !(ct.is_scalar() || ct.is_pointer()) {
                    return self.err("conditional guard must be scalar");
                }
                let tt = self.type_of(then_expr)?;
                let et = self.type_of(else_expr)?;
                match (&tt, &et) {
                    (Type::Scalar(a), Type::Scalar(b)) => {
                        Ok(Type::Scalar(a.usual_arithmetic_conversion(*b)))
                    }
                    _ if tt == et => Ok(tt),
                    _ => self.err("conditional branches have incompatible types"),
                }
            }
            Expr::Comma { lhs, rhs } => {
                self.type_of(lhs)?;
                self.type_of(rhs)
            }
            Expr::Call { name, args } => {
                let (ret, param_tys) = match self.functions.get(name) {
                    Some(sig) => sig.clone(),
                    None => return self.err(format!("call to undefined function `{name}`")),
                };
                if args.len() != param_tys.len() {
                    return self.err(format!(
                        "call to `{name}` has {} arguments, expected {}",
                        args.len(),
                        param_tys.len()
                    ));
                }
                for (arg, pty) in args.iter().zip(&param_tys) {
                    let aty = self.type_of(arg)?;
                    self.check_assignable(pty, &aty, &format!("argument of `{name}`"))?;
                }
                Ok(ret.unwrap_or(Type::Scalar(ScalarType::Int)))
            }
            Expr::BuiltinCall { func, args } => self.builtin_result(*func, args),
            Expr::IdQuery(kind) => Ok(Type::Scalar(id_query_type(*kind))),
            Expr::Index { base, index } => {
                let bt = self.type_of(base)?;
                let it = self.type_of(index)?;
                if !it.is_scalar() {
                    return self.err("array index must be scalar");
                }
                match bt {
                    Type::Array(elem, _) => Ok(*elem),
                    Type::Pointer(elem, _) => Ok(*elem),
                    other => self.err(format!(
                        "indexing non-array type {}",
                        other.render(&self.program.structs)
                    )),
                }
            }
            Expr::Field { base, field, arrow } => {
                let bt = self.type_of(base)?;
                let sid = match (&bt, arrow) {
                    (Type::Struct(id), false) => *id,
                    (Type::Pointer(inner, _), true) => match inner.as_ref() {
                        Type::Struct(id) => *id,
                        _ => return self.err("`->` applied to pointer to non-struct"),
                    },
                    _ => {
                        return self.err(format!(
                            "field access on {} with {}",
                            bt.render(&self.program.structs),
                            if *arrow { "->" } else { "." }
                        ))
                    }
                };
                match self.program.struct_def(sid).field(field) {
                    Some(f) => Ok(f.ty.clone()),
                    None => self.err(format!(
                        "no field `{field}` in `{}`",
                        self.program.struct_def(sid).name
                    )),
                }
            }
            Expr::Deref(p) => {
                let pt = self.type_of(p)?;
                match pt {
                    Type::Pointer(inner, _) => Ok(*inner),
                    other => self.err(format!(
                        "dereference of non-pointer type {}",
                        other.render(&self.program.structs)
                    )),
                }
            }
            Expr::AddrOf(lv) => {
                if !lv.is_lvalue() {
                    return self.err("address-of applied to non-lvalue");
                }
                let lt = self.type_of(lv)?;
                Ok(lt.pointer_to(AddressSpace::Private))
            }
            Expr::Cast { ty, expr } => {
                let et = self.type_of(expr)?;
                match (ty, &et) {
                    // Scalar <-> scalar casts always allowed.
                    (Type::Scalar(_), Type::Scalar(_)) => Ok(ty.clone()),
                    // Vector casts only between identical layouts (OpenCL
                    // forbids implicit and reinterpreting casts; the
                    // generator only emits same-type casts which are no-ops).
                    (Type::Vector(te, tw), Type::Vector(se, sw)) if te == se && tw == sw => {
                        Ok(ty.clone())
                    }
                    // Scalar -> vector broadcast cast.
                    (Type::Vector(..), Type::Scalar(_)) => Ok(ty.clone()),
                    (Type::Pointer(..), Type::Pointer(..)) => Ok(ty.clone()),
                    _ => self.err(format!(
                        "illegal cast from {} to {}",
                        et.render(&self.program.structs),
                        ty.render(&self.program.structs)
                    )),
                }
            }
            Expr::Swizzle { base, lanes } => {
                let bt = self.type_of(base)?;
                match bt {
                    Type::Vector(elem, width) => {
                        if lanes.iter().any(|&l| l as usize >= width.lanes()) {
                            return self.err("swizzle lane out of range");
                        }
                        match lanes.len() {
                            1 => Ok(Type::Scalar(elem)),
                            n => match VectorWidth::from_lanes(n) {
                                Some(w) => Ok(Type::Vector(elem, w)),
                                None => self.err("swizzle produces unsupported vector width"),
                            },
                        }
                    }
                    other => self.err(format!(
                        "swizzle applied to non-vector type {}",
                        other.render(&self.program.structs)
                    )),
                }
            }
        }
    }

    fn binary_result(&self, op: BinOp, lt: &Type, rt: &Type) -> Result<Type, TypeError> {
        if op.is_comparison() || op.is_logical() {
            return match (lt, rt) {
                (Type::Scalar(_), Type::Scalar(_)) => Ok(Type::Scalar(ScalarType::Int)),
                (Type::Vector(e, w), Type::Vector(e2, w2)) if e == e2 && w == w2 => {
                    Ok(Type::Vector(e.to_signed(), *w))
                }
                (Type::Vector(e, w), Type::Scalar(_)) | (Type::Scalar(_), Type::Vector(e, w)) => {
                    Ok(Type::Vector(e.to_signed(), *w))
                }
                (Type::Pointer(..), Type::Pointer(..)) => Ok(Type::Scalar(ScalarType::Int)),
                _ => self.err(format!(
                    "comparison between {} and {}",
                    lt.render(&self.program.structs),
                    rt.render(&self.program.structs)
                )),
            };
        }
        match (lt, rt) {
            (Type::Scalar(a), Type::Scalar(b)) => {
                Ok(Type::Scalar(a.usual_arithmetic_conversion(*b)))
            }
            (Type::Vector(e, w), Type::Vector(e2, w2)) => {
                if e == e2 && w == w2 {
                    Ok(Type::Vector(*e, *w))
                } else {
                    self.err("vector operands of different types (no implicit vector conversion)")
                }
            }
            (Type::Vector(e, w), Type::Scalar(_)) | (Type::Scalar(_), Type::Vector(e, w)) => {
                Ok(Type::Vector(*e, *w))
            }
            // Pointer arithmetic: pointer +/- integer.
            (Type::Pointer(..), Type::Scalar(_)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                Ok(lt.clone())
            }
            _ => self.err(format!(
                "operator `{}` applied to {} and {}",
                op.symbol(),
                lt.render(&self.program.structs),
                rt.render(&self.program.structs)
            )),
        }
    }

    fn builtin_result(&mut self, func: Builtin, args: &[Expr]) -> Result<Type, TypeError> {
        if args.len() != func.arity() {
            return self.err(format!(
                "builtin `{}` called with {} arguments, expected {}",
                func.name(),
                args.len(),
                func.arity()
            ));
        }
        let tys: Vec<Type> = args
            .iter()
            .map(|a| self.type_of(a))
            .collect::<Result<_, _>>()?;
        if func.is_atomic() {
            // First argument must be a pointer to a 32-bit integer in shared
            // memory; result is the old value.
            match &tys[0] {
                Type::Pointer(inner, space) => {
                    let ok_elem = matches!(
                        inner.as_ref(),
                        Type::Scalar(ScalarType::Int) | Type::Scalar(ScalarType::UInt)
                    );
                    if !ok_elem {
                        return self.err("atomic operates on non-32-bit integer location");
                    }
                    if !space.is_shared() && *space != AddressSpace::Private {
                        return self.err("atomic operates on constant memory");
                    }
                    Ok((**inner).clone())
                }
                _ => self.err(format!("atomic `{}` needs a pointer argument", func.name())),
            }
        } else {
            match func {
                Builtin::Abs => match &tys[0] {
                    Type::Scalar(s) => Ok(Type::Scalar(s.to_unsigned())),
                    Type::Vector(s, w) => Ok(Type::Vector(s.to_unsigned(), *w)),
                    _ => self.err("abs of non-numeric value"),
                },
                _ => {
                    // Safe-math, clamp, rotate, min, max: result type follows
                    // the first argument; all arguments must be numeric and,
                    // for vectors, of identical type.
                    let first = &tys[0];
                    if !(first.is_scalar() || first.is_vector()) {
                        return self.err(format!("builtin `{}` on non-numeric value", func.name()));
                    }
                    for t in &tys[1..] {
                        match (first, t) {
                            (Type::Vector(e, w), Type::Vector(e2, w2)) => {
                                if e != e2 || w != w2 {
                                    return self.err("builtin vector arguments differ in type");
                                }
                            }
                            (_, Type::Scalar(_)) | (Type::Scalar(_), _) => {}
                            _ => return self.err("builtin argument is not numeric"),
                        }
                    }
                    Ok(first.clone())
                }
            }
        }
    }
}

fn id_query_type(kind: IdKind) -> ScalarType {
    // All id and size queries return size_t in OpenCL C; we model size_t as
    // ulong (64-bit unsigned).
    let _ = kind;
    ScalarType::ULong
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{KernelDef, LaunchConfig, Param};
    use crate::types::{Field, StructDef};

    fn program_with_body(body: Block) -> Program {
        Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body,
            },
            LaunchConfig::single_group(4),
        )
    }

    #[test]
    fn accepts_simple_kernel() {
        let body = Block::of(vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                Expr::var("x"),
            ),
        ]);
        assert!(check_program(&program_with_body(body)).is_ok());
    }

    #[test]
    fn rejects_undeclared_variable() {
        let body = Block::of(vec![Stmt::assign(Expr::var("nope"), Expr::int(1))]);
        let err = check_program(&program_with_body(body)).unwrap_err();
        assert!(err.message.contains("undeclared"));
        assert_eq!(err.in_function, "k");
    }

    #[test]
    fn rejects_vector_type_mismatch() {
        let body = Block::of(vec![
            Stmt::decl("a", Type::Vector(ScalarType::Int, VectorWidth::W4), None),
            Stmt::decl("b", Type::Vector(ScalarType::Short, VectorWidth::W4), None),
            Stmt::expr(Expr::binary(BinOp::Add, Expr::var("a"), Expr::var("b"))),
        ]);
        let err = check_program(&program_with_body(body)).unwrap_err();
        assert!(err.message.contains("vector"));
    }

    #[test]
    fn scalar_conversions_are_implicit() {
        let body = Block::of(vec![
            Stmt::decl("c", Type::Scalar(ScalarType::Char), Some(Expr::int(3))),
            Stmt::decl("l", Type::Scalar(ScalarType::ULong), Some(Expr::var("c"))),
            Stmt::expr(Expr::binary(BinOp::Mul, Expr::var("c"), Expr::var("l"))),
        ]);
        assert!(check_program(&program_with_body(body)).is_ok());
    }

    #[test]
    fn checks_struct_fields() {
        let mut p = program_with_body(Block::new());
        let sid = p.add_struct(StructDef::new(
            "S",
            vec![Field::new("a", Type::Scalar(ScalarType::Int))],
        ));
        p.kernel.body.push(Stmt::decl("s", Type::Struct(sid), None));
        p.kernel
            .body
            .push(Stmt::assign(Expr::field(Expr::var("s"), "a"), Expr::int(1)));
        assert!(check_program(&p).is_ok());
        p.kernel.body.push(Stmt::assign(
            Expr::field(Expr::var("s"), "zz"),
            Expr::int(1),
        ));
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn checks_calls() {
        let mut p = program_with_body(Block::new());
        p.functions.push(FunctionDef::new(
            "f",
            Some(Type::Scalar(ScalarType::Int)),
            vec![Param::new("x", Type::Scalar(ScalarType::Int))],
            Block::of(vec![Stmt::Return(Some(Expr::var("x")))]),
        ));
        p.kernel
            .body
            .push(Stmt::expr(Expr::call("f", vec![Expr::int(1)])));
        assert!(check_program(&p).is_ok());
        p.kernel.body.push(Stmt::expr(Expr::call(
            "f",
            vec![Expr::int(1), Expr::int(2)],
        )));
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn rejects_bad_emi_guard() {
        let mut p = program_with_body(Block::new());
        p.dead_len = 4;
        p.kernel.params = Program::standard_clsmith_params(4);
        p.kernel.body.push(Stmt::Emi(crate::stmt::EmiBlock {
            index: 0,
            guard: (9, 1),
            body: Block::new(),
        }));
        let err = check_program(&p).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn checks_swizzles_and_vector_literals() {
        let body = Block::of(vec![
            Stmt::decl(
                "v",
                Type::Vector(ScalarType::UInt, VectorWidth::W2),
                Some(Expr::VectorLit {
                    elem: ScalarType::UInt,
                    width: VectorWidth::W2,
                    parts: vec![
                        Expr::lit(1, ScalarType::UInt),
                        Expr::lit(1, ScalarType::UInt),
                    ],
                }),
            ),
            Stmt::decl(
                "s",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::lane(Expr::var("v"), 0)),
            ),
        ]);
        assert!(check_program(&program_with_body(body)).is_ok());
        let bad = Block::of(vec![
            Stmt::decl(
                "v",
                Type::Vector(ScalarType::UInt, VectorWidth::W2),
                Some(Expr::lit(0, ScalarType::UInt)),
            ),
            Stmt::decl(
                "s",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::lane(Expr::var("v"), 5)),
            ),
        ]);
        assert!(check_program(&program_with_body(bad)).is_err());
    }

    #[test]
    fn atomic_requires_pointer_to_int() {
        let mut p = program_with_body(Block::new());
        p.kernel.params.push(Param::new(
            "c",
            Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
        ));
        p.kernel.body.push(Stmt::expr(Expr::builtin(
            Builtin::AtomicInc,
            vec![Expr::var("c")],
        )));
        assert!(check_program(&p).is_ok());
        p.kernel.body.push(Stmt::expr(Expr::builtin(
            Builtin::AtomicInc,
            vec![Expr::int(3)],
        )));
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn type_of_expr_entry_point() {
        let body = Block::of(vec![Stmt::decl("x", Type::Scalar(ScalarType::Short), None)]);
        let p = program_with_body(body);
        let t = type_of_expr_in_kernel(&p, &Expr::binary(BinOp::Add, Expr::var("x"), Expr::int(1)))
            .unwrap();
        assert_eq!(t, Type::Scalar(ScalarType::Int));
    }
}
