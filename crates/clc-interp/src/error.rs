//! Runtime errors raised by the emulator.
//!
//! Many of these correspond to OpenCL undefined behaviours (§3.1 of the
//! paper).  The CLsmith generator is designed never to trigger them; the
//! reducer and the EMI pruner rely on the emulator to reject candidate
//! programs that would introduce them.

use std::fmt;

/// Why a kernel execution failed (or was aborted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The per-work-item step budget was exhausted.  The harness maps this
    /// to the paper's "timeout" outcome.
    StepLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// Work-items of the same group reached different barriers (or one
    /// finished while another waits) — undefined behaviour in OpenCL.
    BarrierDivergence {
        /// Linear group id where the divergence occurred.
        group: usize,
    },
    /// A data race was detected between two work-items.
    DataRace(RaceReport),
    /// A read of uninitialised memory (indeterminate value).
    UninitializedRead {
        /// Name of the object being read, if known.
        object: String,
    },
    /// An out-of-bounds or otherwise invalid memory access.
    InvalidAccess {
        /// Description of the access.
        detail: String,
    },
    /// Use of a variable that is not in scope.
    UnknownVariable(String),
    /// Call to a function that does not exist in the program.
    UnknownFunction(String),
    /// An operation was applied to values of the wrong shape (e.g. indexing
    /// a scalar).  Generated programs are well-typed so this indicates a
    /// harness bug or a deliberately broken hand-written test.
    TypeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// Division or remainder by zero outside the safe-math wrappers.
    ///
    /// (There is deliberately no shift-amount error: OpenCL C §6.3(j)
    /// defines out-of-range shifts as taking the amount modulo the promoted
    /// left-operand width, so no shift can fail at runtime.)
    DivisionByZero,
    /// `clamp` with `lo > hi` (undefined behaviour per §3.1).
    InvalidClamp,
    /// Call depth exceeded (runaway recursion).
    CallDepthExceeded,
    /// A miscellaneous unsupported construct was reached.
    Unsupported(String),
}

/// Details of a detected data race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Name of the object on which the race occurred.
    pub object: String,
    /// Cell offset within the object.
    pub offset: usize,
    /// Linear global id of the first work-item involved.
    pub first_thread: usize,
    /// Linear global id of the second work-item involved.
    pub second_thread: usize,
    /// Whether both accesses were in the same work-group.
    pub same_group: bool,
    /// Whether at least one access was a write.
    pub involves_write: bool,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded (timeout)")
            }
            RuntimeError::BarrierDivergence { group } => {
                write!(f, "barrier divergence in work-group {group}")
            }
            RuntimeError::DataRace(r) => write!(
                f,
                "data race on `{}` (cell {}) between work-items {} and {} ({})",
                r.object,
                r.offset,
                r.first_thread,
                r.second_thread,
                if r.same_group {
                    "same group"
                } else {
                    "different groups"
                }
            ),
            RuntimeError::UninitializedRead { object } => {
                write!(f, "read of uninitialised memory in `{object}`")
            }
            RuntimeError::InvalidAccess { detail } => write!(f, "invalid memory access: {detail}"),
            RuntimeError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            RuntimeError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            RuntimeError::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::InvalidClamp => write!(f, "clamp with lo > hi"),
            RuntimeError::CallDepthExceeded => write!(f, "call depth exceeded"),
            RuntimeError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on `{}`[{}] between threads {} and {}",
            self.object, self.offset, self.first_thread, self.second_thread
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RuntimeError::StepLimitExceeded { limit: 1000 };
        assert!(e.to_string().contains("1000"));
        let r = RuntimeError::DataRace(RaceReport {
            object: "A".into(),
            offset: 3,
            first_thread: 0,
            second_thread: 5,
            same_group: true,
            involves_write: true,
        });
        assert!(r.to_string().contains("`A`"));
        assert!(r.to_string().contains("same group"));
    }
}
