//! Expression evaluation and recursive statement execution.
//!
//! Expressions (including calls to helper functions) are evaluated
//! recursively and atomically with respect to the work-group scheduler; only
//! kernel-body statements can suspend a work-item at a barrier (see
//! [`crate::exec`]).  A `barrier()` encountered *inside* a helper function is
//! treated as a "soft" barrier: it is counted (for diagnostics) but does not
//! synchronise.  CLsmith-generated kernels only place barriers directly in
//! the kernel body, and the paper's Figure 1(d)/2(c)/2(d) kernels do not rely
//! on callee barriers for cross-thread communication, so this keeps the
//! semantics of every program in this repository intact; the limitation is
//! documented in DESIGN.md.

use crate::error::RuntimeError;
use crate::memory::Memory;
use crate::race::{AccessKind, RaceDetector};
use crate::value::{Cell, Lanes, ObjId, PointerValue, Scalar, Value};
use clc::expr::{BinOp, Builtin, Expr, IdKind, UnOp};
use clc::stmt::{Block, Initializer, Stmt};
use clc::types::{AddressSpace, ScalarType, Type};
use clc::{Dim, Program};
use std::collections::HashMap;

/// Maximum nesting depth of user function calls.
pub const MAX_CALL_DEPTH: usize = 64;

/// The identity of the executing work-item plus the launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadIds {
    /// Global id per dimension (`t` in the paper).
    pub global: [usize; 3],
    /// Local id within the group (`l`).
    pub local: [usize; 3],
    /// Group id (`g`).
    pub group: [usize; 3],
    /// Global sizes (`N`).
    pub global_size: [usize; 3],
    /// Work-group sizes (`W`).
    pub local_size: [usize; 3],
    /// Number of groups per dimension.
    pub num_groups: [usize; 3],
    /// Number of work-group barriers this work-item has passed (the race
    /// detector's "interval").
    pub interval: u32,
}

impl ThreadIds {
    /// `t_linear = (t_z*N_y + t_y)*N_x + t_x`.
    pub fn linear_global(&self) -> usize {
        (self.global[2] * self.global_size[1] + self.global[1]) * self.global_size[0]
            + self.global[0]
    }

    /// `l_linear`.
    pub fn linear_local(&self) -> usize {
        (self.local[2] * self.local_size[1] + self.local[1]) * self.local_size[0] + self.local[0]
    }

    /// `g_linear`.
    pub fn linear_group(&self) -> usize {
        (self.group[2] * self.num_groups[1] + self.group[1]) * self.num_groups[0] + self.group[0]
    }

    /// `W_linear`.
    pub fn linear_group_size(&self) -> usize {
        self.local_size[0] * self.local_size[1] * self.local_size[2]
    }

    /// `N_linear`.
    pub fn linear_global_size(&self) -> usize {
        self.global_size[0] * self.global_size[1] * self.global_size[2]
    }
}

/// One lexical scope: variable bindings plus the objects the scope owns
/// (freed when the scope is popped).
#[derive(Debug, Default)]
pub struct Scope {
    vars: HashMap<String, ObjId>,
    owned: Vec<ObjId>,
}

/// A work-item's (or callee's) variable environment.
#[derive(Debug, Default)]
pub struct Env {
    scopes: Vec<Scope>,
}

impl Env {
    /// An environment with a single (outermost) scope.
    pub fn new() -> Env {
        Env {
            scopes: vec![Scope::default()],
        }
    }

    /// Pushes a nested scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(Scope::default());
    }

    /// Pops the innermost scope, freeing the objects it owns.
    pub fn pop_scope(&mut self, memory: &mut Memory) {
        if let Some(scope) = self.scopes.pop() {
            for obj in scope.owned {
                memory.free(obj);
            }
        }
    }

    /// Current scope depth.
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Pops scopes until the depth equals `depth`.
    pub fn pop_to_depth(&mut self, depth: usize, memory: &mut Memory) {
        while self.scopes.len() > depth {
            self.pop_scope(memory);
        }
    }

    /// Binds a name to an object without transferring ownership.
    pub fn bind(&mut self, name: impl Into<String>, obj: ObjId) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.vars.insert(name.into(), obj);
        }
    }

    /// Binds a name to an object owned by (and freed with) the current scope.
    pub fn bind_owned(&mut self, name: impl Into<String>, obj: ObjId) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.vars.insert(name.into(), obj);
            scope.owned.push(obj);
        }
    }

    /// Resolves a name, innermost scope first.
    pub fn lookup(&self, name: &str) -> Option<ObjId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.vars.get(name).copied())
    }
}

/// How a statement terminated, for control flow in the recursive executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flow {
    /// Fell through normally.
    Normal,
    /// `break` reached.
    Break,
    /// `continue` reached.
    Continue,
    /// `return` reached (with an optional value).
    Return(Option<Value>),
}

/// A resolved storage location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Object holding the storage.
    pub obj: ObjId,
    /// Cell offset of the location.
    pub offset: usize,
    /// Static type of the location.
    pub ty: Type,
    /// Address space of the object.
    pub space: AddressSpace,
}

/// Evaluation context threaded through the evaluator.
pub struct Ctx<'a, 'p> {
    /// The program being executed.
    pub program: &'p Program,
    /// The launch-wide object store.
    pub memory: &'a mut Memory,
    /// Optional race detector.
    pub races: Option<&'a mut RaceDetector>,
    /// Per-group table of `local`-space declarations (one allocation per
    /// group, shared by its work-items).
    pub group_locals: &'a mut HashMap<String, ObjId>,
    /// Identity of the executing work-item.
    pub ids: ThreadIds,
    /// Step counter (shared with the scheduler for this work-item).
    pub steps: &'a mut u64,
    /// Step budget; exceeding it raises [`RuntimeError::StepLimitExceeded`].
    pub step_limit: u64,
    /// Current user-function call depth.
    pub call_depth: usize,
    /// Count of barriers executed inside helper functions ("soft" barriers).
    pub soft_barriers: &'a mut u64,
}

impl<'a, 'p> Ctx<'a, 'p> {
    fn bump(&mut self, n: u64) -> Result<(), RuntimeError> {
        *self.steps += n;
        if *self.steps > self.step_limit {
            Err(RuntimeError::StepLimitExceeded {
                limit: self.step_limit,
            })
        } else {
            Ok(())
        }
    }

    fn record_access(&mut self, place: &Place, cells: usize, kind: AccessKind) {
        self.access().record(place, cells, kind);
    }

    /// The memory-access view of this context, shared with the bytecode VM so
    /// that both tiers load, store and record races identically.
    pub(crate) fn access(&mut self) -> AccessCtx<'_> {
        AccessCtx {
            memory: self.memory,
            races: self.races.as_deref_mut(),
            ids: self.ids,
            structs: &self.program.structs,
        }
    }

    fn structs(&self) -> &'p [clc::StructDef] {
        &self.program.structs
    }
}

/// The minimal state needed to perform a typed memory access with race
/// recording.  Both execution tiers (the tree-walking evaluator and the
/// bytecode VM) route every load and store through this type, which is what
/// guarantees their bit-for-bit agreement on memory and race semantics.
pub(crate) struct AccessCtx<'a> {
    /// The launch-wide object store.
    pub memory: &'a mut Memory,
    /// Optional race detector.
    pub races: Option<&'a mut RaceDetector>,
    /// Identity of the executing work-item.
    pub ids: ThreadIds,
    /// Struct definitions (for cell counts).
    pub structs: &'a [clc::StructDef],
}

impl AccessCtx<'_> {
    pub(crate) fn record(&mut self, place: &Place, cells: usize, kind: AccessKind) {
        if !place.space.is_shared() {
            return;
        }
        record_shared(
            self.races.as_deref_mut(),
            &self.ids,
            place.obj,
            place.offset,
            cells,
            kind,
        );
    }

    /// Loads the value stored at a place (recording the read).
    pub(crate) fn load(&mut self, place: &Place) -> Result<Value, RuntimeError> {
        let cells = place.ty.cell_count(self.structs);
        self.record(place, cells, AccessKind::Read);
        read_value(
            self.memory,
            self.structs,
            place.obj,
            place.offset,
            &place.ty,
            place.space,
        )
    }

    /// Stores a value into a place (recording the write), converting scalars
    /// to the place's type.
    pub(crate) fn store(&mut self, place: &Place, value: Value) -> Result<(), RuntimeError> {
        let cells = place.ty.cell_count(self.structs);
        self.record(place, cells, AccessKind::Write);
        write_value(
            self.memory,
            self.structs,
            place.obj,
            place.offset,
            &place.ty,
            value,
        )
    }
}

/// Records a shared-memory access on the race detector (both tiers route
/// every shared access through this).
pub(crate) fn record_shared(
    races: Option<&mut RaceDetector>,
    ids: &ThreadIds,
    obj: ObjId,
    offset: usize,
    cells: usize,
    kind: AccessKind,
) {
    if let Some(races) = races {
        let thread = ids.linear_global();
        let group = ids.linear_group();
        for i in 0..cells.max(1) {
            races.record(obj, offset + i, thread, group, ids.interval, kind);
        }
    }
}

/// Reads a value of type `ty` at an explicit location (the race recording
/// is the caller's responsibility — see [`AccessCtx::load`]).
pub(crate) fn read_value(
    memory: &Memory,
    structs: &[clc::StructDef],
    obj: ObjId,
    offset: usize,
    ty: &Type,
    space: AddressSpace,
) -> Result<Value, RuntimeError> {
    match ty {
        Type::Scalar(s) => Ok(Value::Scalar(memory.read_scalar(obj, offset, *s)?)),
        Type::Vector(s, w) => {
            let mut lanes = Lanes::with_capacity(w.lanes());
            for i in 0..w.lanes() {
                lanes.push(memory.read_scalar(obj, offset + i, *s)?.bits);
            }
            Ok(Value::Vector(*s, lanes))
        }
        Type::Pointer(..) => Ok(Value::Pointer(memory.read_pointer(obj, offset)?)),
        Type::Array(elem, _) => {
            // Array-to-pointer decay: an array used as a value becomes a
            // pointer to its first element.
            Ok(Value::Pointer(PointerValue {
                obj,
                offset,
                pointee: (**elem).clone(),
                space,
            }))
        }
        Type::Struct(_) => {
            let cells = ty.cell_count(structs);
            let data = memory.read_cells(obj, offset, cells)?;
            Ok(Value::Aggregate(ty.clone(), data))
        }
    }
}

/// Stores a value of type `ty` at an explicit location, converting scalars
/// to `ty` (race recording is the caller's responsibility — see
/// [`AccessCtx::store`]).
pub(crate) fn write_value(
    memory: &mut Memory,
    structs: &[clc::StructDef],
    obj: ObjId,
    offset: usize,
    ty: &Type,
    value: Value,
) -> Result<(), RuntimeError> {
    match (ty, value) {
        (Type::Scalar(s), Value::Scalar(v)) => memory.write_scalar(obj, offset, v, *s),
        (Type::Scalar(s), Value::Pointer(_)) => {
            // Storing a pointer into an integer is unusual but appears in
            // hand-written kernels via casts; store a stable token (0).
            memory.write_scalar(obj, offset, Scalar::zero(*s), *s)
        }
        (Type::Vector(s, w), Value::Vector(_, lanes)) => {
            if lanes.len() != w.lanes() {
                return Err(RuntimeError::TypeMismatch {
                    detail: "vector store with mismatched lane count".into(),
                });
            }
            for (i, lane) in lanes.iter().enumerate() {
                memory.write_scalar(obj, offset + i, Scalar::from_bits(*lane, *s), *s)?;
            }
            Ok(())
        }
        (Type::Vector(s, w), Value::Scalar(v)) => {
            // Broadcast store.
            for i in 0..w.lanes() {
                memory.write_scalar(obj, offset + i, v, *s)?;
            }
            Ok(())
        }
        (Type::Pointer(..), Value::Pointer(p)) => memory.write_cell(obj, offset, Cell::Ptr(p)),
        // A scalar zero stored into a pointer location is the C null-pointer
        // constant; dereferencing it later is caught as an invalid access.
        (Type::Pointer(..), Value::Scalar(v)) if v.bits == 0 => {
            memory.write_cell(obj, offset, Cell::Bits(0))
        }
        (Type::Struct(_) | Type::Array(..), Value::Aggregate(_, data)) => {
            let cells = ty.cell_count(structs);
            if data.len() != cells {
                return Err(RuntimeError::TypeMismatch {
                    detail: "aggregate store with mismatched size".into(),
                });
            }
            memory.write_cells(obj, offset, &data)
        }
        (ty, v) => Err(RuntimeError::TypeMismatch {
            detail: format!("cannot store {} into {:?}", v.kind(), ty),
        }),
    }
}

/// Evaluates an expression to a value.
pub fn eval_expr(ctx: &mut Ctx<'_, '_>, env: &mut Env, expr: &Expr) -> Result<Value, RuntimeError> {
    ctx.bump(1)?;
    match expr {
        Expr::IntLit { value, ty } => Ok(Value::Scalar(Scalar::from_i128(*value, *ty))),
        Expr::VectorLit { elem, width, parts } => {
            let mut lanes = Lanes::with_capacity(width.lanes());
            for part in parts {
                match eval_expr(ctx, env, part)? {
                    Value::Scalar(s) => lanes.push(s.convert(*elem).bits),
                    Value::Vector(_, sub) => lanes.extend(sub.iter().copied()),
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            detail: format!("vector literal component is a {}", other.kind()),
                        })
                    }
                }
            }
            if lanes.len() == 1 {
                // Broadcast form (int4)(x).
                let v = lanes[0];
                lanes = Lanes::splat(v, width.lanes());
            }
            if lanes.len() != width.lanes() {
                return Err(RuntimeError::TypeMismatch {
                    detail: format!(
                        "vector literal provides {} lanes, expected {}",
                        lanes.len(),
                        width.lanes()
                    ),
                });
            }
            Ok(Value::Vector(*elem, lanes))
        }
        Expr::Var(_) | Expr::Index { .. } | Expr::Field { .. } | Expr::Deref(_) => {
            let place = eval_place(ctx, env, expr)?;
            load_place(ctx, &place)
        }
        Expr::Swizzle { base, lanes } => {
            let value = eval_expr(ctx, env, base)?;
            swizzle_value(value, lanes)
        }
        Expr::Unary { op, expr } => {
            let v = eval_expr(ctx, env, expr)?;
            unary_op(*op, v)
        }
        Expr::Binary { op, lhs, rhs } => {
            if op.is_logical() {
                // Short-circuit evaluation.
                let l = eval_expr(ctx, env, lhs)?;
                let lt = l.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                    detail: "logical operand is not scalar".into(),
                })?;
                let result = match op {
                    BinOp::LAnd if !lt => false,
                    BinOp::LOr if lt => true,
                    _ => {
                        let r = eval_expr(ctx, env, rhs)?;
                        r.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                            detail: "logical operand is not scalar".into(),
                        })?
                    }
                };
                return Ok(Value::int(i64::from(result)));
            }
            let l = eval_expr(ctx, env, lhs)?;
            let r = eval_expr(ctx, env, rhs)?;
            value_binop(*op, l, r)
        }
        Expr::Assign { op, lhs, rhs } => {
            let rhs_value = eval_expr(ctx, env, rhs)?;
            let place = eval_place(ctx, env, lhs)?;
            let new_value = match op.binop() {
                None => rhs_value,
                Some(binop) => {
                    let current = load_place(ctx, &place)?;
                    value_binop(binop, current, rhs_value)?
                }
            };
            store_place(ctx, &place, new_value.clone())?;
            Ok(new_value)
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            let c = eval_expr(ctx, env, cond)?;
            let taken = c.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                detail: "conditional guard is not scalar".into(),
            })?;
            if taken {
                eval_expr(ctx, env, then_expr)
            } else {
                eval_expr(ctx, env, else_expr)
            }
        }
        Expr::Comma { lhs, rhs } => {
            eval_expr(ctx, env, lhs)?;
            eval_expr(ctx, env, rhs)
        }
        Expr::Call { name, args } => call_function(ctx, env, name, args),
        Expr::BuiltinCall { func, args } => eval_builtin(ctx, env, *func, args),
        Expr::IdQuery(kind) => Ok(Value::Scalar(Scalar::from_i128(
            id_query_value(&ctx.ids, *kind) as i128,
            ScalarType::ULong,
        ))),
        Expr::AddrOf(inner) => {
            let place = eval_place(ctx, env, inner)?;
            Ok(Value::Pointer(PointerValue {
                obj: place.obj,
                offset: place.offset,
                pointee: place.ty,
                space: place.space,
            }))
        }
        Expr::Cast { ty, expr } => {
            let v = eval_expr(ctx, env, expr)?;
            cast_value(ty, v, ctx.structs())
        }
    }
}

/// Resolves an lvalue expression to a storage location.
pub fn eval_place(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    expr: &Expr,
) -> Result<Place, RuntimeError> {
    ctx.bump(1)?;
    match expr {
        Expr::Var(name) => {
            let obj = lookup_var(ctx, env, name)?;
            let object = ctx.memory.object(obj)?;
            Ok(Place {
                obj,
                offset: 0,
                ty: object.ty.clone(),
                space: object.space,
            })
        }
        Expr::Deref(inner) => {
            let ptr = eval_pointer(ctx, env, inner)?;
            Ok(Place {
                obj: ptr.obj,
                offset: ptr.offset,
                ty: ptr.pointee,
                space: ptr.space,
            })
        }
        Expr::Index { base, index } => {
            let idx_value = eval_expr(ctx, env, index)?;
            let idx = idx_value
                .as_scalar()
                .ok_or_else(|| RuntimeError::TypeMismatch {
                    detail: "index is not scalar".into(),
                })?
                .as_i64();
            let base_place = resolve_indexable(ctx, env, base)?;
            let (elem_ty, stride_base) = match &base_place.ty {
                Type::Array(elem, len) => {
                    if idx < 0 || idx as usize >= *len {
                        return Err(RuntimeError::InvalidAccess {
                            detail: format!("array index {idx} out of bounds for length {len}"),
                        });
                    }
                    ((**elem).clone(), base_place.offset)
                }
                other => ((*other).clone(), base_place.offset),
            };
            let stride = elem_ty.cell_count(ctx.structs());
            if idx < 0 {
                return Err(RuntimeError::InvalidAccess {
                    detail: format!("negative index {idx}"),
                });
            }
            Ok(Place {
                obj: base_place.obj,
                offset: stride_base + idx as usize * stride,
                ty: elem_ty,
                space: base_place.space,
            })
        }
        Expr::Field { base, field, arrow } => {
            let base_place = if *arrow {
                let ptr = eval_pointer(ctx, env, base)?;
                Place {
                    obj: ptr.obj,
                    offset: ptr.offset,
                    ty: ptr.pointee,
                    space: ptr.space,
                }
            } else {
                eval_place(ctx, env, base)?
            };
            let field_offset = base_place
                .ty
                .field_offset(field, ctx.structs())
                .ok_or_else(|| RuntimeError::TypeMismatch {
                    detail: format!("no field `{field}` on {:?}", base_place.ty),
                })?;
            let field_ty = match &base_place.ty {
                Type::Struct(id) => ctx
                    .program
                    .struct_def(*id)
                    .field(field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| RuntimeError::TypeMismatch {
                        detail: format!("no field `{field}`"),
                    })?,
                _ => {
                    return Err(RuntimeError::TypeMismatch {
                        detail: "field access on non-struct".into(),
                    })
                }
            };
            Ok(Place {
                obj: base_place.obj,
                offset: base_place.offset + field_offset,
                ty: field_ty,
                space: base_place.space,
            })
        }
        Expr::Swizzle { base, lanes } if lanes.len() == 1 => {
            let base_place = eval_place(ctx, env, base)?;
            match &base_place.ty {
                Type::Vector(elem, width) => {
                    let lane = lanes[0] as usize;
                    if lane >= width.lanes() {
                        return Err(RuntimeError::InvalidAccess {
                            detail: format!("swizzle lane {lane} out of range"),
                        });
                    }
                    Ok(Place {
                        obj: base_place.obj,
                        offset: base_place.offset + lane,
                        ty: Type::Scalar(*elem),
                        space: base_place.space,
                    })
                }
                _ => Err(RuntimeError::TypeMismatch {
                    detail: "swizzle store on non-vector".into(),
                }),
            }
        }
        other => Err(RuntimeError::TypeMismatch {
            detail: format!("expression is not an lvalue: {other:?}"),
        }),
    }
}

/// Resolves the base of an indexing expression: either an array-typed place
/// or a pointer value.
fn resolve_indexable(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    base: &Expr,
) -> Result<Place, RuntimeError> {
    // Try the place route first (covers arrays and pointer variables).
    let place = eval_place(ctx, env, base)?;
    match &place.ty {
        Type::Array(..) => Ok(place),
        Type::Pointer(..) => {
            let ptr = match ctx.memory.read_cell(place.obj, place.offset)? {
                Cell::Ptr(p) => p,
                _ => {
                    return Err(RuntimeError::UninitializedRead {
                        object: ctx.memory.object(place.obj)?.name.clone(),
                    })
                }
            };
            Ok(Place {
                obj: ptr.obj,
                offset: ptr.offset,
                ty: ptr.pointee,
                space: ptr.space,
            })
        }
        _ => Ok(place),
    }
}

/// Evaluates an expression that must yield a pointer.
fn eval_pointer(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    expr: &Expr,
) -> Result<PointerValue, RuntimeError> {
    match eval_expr(ctx, env, expr)? {
        Value::Pointer(p) => Ok(p),
        other => Err(RuntimeError::TypeMismatch {
            detail: format!("expected pointer, found {}", other.kind()),
        }),
    }
}

/// Loads the value stored at a place.
pub fn load_place(ctx: &mut Ctx<'_, '_>, place: &Place) -> Result<Value, RuntimeError> {
    ctx.access().load(place)
}

/// Stores a value into a place, converting scalars to the place's type.
pub fn store_place(ctx: &mut Ctx<'_, '_>, place: &Place, value: Value) -> Result<(), RuntimeError> {
    ctx.access().store(place, value)
}

/// Applies a swizzle / component selection to an already-evaluated value.
pub(crate) fn swizzle_value(value: Value, lanes: &[u8]) -> Result<Value, RuntimeError> {
    match value {
        Value::Vector(elem, data) => {
            let selected: Result<Lanes, RuntimeError> = lanes
                .iter()
                .map(|&l| {
                    data.get(l as usize)
                        .copied()
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            detail: format!("swizzle lane {l} out of range"),
                        })
                })
                .collect();
            let selected = selected?;
            if selected.len() == 1 {
                Ok(Value::Scalar(Scalar::from_bits(selected[0], elem)))
            } else {
                Ok(Value::Vector(elem, selected))
            }
        }
        other => Err(RuntimeError::TypeMismatch {
            detail: format!("swizzle applied to {}", other.kind()),
        }),
    }
}

fn lookup_var(ctx: &mut Ctx<'_, '_>, env: &Env, name: &str) -> Result<ObjId, RuntimeError> {
    if let Some(obj) = env.lookup(name) {
        return Ok(obj);
    }
    if let Some(obj) = ctx.group_locals.get(name) {
        return Ok(*obj);
    }
    Err(RuntimeError::UnknownVariable(name.to_string()))
}

pub(crate) fn id_query_value(ids: &ThreadIds, kind: IdKind) -> u64 {
    let dim = |d: Dim| d.index();
    (match kind {
        IdKind::GlobalId(d) => ids.global[dim(d)],
        IdKind::LocalId(d) => ids.local[dim(d)],
        IdKind::GroupId(d) => ids.group[dim(d)],
        IdKind::GlobalSize(d) => ids.global_size[dim(d)],
        IdKind::LocalSize(d) => ids.local_size[dim(d)],
        IdKind::NumGroups(d) => ids.num_groups[dim(d)],
        IdKind::GlobalLinearId => ids.linear_global(),
        IdKind::LocalLinearId => ids.linear_local(),
        IdKind::GroupLinearId => ids.linear_group(),
        IdKind::LinearGroupSize => ids.linear_group_size(),
        IdKind::LinearGlobalSize => ids.linear_global_size(),
    }) as u64
}

pub(crate) fn cast_value(
    ty: &Type,
    value: Value,
    structs: &[clc::StructDef],
) -> Result<Value, RuntimeError> {
    match (ty, value) {
        (Type::Scalar(s), Value::Scalar(v)) => Ok(Value::Scalar(v.convert(*s))),
        (Type::Scalar(s), Value::Pointer(_)) => Ok(Value::Scalar(Scalar::zero(*s))),
        (Type::Vector(s, w), Value::Scalar(v)) => Ok(Value::Vector(
            *s,
            Lanes::splat(v.convert(*s).bits, w.lanes()),
        )),
        (Type::Vector(s, w), Value::Vector(from, lanes)) => {
            if lanes.len() != w.lanes() {
                return Err(RuntimeError::TypeMismatch {
                    detail: "vector cast with mismatched lane count".into(),
                });
            }
            let converted = lanes
                .iter()
                .map(|&bits| Scalar::from_bits(bits, from).convert(*s).bits)
                .collect();
            Ok(Value::Vector(*s, converted))
        }
        (Type::Pointer(inner, _), Value::Pointer(mut p)) => {
            p.pointee = (**inner).clone();
            Ok(Value::Pointer(p))
        }
        (ty, v) => Err(RuntimeError::TypeMismatch {
            detail: format!("cannot cast {} to {}", v.kind(), ty.render(structs)),
        }),
    }
}

pub(crate) fn unary_op(op: UnOp, value: Value) -> Result<Value, RuntimeError> {
    match value {
        Value::Scalar(s) => Ok(Value::Scalar(scalar_unop(op, s))),
        Value::Vector(elem, lanes) => {
            let out = lanes
                .iter()
                .map(|&bits| scalar_unop(op, Scalar::from_bits(bits, elem)).bits)
                .collect();
            Ok(Value::Vector(elem, out))
        }
        Value::Pointer(p) => match op {
            UnOp::LNot => Ok(Value::int(0)),
            _ => Err(RuntimeError::TypeMismatch {
                detail: format!("unary {} on pointer {:?}", op.symbol(), p.pointee),
            }),
        },
        other => Err(RuntimeError::TypeMismatch {
            detail: format!("unary {} on {}", op.symbol(), other.kind()),
        }),
    }
}

fn scalar_unop(op: UnOp, s: Scalar) -> Scalar {
    let promoted = s.convert(s.ty.promoted());
    match op {
        UnOp::Neg => Scalar::from_i128((promoted.as_i64() as i128).wrapping_neg(), promoted.ty),
        UnOp::LNot => Scalar::from_i128(i128::from(!s.is_true()), ScalarType::Int),
        UnOp::BitNot => Scalar::from_bits(!promoted.bits, promoted.ty),
    }
}

/// Shifts `a` by `amount`, masking the amount modulo `a`'s width.
///
/// OpenCL C §6.3(j): unlike C, out-of-range shifts are not undefined — only
/// the low log2(width) bits of the amount are used.  That also defines
/// negative amounts: `x << -1` masks the amount's two's complement bit
/// pattern (so it shifts by width-1).  Masking the raw bits equals masking
/// the sign-extended value because every scalar is at least 8 bits wide and
/// the mask needs at most the low 6.
fn shift_masked(op: BinOp, a: Scalar, amount: Scalar) -> Scalar {
    let ty = a.ty;
    let amount = (amount.as_u64() & u64::from(ty.bits() - 1)) as u32;
    let bits = match op {
        BinOp::Shl => a.bits.wrapping_shl(amount),
        BinOp::Shr => {
            if ty.is_signed() {
                (a.as_i64() >> amount) as u64
            } else {
                a.bits >> amount
            }
        }
        _ => unreachable!(),
    };
    Scalar::from_bits(bits, ty)
}

/// One vector lane's binary operation, shared by both execution tiers'
/// vector paths: §6.3(j) exempts vector operands from integer promotion, so
/// lane shifts keep the element type and mask the amount by the **element**
/// width (a `char` lane shifts modulo 8, where the scalar `char` shift
/// promotes to `int` and masks modulo 32); every other operator goes
/// through [`scalar_binop`] unchanged.
pub(crate) fn vector_lane_binop(op: BinOp, a: Scalar, b: Scalar) -> Result<Scalar, RuntimeError> {
    if op.is_shift() {
        Ok(shift_masked(op, a, b))
    } else {
        scalar_binop(op, a, b)
    }
}

/// Applies a binary operator to two values, lifting over vectors.
pub fn value_binop(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, RuntimeError> {
    match (lhs, rhs) {
        (Value::Scalar(a), Value::Scalar(b)) => scalar_binop(op, a, b).map(Value::Scalar),
        (Value::Vector(ea, la), Value::Vector(eb, lb)) => {
            if la.len() != lb.len() {
                return Err(RuntimeError::TypeMismatch {
                    detail: "vector operands of different widths".into(),
                });
            }
            let mut out = Lanes::with_capacity(la.len());
            for (&a, &b) in la.iter().zip(lb.iter()) {
                let r = vector_lane_binop(op, Scalar::from_bits(a, ea), Scalar::from_bits(b, eb))?;
                out.push(if op.is_comparison() {
                    // OpenCL vector comparisons produce -1 (all bits set) for
                    // true, 0 for false.
                    if r.is_true() {
                        Scalar::from_i128(-1, ea.to_signed()).bits
                    } else {
                        0
                    }
                } else {
                    r.convert(ea).bits
                });
            }
            let elem = if op.is_comparison() {
                ea.to_signed()
            } else {
                ea
            };
            Ok(Value::Vector(elem, out))
        }
        (Value::Vector(ea, la), Value::Scalar(b)) => {
            let rhs_vec = Value::Vector(ea, Lanes::splat(b.convert(ea).bits, la.len()));
            value_binop(op, Value::Vector(ea, la), rhs_vec)
        }
        (Value::Scalar(a), Value::Vector(eb, lb)) => {
            let lhs_vec = Value::Vector(eb, Lanes::splat(a.convert(eb).bits, lb.len()));
            value_binop(op, lhs_vec, Value::Vector(eb, lb))
        }
        (Value::Pointer(p), Value::Scalar(s)) if matches!(op, BinOp::Add | BinOp::Sub) => {
            let stride = 1;
            let delta = s.as_i64();
            let offset = if op == BinOp::Add {
                p.offset as i64 + delta * stride as i64
            } else {
                p.offset as i64 - delta * stride as i64
            };
            if offset < 0 {
                return Err(RuntimeError::InvalidAccess {
                    detail: "pointer arithmetic below object start".into(),
                });
            }
            Ok(Value::Pointer(PointerValue {
                offset: offset as usize,
                ..p
            }))
        }
        (Value::Pointer(a), Value::Pointer(b)) if op.is_comparison() => {
            let equal = a.obj == b.obj && a.offset == b.offset;
            let result = match op {
                BinOp::Eq => equal,
                BinOp::Ne => !equal,
                BinOp::Lt => a.offset < b.offset,
                BinOp::Gt => a.offset > b.offset,
                BinOp::Le => a.offset <= b.offset,
                BinOp::Ge => a.offset >= b.offset,
                _ => unreachable!(),
            };
            Ok(Value::int(i64::from(result)))
        }
        (a, b) => Err(RuntimeError::TypeMismatch {
            detail: format!("operator {} on {} and {}", op.symbol(), a.kind(), b.kind()),
        }),
    }
}

/// Applies a binary operator to two scalars with OpenCL C semantics (usual
/// arithmetic conversions, wrapping on overflow, UB detection for raw
/// division by zero; shift amounts are defined for every value — masked
/// modulo the promoted left-operand width per §6.3(j), never an error).
pub fn scalar_binop(op: BinOp, lhs: Scalar, rhs: Scalar) -> Result<Scalar, RuntimeError> {
    if op.is_comparison() {
        let common = lhs.ty.usual_arithmetic_conversion(rhs.ty);
        let (a, b) = (lhs.convert(common), rhs.convert(common));
        let result = if common.is_signed() {
            let (x, y) = (a.as_i64(), b.as_i64());
            match op {
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::Lt => x < y,
                BinOp::Gt => x > y,
                BinOp::Le => x <= y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            }
        } else {
            let (x, y) = (a.as_u64(), b.as_u64());
            match op {
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::Lt => x < y,
                BinOp::Gt => x > y,
                BinOp::Le => x <= y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            }
        };
        return Ok(Scalar::from_i128(i128::from(result), ScalarType::Int));
    }
    if op.is_logical() {
        let result = match op {
            BinOp::LAnd => lhs.is_true() && rhs.is_true(),
            BinOp::LOr => lhs.is_true() || rhs.is_true(),
            _ => unreachable!(),
        };
        return Ok(Scalar::from_i128(i128::from(result), ScalarType::Int));
    }
    if op.is_shift() {
        // Scalar shift: the result has the *promoted* type of the left
        // operand, and the amount is masked by that promoted width
        // (vector lanes are exempt from promotion and mask by the element
        // width instead — see [`vector_lane_binop`]).
        let ty = lhs.ty.promoted();
        return Ok(shift_masked(op, lhs.convert(ty), rhs));
    }
    let common = lhs.ty.usual_arithmetic_conversion(rhs.ty);
    let a = lhs.convert(common);
    let b = rhs.convert(common);
    let result_bits = if common.is_signed() {
        let (x, y) = (a.as_i64(), b.as_i64());
        let r: i64 = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                x.wrapping_div(y)
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                x.wrapping_rem(y)
            }
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            _ => unreachable!(),
        };
        r as u64
    } else {
        let (x, y) = (a.as_u64(), b.as_u64());
        match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                x / y
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                x % y
            }
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            _ => unreachable!(),
        }
    };
    Ok(Scalar::from_bits(result_bits, common))
}

fn eval_builtin(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    func: Builtin,
    args: &[Expr],
) -> Result<Value, RuntimeError> {
    if func.is_atomic() {
        return eval_atomic(ctx, env, func, args);
    }
    let values: Vec<Value> = args
        .iter()
        .map(|a| eval_expr(ctx, env, a))
        .collect::<Result<_, _>>()?;
    lift_builtin(func, &values)
}

/// Applies a non-atomic builtin, lifting component-wise over vectors.
pub fn lift_builtin(func: Builtin, values: &[Value]) -> Result<Value, RuntimeError> {
    let lanes = values.iter().find_map(|v| match v {
        Value::Vector(_, l) => Some(l.len()),
        _ => None,
    });
    match lanes {
        None => {
            let scalars: Vec<Scalar> = values
                .iter()
                .map(|v| {
                    v.as_scalar().ok_or_else(|| RuntimeError::TypeMismatch {
                        detail: format!("builtin {} on {}", func.name(), v.kind()),
                    })
                })
                .collect::<Result<_, _>>()?;
            scalar_builtin(func, &scalars).map(Value::Scalar)
        }
        Some(n) => {
            let elem = values
                .iter()
                .find_map(|v| match v {
                    Value::Vector(e, _) => Some(*e),
                    _ => None,
                })
                .expect("vector operand exists");
            let mut out = Lanes::with_capacity(n);
            for i in 0..n {
                let scalars: Vec<Scalar> = values
                    .iter()
                    .map(|v| match v {
                        Value::Vector(e, l) => Ok(Scalar::from_bits(l[i], *e)),
                        Value::Scalar(s) => Ok(*s),
                        other => Err(RuntimeError::TypeMismatch {
                            detail: format!("builtin {} on {}", func.name(), other.kind()),
                        }),
                    })
                    .collect::<Result<_, _>>()?;
                out.push(scalar_builtin(func, &scalars)?.convert(elem).bits);
            }
            Ok(Value::Vector(elem, out))
        }
    }
}

pub(crate) fn scalar_builtin(func: Builtin, args: &[Scalar]) -> Result<Scalar, RuntimeError> {
    let arg = |i: usize| args[i];
    match func {
        Builtin::SafeAdd => scalar_binop(BinOp::Add, arg(0), arg(1)),
        Builtin::SafeSub => scalar_binop(BinOp::Sub, arg(0), arg(1)),
        Builtin::SafeMul => scalar_binop(BinOp::Mul, arg(0), arg(1)),
        Builtin::SafeDiv => {
            if !arg(1).is_true() {
                Ok(arg(0))
            } else {
                safe_divlike(BinOp::Div, arg(0), arg(1))
            }
        }
        Builtin::SafeMod => {
            if !arg(1).is_true() {
                Ok(arg(0))
            } else {
                safe_divlike(BinOp::Mod, arg(0), arg(1))
            }
        }
        Builtin::SafeLshift | Builtin::SafeRshift => {
            let masked = Scalar::from_i128((arg(1).as_u64() & 31) as i128, ScalarType::Int);
            let op = if func == Builtin::SafeLshift {
                BinOp::Shl
            } else {
                BinOp::Shr
            };
            scalar_binop(op, arg(0), masked)
        }
        Builtin::SafeUnaryMinus => Ok(scalar_unop(UnOp::Neg, arg(0))),
        Builtin::Clamp | Builtin::SafeClamp => {
            let (x, lo, hi) = (arg(0), arg(1), arg(2));
            let common =
                x.ty.usual_arithmetic_conversion(lo.ty.usual_arithmetic_conversion(hi.ty));
            let cmp = |a: Scalar, b: Scalar| -> std::cmp::Ordering {
                if common.is_signed() {
                    a.convert(common).as_i64().cmp(&b.convert(common).as_i64())
                } else {
                    a.convert(common).as_u64().cmp(&b.convert(common).as_u64())
                }
            };
            if cmp(lo, hi) == std::cmp::Ordering::Greater {
                return if func == Builtin::SafeClamp {
                    Ok(x)
                } else {
                    Err(RuntimeError::InvalidClamp)
                };
            }
            let clamped = if cmp(x, lo) == std::cmp::Ordering::Less {
                lo
            } else if cmp(x, hi) == std::cmp::Ordering::Greater {
                hi
            } else {
                x
            };
            Ok(clamped.convert(x.ty))
        }
        Builtin::Rotate => {
            let (x, y) = (arg(0), arg(1));
            let width = x.ty.bits();
            let amount = (y.as_u64() % u64::from(width)) as u32;
            let bits = if amount == 0 {
                x.bits
            } else {
                crate::value::mask(
                    x.bits.wrapping_shl(amount) | (x.bits >> (width - amount)),
                    x.ty,
                )
            };
            Ok(Scalar::from_bits(bits, x.ty))
        }
        Builtin::Min | Builtin::Max => {
            let (a, b) = (arg(0), arg(1));
            let common = a.ty.usual_arithmetic_conversion(b.ty);
            let a_first = if common.is_signed() {
                a.convert(common).as_i64() <= b.convert(common).as_i64()
            } else {
                a.convert(common).as_u64() <= b.convert(common).as_u64()
            };
            let pick_a = if func == Builtin::Min {
                a_first
            } else {
                !a_first
            };
            // The result has the usual-arithmetic-conversion type; returning
            // the unconverted winning operand would make the result's type
            // (and hence downstream conversions) depend on which side won.
            Ok(if pick_a {
                a.convert(common)
            } else {
                b.convert(common)
            })
        }
        Builtin::Abs => {
            let a = arg(0);
            if a.ty.is_signed() {
                let v = a.as_i64();
                Ok(Scalar::from_i128(
                    (v as i128).unsigned_abs() as i128,
                    a.ty.to_unsigned(),
                ))
            } else {
                // OpenCL `abs` on an unsigned operand is the identity; routing
                // it through the signed interpretation would fold the upper
                // half of the range onto the lower.
                Ok(a)
            }
        }
        _ => Err(RuntimeError::Unsupported(format!(
            "builtin {}",
            func.name()
        ))),
    }
}

/// Division-like op where the divisor is known non-zero; additionally guards
/// the `INT_MIN / -1` overflow by returning the dividend (mirroring Csmith's
/// safe-math functions).
fn safe_divlike(op: BinOp, a: Scalar, b: Scalar) -> Result<Scalar, RuntimeError> {
    let common = a.ty.usual_arithmetic_conversion(b.ty);
    if common.is_signed() {
        let x = a.convert(common).as_i64();
        let y = b.convert(common).as_i64();
        let min = i64::MIN >> (64 - common.bits());
        if x == min && y == -1 {
            return Ok(a.convert(common));
        }
    }
    scalar_binop(op, a, b)
}

fn eval_atomic(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    func: Builtin,
    args: &[Expr],
) -> Result<Value, RuntimeError> {
    let ptr = eval_pointer(ctx, env, &args[0])?;
    let elem = match &ptr.pointee {
        Type::Scalar(s) if s.bits() == 32 => *s,
        other => {
            return Err(RuntimeError::TypeMismatch {
                detail: format!("atomic on non-32-bit location {other:?}"),
            })
        }
    };
    let place = Place {
        obj: ptr.obj,
        offset: ptr.offset,
        ty: Type::Scalar(elem),
        space: ptr.space,
    };
    ctx.record_access(&place, 1, AccessKind::Atomic);
    let old = ctx.memory.read_scalar(place.obj, place.offset, elem)?;
    let operand =
        |ctx: &mut Ctx<'_, '_>, env: &mut Env, i: usize| -> Result<Scalar, RuntimeError> {
            let v = eval_expr(ctx, env, &args[i])?;
            v.as_scalar().ok_or_else(|| RuntimeError::TypeMismatch {
                detail: "atomic operand is not scalar".into(),
            })
        };
    let new = match func {
        Builtin::AtomicInc => scalar_binop(BinOp::Add, old, Scalar::from_i128(1, elem))?,
        Builtin::AtomicDec => scalar_binop(BinOp::Sub, old, Scalar::from_i128(1, elem))?,
        Builtin::AtomicAdd => scalar_binop(BinOp::Add, old, operand(ctx, env, 1)?)?,
        Builtin::AtomicSub => scalar_binop(BinOp::Sub, old, operand(ctx, env, 1)?)?,
        Builtin::AtomicAnd => scalar_binop(BinOp::BitAnd, old, operand(ctx, env, 1)?)?,
        Builtin::AtomicOr => scalar_binop(BinOp::BitOr, old, operand(ctx, env, 1)?)?,
        Builtin::AtomicXor => scalar_binop(BinOp::BitXor, old, operand(ctx, env, 1)?)?,
        Builtin::AtomicMin => {
            let v = operand(ctx, env, 1)?;
            scalar_builtin(Builtin::Min, &[old, v])?
        }
        Builtin::AtomicMax => {
            let v = operand(ctx, env, 1)?;
            scalar_builtin(Builtin::Max, &[old, v])?
        }
        Builtin::AtomicXchg => operand(ctx, env, 1)?,
        Builtin::AtomicCmpxchg => {
            let cmp = operand(ctx, env, 1)?;
            let val = operand(ctx, env, 2)?;
            if old.convert(elem).bits == cmp.convert(elem).bits {
                val
            } else {
                old
            }
        }
        _ => unreachable!("non-atomic builtin routed to eval_atomic"),
    };
    ctx.memory
        .write_scalar(place.obj, place.offset, new, elem)?;
    Ok(Value::Scalar(old.convert(elem)))
}

fn call_function(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    name: &str,
    args: &[Expr],
) -> Result<Value, RuntimeError> {
    if ctx.call_depth >= MAX_CALL_DEPTH {
        return Err(RuntimeError::CallDepthExceeded);
    }
    let func = ctx
        .program
        .function(name)
        .ok_or_else(|| RuntimeError::UnknownFunction(name.to_string()))?;
    if args.len() != func.params.len() {
        return Err(RuntimeError::TypeMismatch {
            detail: format!(
                "call to `{name}` with {} args, expected {}",
                args.len(),
                func.params.len()
            ),
        });
    }
    // Evaluate arguments in the caller's environment.
    let mut arg_values = Vec::with_capacity(args.len());
    for a in args {
        arg_values.push(eval_expr(ctx, env, a)?);
    }
    // Fresh environment for the callee; parameters behave like initialised
    // local variables.
    let mut callee_env = Env::new();
    for (param, value) in func.params.iter().zip(arg_values) {
        let obj = ctx.memory.alloc(
            param.name.clone(),
            param.ty.clone(),
            AddressSpace::Private,
            ctx.structs(),
        );
        callee_env.bind_owned(param.name.clone(), obj);
        let object_ty = ctx.memory.object(obj)?.ty.clone();
        let place = Place {
            obj,
            offset: 0,
            ty: object_ty,
            space: AddressSpace::Private,
        };
        store_place(ctx, &place, value)?;
    }
    ctx.call_depth += 1;
    let flow = exec_block(ctx, &mut callee_env, &func.body);
    ctx.call_depth -= 1;
    callee_env.pop_to_depth(0, ctx.memory);
    match flow? {
        Flow::Return(Some(v)) => Ok(v),
        Flow::Return(None) | Flow::Normal => Ok(Value::int(0)),
        Flow::Break | Flow::Continue => Err(RuntimeError::Unsupported(
            "break/continue escaping a function body".into(),
        )),
    }
}

/// Executes a block recursively (used for helper function bodies and for
/// kernel-body statements that contain no barrier).
pub fn exec_block(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    block: &Block,
) -> Result<Flow, RuntimeError> {
    env.push_scope();
    let result = exec_block_inner(ctx, env, block);
    env.pop_scope(ctx.memory);
    result
}

fn exec_block_inner(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    block: &Block,
) -> Result<Flow, RuntimeError> {
    for stmt in block.iter() {
        match exec_stmt(ctx, env, stmt)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

/// Executes a single statement recursively.
pub fn exec_stmt(ctx: &mut Ctx<'_, '_>, env: &mut Env, stmt: &Stmt) -> Result<Flow, RuntimeError> {
    ctx.bump(1)?;
    match stmt {
        Stmt::Decl { .. } => {
            declare_var(ctx, env, stmt)?;
            Ok(Flow::Normal)
        }
        Stmt::Expr(e) => {
            eval_expr(ctx, env, e)?;
            Ok(Flow::Normal)
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            let c = eval_expr(ctx, env, cond)?;
            let taken = c.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                detail: "if condition is not scalar".into(),
            })?;
            if taken {
                exec_block(ctx, env, then_block)
            } else if let Some(e) = else_block {
                exec_block(ctx, env, e)
            } else {
                Ok(Flow::Normal)
            }
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            env.push_scope();
            let result = (|| -> Result<Flow, RuntimeError> {
                if let Some(init) = init {
                    exec_stmt(ctx, env, init)?;
                }
                loop {
                    ctx.bump(1)?;
                    if let Some(c) = cond {
                        let v = eval_expr(ctx, env, c)?;
                        if !v.is_true().unwrap_or(false) {
                            break;
                        }
                    }
                    match exec_block(ctx, env, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(u) = update {
                        eval_expr(ctx, env, u)?;
                    }
                }
                Ok(Flow::Normal)
            })();
            env.pop_scope(ctx.memory);
            result
        }
        Stmt::While { cond, body } => loop {
            ctx.bump(1)?;
            let v = eval_expr(ctx, env, cond)?;
            if !v.is_true().unwrap_or(false) {
                return Ok(Flow::Normal);
            }
            match exec_block(ctx, env, body)? {
                Flow::Break => return Ok(Flow::Normal),
                Flow::Return(v) => return Ok(Flow::Return(v)),
                Flow::Normal | Flow::Continue => {}
            }
        },
        Stmt::Block(b) => exec_block(ctx, env, b),
        Stmt::Return(None) => Ok(Flow::Return(None)),
        Stmt::Return(Some(e)) => {
            let v = eval_expr(ctx, env, e)?;
            Ok(Flow::Return(Some(v)))
        }
        Stmt::Break => Ok(Flow::Break),
        Stmt::Continue => Ok(Flow::Continue),
        Stmt::Barrier(_) => {
            // Soft barrier: reached through a helper function call (or
            // through the recursive executor); counted but not synchronising.
            *ctx.soft_barriers += 1;
            Ok(Flow::Normal)
        }
        Stmt::Emi(emi) => {
            if emi_guard_is_true(ctx, env, emi)? {
                exec_block(ctx, env, &emi.body)
            } else {
                Ok(Flow::Normal)
            }
        }
    }
}

/// Evaluates the `dead[a] < dead[b]` guard of an EMI block.
pub fn emi_guard_is_true(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    emi: &clc::EmiBlock,
) -> Result<bool, RuntimeError> {
    let guard = Expr::binary(
        BinOp::Lt,
        Expr::index(Expr::var("dead"), Expr::int(emi.guard.0 as i64)),
        Expr::index(Expr::var("dead"), Expr::int(emi.guard.1 as i64)),
    );
    let v = eval_expr(ctx, env, &guard)?;
    Ok(v.is_true().unwrap_or(false))
}

/// Executes a declaration statement, allocating storage and binding the name.
pub fn declare_var(ctx: &mut Ctx<'_, '_>, env: &mut Env, stmt: &Stmt) -> Result<(), RuntimeError> {
    let Stmt::Decl {
        name,
        ty,
        space,
        init,
        init_list,
        ..
    } = stmt
    else {
        return Err(RuntimeError::TypeMismatch {
            detail: "declare_var on non-declaration".into(),
        });
    };
    match space {
        AddressSpace::Local => {
            // One allocation per work-group, shared by all its work-items;
            // OpenCL forbids initialisers on local declarations, so the
            // storage is zero-initialised (deterministic across devices in
            // practice for CLsmith's usage, which always stores before
            // loading).
            let obj = if let Some(existing) = ctx.group_locals.get(name) {
                *existing
            } else {
                let obj = ctx.memory.alloc_zeroed(
                    name.clone(),
                    ty.clone(),
                    AddressSpace::Local,
                    ctx.structs(),
                );
                if let Some(races) = ctx.races.as_deref_mut() {
                    races.name_object(obj, name);
                }
                ctx.group_locals.insert(name.clone(), obj);
                obj
            };
            env.bind(name.clone(), obj);
            Ok(())
        }
        _ => {
            let obj = ctx.memory.alloc(
                name.clone(),
                ty.clone(),
                AddressSpace::Private,
                ctx.structs(),
            );
            env.bind_owned(name.clone(), obj);
            if let Some(e) = init {
                let v = eval_expr(ctx, env, e)?;
                let place = Place {
                    obj,
                    offset: 0,
                    ty: ty.clone(),
                    space: AddressSpace::Private,
                };
                store_place(ctx, &place, v)?;
            } else if let Some(list) = init_list {
                // Brace initialisation zero-fills unspecified members.
                let cells = ty.cell_count(ctx.structs());
                ctx.memory
                    .write_cells(obj, 0, &vec![Cell::Bits(0); cells])?;
                apply_initializer(ctx, env, obj, 0, ty, list)?;
            }
            Ok(())
        }
    }
}

fn apply_initializer(
    ctx: &mut Ctx<'_, '_>,
    env: &mut Env,
    obj: ObjId,
    offset: usize,
    ty: &Type,
    init: &Initializer,
) -> Result<(), RuntimeError> {
    match (ty, init) {
        (_, Initializer::Expr(e)) => {
            let v = eval_expr(ctx, env, e)?;
            let place = Place {
                obj,
                offset,
                ty: ty.clone(),
                space: AddressSpace::Private,
            };
            store_place(ctx, &place, v)
        }
        (Type::Array(elem, len), Initializer::List(items)) => {
            let stride = elem.cell_count(ctx.structs());
            for (i, item) in items.iter().enumerate() {
                if i >= *len {
                    break;
                }
                apply_initializer(ctx, env, obj, offset + i * stride, elem, item)?;
            }
            Ok(())
        }
        (Type::Struct(id), Initializer::List(items)) => {
            let def = ctx.program.struct_def(*id).clone();
            if def.is_union {
                // Only the first member is initialised.
                if let (Some(field), Some(item)) = (def.fields.first(), items.first()) {
                    apply_initializer(ctx, env, obj, offset, &field.ty, item)?;
                }
                return Ok(());
            }
            let mut field_offset = 0usize;
            for (field, item) in def.fields.iter().zip(items) {
                apply_initializer(ctx, env, obj, offset + field_offset, &field.ty, item)?;
                field_offset += field.ty.cell_count(ctx.structs());
            }
            Ok(())
        }
        (Type::Vector(elem, width), Initializer::List(items)) => {
            for (i, item) in items.iter().enumerate() {
                if i >= width.lanes() {
                    break;
                }
                apply_initializer(ctx, env, obj, offset + i, &Type::Scalar(*elem), item)?;
            }
            Ok(())
        }
        (other, Initializer::List(_)) => Err(RuntimeError::TypeMismatch {
            detail: format!("brace initialiser for non-aggregate {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::{AssignOp, KernelDef, LaunchConfig, Program};

    fn test_ids() -> ThreadIds {
        ThreadIds {
            global: [0, 0, 0],
            local: [0, 0, 0],
            group: [0, 0, 0],
            global_size: [4, 1, 1],
            local_size: [4, 1, 1],
            num_groups: [1, 1, 1],
            interval: 0,
        }
    }

    fn empty_program() -> Program {
        Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::new(),
            },
            LaunchConfig::single_group(4),
        )
    }

    struct Harness {
        program: Program,
        memory: Memory,
        group_locals: HashMap<String, ObjId>,
        steps: u64,
        soft: u64,
    }

    impl Harness {
        fn new(program: Program) -> Harness {
            Harness {
                program,
                memory: Memory::new(),
                group_locals: HashMap::new(),
                steps: 0,
                soft: 0,
            }
        }

        fn eval(&mut self, env: &mut Env, e: &Expr) -> Result<Value, RuntimeError> {
            let mut ctx = Ctx {
                program: &self.program,
                memory: &mut self.memory,
                races: None,
                group_locals: &mut self.group_locals,
                ids: test_ids(),
                steps: &mut self.steps,
                step_limit: 100_000,
                call_depth: 0,
                soft_barriers: &mut self.soft,
            };
            eval_expr(&mut ctx, env, e)
        }

        fn exec(&mut self, env: &mut Env, s: &Stmt) -> Result<Flow, RuntimeError> {
            let mut ctx = Ctx {
                program: &self.program,
                memory: &mut self.memory,
                races: None,
                group_locals: &mut self.group_locals,
                ids: test_ids(),
                steps: &mut self.steps,
                step_limit: 100_000,
                call_depth: 0,
                soft_barriers: &mut self.soft,
            };
            exec_stmt(&mut ctx, env, s)
        }
    }

    #[test]
    fn thread_id_linearisation_matches_paper() {
        let ids = ThreadIds {
            global: [3, 2, 1],
            local: [1, 0, 1],
            group: [1, 1, 0],
            global_size: [4, 3, 2],
            local_size: [2, 1, 1],
            num_groups: [2, 3, 2],
            interval: 0,
        };
        // t_linear = (t_z*N_y + t_y)*N_x + t_x = (1*3 + 2)*4 + 3 = 23
        assert_eq!(ids.linear_global(), 23);
        assert_eq!(ids.linear_group_size(), 2);
        assert_eq!(ids.linear_global_size(), 24);
    }

    #[test]
    fn arithmetic_with_conversions() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        // (char)200 + 100 at int width: (char)200 == -56, so result 44.
        let e = Expr::binary(
            BinOp::Add,
            Expr::cast(Type::Scalar(ScalarType::Char), Expr::int(200)),
            Expr::int(100),
        );
        let v = h.eval(&mut env, &e).unwrap();
        assert_eq!(v.as_scalar().unwrap().as_i64(), 44);
    }

    #[test]
    fn division_by_zero_is_detected_but_safe_div_is_not() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let raw = Expr::binary(BinOp::Div, Expr::int(5), Expr::int(0));
        assert!(matches!(
            h.eval(&mut env, &raw),
            Err(RuntimeError::DivisionByZero)
        ));
        let safe = Expr::builtin(Builtin::SafeDiv, vec![Expr::int(5), Expr::int(0)]);
        assert_eq!(
            h.eval(&mut env, &safe)
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_i64(),
            5
        );
    }

    #[test]
    fn rotate_matches_figure_2b_expectation() {
        // rotate((uint2)(1,1), (uint2)(0,0)).x == 1
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let e = Expr::lane(
            Expr::builtin(
                Builtin::Rotate,
                vec![
                    Expr::VectorLit {
                        elem: ScalarType::UInt,
                        width: clc::VectorWidth::W2,
                        parts: vec![
                            Expr::lit(1, ScalarType::UInt),
                            Expr::lit(1, ScalarType::UInt),
                        ],
                    },
                    Expr::VectorLit {
                        elem: ScalarType::UInt,
                        width: clc::VectorWidth::W2,
                        parts: vec![
                            Expr::lit(0, ScalarType::UInt),
                            Expr::lit(0, ScalarType::UInt),
                        ],
                    },
                ],
            ),
            0,
        );
        assert_eq!(
            h.eval(&mut env, &e).unwrap().as_scalar().unwrap().as_u64(),
            1
        );
    }

    #[test]
    fn rotate_wraps_bits() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let e = Expr::builtin(
            Builtin::Rotate,
            vec![
                Expr::lit(0x8000_0001, ScalarType::UInt),
                Expr::lit(1, ScalarType::UInt),
            ],
        );
        assert_eq!(
            h.eval(&mut env, &e).unwrap().as_scalar().unwrap().as_u64(),
            3
        );
    }

    #[test]
    fn comma_operator_yields_rhs() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let e = Expr::comma(Expr::int(5), Expr::int(9));
        assert_eq!(
            h.eval(&mut env, &e).unwrap().as_scalar().unwrap().as_i64(),
            9
        );
    }

    #[test]
    fn declarations_assignments_and_loops() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        h.exec(
            &mut env,
            &Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(0))),
        )
        .unwrap();
        // for (int i = 0; i < 10; i += 1) x = x + i;
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::decl(
                "i",
                Type::Scalar(ScalarType::Int),
                Some(Expr::int(0)),
            ))),
            cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(10))),
            update: Some(Expr::assign_op(
                AssignOp::AddAssign,
                Expr::var("i"),
                Expr::int(1),
            )),
            body: Block::of(vec![Stmt::assign(
                Expr::var("x"),
                Expr::binary(BinOp::Add, Expr::var("x"), Expr::var("i")),
            )]),
        };
        h.exec(&mut env, &loop_stmt).unwrap();
        let v = h.eval(&mut env, &Expr::var("x")).unwrap();
        assert_eq!(v.as_scalar().unwrap().as_i64(), 45);
    }

    #[test]
    fn struct_fields_pointers_and_whole_struct_copy() {
        let mut program = empty_program();
        let sid = program.add_struct(clc::StructDef::new(
            "S",
            vec![
                clc::Field::new("x", Type::Scalar(ScalarType::Int)),
                clc::Field::new("y", Type::Scalar(ScalarType::Int)),
            ],
        ));
        let mut h = Harness::new(program);
        let mut env = Env::new();
        h.exec(
            &mut env,
            &Stmt::decl_init_list(
                "s",
                Type::Struct(sid),
                Initializer::of_exprs(vec![Expr::int(1), Expr::int(2)]),
            ),
        )
        .unwrap();
        h.exec(&mut env, &Stmt::decl("t", Type::Struct(sid), None))
            .unwrap();
        // t = s; then read t.y through a pointer.
        h.exec(&mut env, &Stmt::assign(Expr::var("t"), Expr::var("s")))
            .unwrap();
        h.exec(
            &mut env,
            &Stmt::decl(
                "p",
                Type::Struct(sid).pointer_to(AddressSpace::Private),
                Some(Expr::addr_of(Expr::var("t"))),
            ),
        )
        .unwrap();
        let v = h.eval(&mut env, &Expr::arrow(Expr::var("p"), "y")).unwrap();
        assert_eq!(v.as_scalar().unwrap().as_i64(), 2);
    }

    #[test]
    fn union_initialisation_only_sets_first_member() {
        let mut program = empty_program();
        let uid = program.add_struct(clc::StructDef::union(
            "U",
            vec![
                clc::Field::new("a", Type::Scalar(ScalarType::UInt)),
                clc::Field::new("b", Type::Scalar(ScalarType::ULong)),
            ],
        ));
        let mut h = Harness::new(program);
        let mut env = Env::new();
        h.exec(
            &mut env,
            &Stmt::decl_init_list(
                "u",
                Type::Struct(uid),
                Initializer::of_exprs(vec![Expr::int(7)]),
            ),
        )
        .unwrap();
        let v = h.eval(&mut env, &Expr::field(Expr::var("u"), "a")).unwrap();
        assert_eq!(v.as_scalar().unwrap().as_u64(), 7);
    }

    #[test]
    fn function_calls_pass_pointers() {
        let mut program = empty_program();
        let sid = program.add_struct(clc::StructDef::new(
            "S",
            vec![
                clc::Field::new("x", Type::Scalar(ScalarType::Int)),
                clc::Field::new("y", Type::Scalar(ScalarType::Int)),
            ],
        ));
        program.functions.push(clc::FunctionDef::new(
            "f",
            None,
            vec![clc::Param::new(
                "p",
                Type::Struct(sid).pointer_to(AddressSpace::Private),
            )],
            Block::of(vec![Stmt::assign(
                Expr::arrow(Expr::var("p"), "x"),
                Expr::int(2),
            )]),
        ));
        let mut h = Harness::new(program);
        let mut env = Env::new();
        h.exec(
            &mut env,
            &Stmt::decl_init_list(
                "s",
                Type::Struct(sid),
                Initializer::of_exprs(vec![Expr::int(1), Expr::int(1)]),
            ),
        )
        .unwrap();
        h.exec(
            &mut env,
            &Stmt::expr(Expr::call("f", vec![Expr::addr_of(Expr::var("s"))])),
        )
        .unwrap();
        // s.x + s.y == 2 + 1 == 3 (the expected result in Figure 1(d)).
        let v = h
            .eval(
                &mut env,
                &Expr::binary(
                    BinOp::Add,
                    Expr::field(Expr::var("s"), "x"),
                    Expr::field(Expr::var("s"), "y"),
                ),
            )
            .unwrap();
        assert_eq!(v.as_scalar().unwrap().as_i64(), 3);
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let inf = Stmt::While {
            cond: Expr::int(1),
            body: Block::new(),
        };
        let result = h.exec(&mut env, &inf);
        assert!(matches!(
            result,
            Err(RuntimeError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn uninitialised_reads_are_flagged() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        h.exec(
            &mut env,
            &Stmt::decl("x", Type::Scalar(ScalarType::Int), None),
        )
        .unwrap();
        assert!(matches!(
            h.eval(&mut env, &Expr::var("x")),
            Err(RuntimeError::UninitializedRead { .. })
        ));
    }

    #[test]
    fn short_circuit_prevents_rhs_evaluation() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        // 0 && (1/0) must not trap.
        let e = Expr::binary(
            BinOp::LAnd,
            Expr::int(0),
            Expr::binary(BinOp::Div, Expr::int(1), Expr::int(0)),
        );
        assert_eq!(
            h.eval(&mut env, &e).unwrap().as_scalar().unwrap().as_i64(),
            0
        );
    }

    #[test]
    fn emi_guard_follows_dead_array() {
        let mut program = empty_program();
        program.dead_len = 4;
        let mut h = Harness::new(program);
        let mut env = Env::new();
        // Simulate the host-side dead array: dead[j] = j.
        let dead_obj = h.memory.alloc_with_cells(
            "dead_buf",
            Type::Scalar(ScalarType::Int).array_of(4),
            AddressSpace::Global,
            (0..4).map(|j| Cell::Bits(j as u64)).collect(),
        );
        let param_obj = h.memory.alloc_with_cells(
            "dead",
            Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Global),
            AddressSpace::Private,
            vec![Cell::Ptr(PointerValue {
                obj: dead_obj,
                offset: 0,
                pointee: Type::Scalar(ScalarType::Int),
                space: AddressSpace::Global,
            })],
        );
        env.bind("dead", param_obj);
        h.exec(
            &mut env,
            &Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(0))),
        )
        .unwrap();
        let emi = Stmt::Emi(clc::EmiBlock {
            index: 0,
            guard: (3, 1),
            body: Block::of(vec![Stmt::assign(Expr::var("x"), Expr::int(99))]),
        });
        h.exec(&mut env, &emi).unwrap();
        // Guard dead[3] < dead[1] is false, so x stays 0.
        assert_eq!(
            h.eval(&mut env, &Expr::var("x"))
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_i64(),
            0
        );
    }

    #[test]
    fn atomics_return_old_value() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        h.exec(
            &mut env,
            &Stmt::decl(
                "c",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::lit(5, ScalarType::UInt)),
            ),
        )
        .unwrap();
        let inc = Expr::builtin(Builtin::AtomicInc, vec![Expr::addr_of(Expr::var("c"))]);
        assert_eq!(
            h.eval(&mut env, &inc)
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_u64(),
            5
        );
        assert_eq!(
            h.eval(&mut env, &Expr::var("c"))
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_u64(),
            6
        );
        let cmpxchg = Expr::builtin(
            Builtin::AtomicCmpxchg,
            vec![
                Expr::addr_of(Expr::var("c")),
                Expr::lit(6, ScalarType::UInt),
                Expr::lit(42, ScalarType::UInt),
            ],
        );
        assert_eq!(
            h.eval(&mut env, &cmpxchg)
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_u64(),
            6
        );
        assert_eq!(
            h.eval(&mut env, &Expr::var("c"))
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_u64(),
            42
        );
    }

    #[test]
    fn vector_comparison_produces_minus_one() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let e = Expr::binary(
            BinOp::Lt,
            Expr::VectorLit {
                elem: ScalarType::Int,
                width: clc::VectorWidth::W2,
                parts: vec![Expr::int(1), Expr::int(5)],
            },
            Expr::VectorLit {
                elem: ScalarType::Int,
                width: clc::VectorWidth::W2,
                parts: vec![Expr::int(3), Expr::int(3)],
            },
        );
        match h.eval(&mut env, &e).unwrap() {
            Value::Vector(ty, lanes) => {
                assert_eq!(ty, ScalarType::Int);
                assert_eq!(
                    lanes
                        .iter()
                        .map(|&b| Scalar::from_bits(b, ScalarType::Int).as_i64())
                        .collect::<Vec<_>>(),
                    vec![-1, 0]
                );
            }
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn clamp_ub_and_safe_clamp() {
        let mut h = Harness::new(empty_program());
        let mut env = Env::new();
        let bad = Expr::builtin(
            Builtin::Clamp,
            vec![Expr::int(5), Expr::int(9), Expr::int(1)],
        );
        assert!(matches!(
            h.eval(&mut env, &bad),
            Err(RuntimeError::InvalidClamp)
        ));
        let safe = Expr::builtin(
            Builtin::SafeClamp,
            vec![Expr::int(5), Expr::int(9), Expr::int(1)],
        );
        assert_eq!(
            h.eval(&mut env, &safe)
                .unwrap()
                .as_scalar()
                .unwrap()
                .as_i64(),
            5
        );
        let ok = Expr::builtin(
            Builtin::Clamp,
            vec![Expr::int(5), Expr::int(0), Expr::int(3)],
        );
        assert_eq!(
            h.eval(&mut env, &ok).unwrap().as_scalar().unwrap().as_i64(),
            3
        );
    }

    /// Regression: `min`/`max` must return the winning operand *converted* to
    /// the usual-arithmetic-conversion type, not the raw operand, so that the
    /// result's type does not depend on which side won.
    #[test]
    fn min_max_convert_to_common_type() {
        // max(-1, 1u): common type is uint, (uint)-1 = 0xFFFFFFFF wins.
        let r = scalar_builtin(
            Builtin::Max,
            &[
                Scalar::from_i128(-1, ScalarType::Int),
                Scalar::from_i128(1, ScalarType::UInt),
            ],
        )
        .unwrap();
        assert_eq!(r.ty, ScalarType::UInt);
        assert_eq!(r.as_u64(), 0xFFFF_FFFF);
        // min(int, long): winner keeps the common (long) type.
        let r = scalar_builtin(
            Builtin::Min,
            &[
                Scalar::from_i128(-2, ScalarType::Int),
                Scalar::from_i128(3, ScalarType::Long),
            ],
        )
        .unwrap();
        assert_eq!(r.ty, ScalarType::Long);
        assert_eq!(r.as_i64(), -2);
    }

    /// Regression: `abs` on unsigned operands is the identity (OpenCL defines
    /// `abs` on unsigned types as such); it must not be routed through the
    /// signed interpretation of the bits.
    #[test]
    fn abs_on_unsigned_is_identity() {
        let r = scalar_builtin(
            Builtin::Abs,
            &[Scalar::from_bits(u64::MAX, ScalarType::ULong)],
        )
        .unwrap();
        assert_eq!(r.ty, ScalarType::ULong);
        assert_eq!(r.as_u64(), u64::MAX);
        // Signed behaviour is unchanged: abs(INT_MIN) wraps into uint.
        let r = scalar_builtin(
            Builtin::Abs,
            &[Scalar::from_i128(i128::from(i32::MIN), ScalarType::Int)],
        )
        .unwrap();
        assert_eq!(r.ty, ScalarType::UInt);
        assert_eq!(r.as_u64(), 0x8000_0000);
    }

    /// Regression: OpenCL C §6.3(j) — a shift amount is taken modulo the
    /// promoted left-operand width instead of raising a runtime error (the
    /// old `InvalidShift` behaviour was C semantics, not OpenCL's).
    #[test]
    fn shift_amounts_wrap_modulo_the_promoted_width() {
        let shl = |lhs: Scalar, rhs: Scalar| scalar_binop(BinOp::Shl, lhs, rhs).unwrap();
        let shr = |lhs: Scalar, rhs: Scalar| scalar_binop(BinOp::Shr, lhs, rhs).unwrap();
        let int = |v: i128| Scalar::from_i128(v, ScalarType::Int);
        let long = |v: i128| Scalar::from_i128(v, ScalarType::Long);

        // 1 << 33 on int: 33 mod 32 = 1.
        assert_eq!(shl(int(1), long(33)).as_u64(), 2);
        // 1 << 32 on int: exactly the width wraps to 0 — including when the
        // 64-bit amount's low 32 bits are zero (`1 << 32` must not slip
        // through a u32 truncation as a shift by 0... it IS a shift by 0
        // now, by specification).
        assert_eq!(shl(int(1), long(1i128 << 32)).as_u64(), 1);
        // The promoted width is the LEFT operand's: 1L << 64 wraps to 0.
        assert_eq!(shl(long(1), long(64)).as_u64(), 1);
        assert_eq!(shl(long(1), long(65)).as_u64(), 2);
        // char/short promote to int, so the modulus is 32, not 8/16.
        let ch = Scalar::from_i128(1, ScalarType::Char);
        let r = shl(ch, int(9));
        assert_eq!(r.ty, ScalarType::Int);
        assert_eq!(r.as_u64(), 1 << 9);
        assert_eq!(shl(ch, int(33)).as_u64(), 2);

        // Negative amounts mask their two's complement bit pattern:
        // -1 & 31 = 31, -5 & 31 = 27 — on both raw shift directions.
        assert_eq!(shl(int(1), int(-1)).as_u64(), 0x8000_0000);
        assert_eq!(shl(int(1), int(-5)).as_u64(), 1 << 27);
        assert_eq!(shr(int(i32::MIN as i128), int(-1)).as_i64(), -1);
        // A negative char amount sign-extends before masking against a
        // 64-bit left operand: (char)-5 is ...1111011, & 63 = 59.
        let neg_char = Scalar::from_i128(-5, ScalarType::Char);
        assert_eq!(shl(long(1), neg_char).as_u64(), 1u64 << 59);

        // Signed right shifts stay arithmetic; unsigned stay logical.
        assert_eq!(shr(int(-8), int(34)).as_i64(), -2);
        let uns = Scalar::from_bits(0x8000_0000, ScalarType::UInt);
        assert_eq!(shr(uns, int(33)).as_u64(), 0x4000_0000);

        // In-range amounts are untouched.
        assert_eq!(shl(int(1), long(31)).as_u64(), 0x8000_0000);
    }

    /// §6.3(j) applies lane-wise to vector shifts too — but vector operands
    /// are exempt from integer promotion, so every lane's amount wraps
    /// modulo the **element** width (8 for char lanes, not the scalar
    /// rule's promoted 32).
    #[test]
    fn vector_shift_amounts_wrap_modulo_the_element_width() {
        // char lanes mask modulo 8: 1<<9 is 1<<1, 1<<8 is 1<<0, a -1
        // amount masks to 7, and overflow stays within the 8-bit lane.
        let lanes = Value::Vector(ScalarType::Char, vec![1, 1, 1, 0x40].into());
        let amounts = Value::Vector(
            ScalarType::Char,
            vec![9, 8, Scalar::from_i128(-1, ScalarType::Char).bits, 1].into(),
        );
        let shifted = value_binop(BinOp::Shl, lanes, amounts).unwrap();
        match shifted {
            Value::Vector(elem, lanes) => {
                assert_eq!(elem, ScalarType::Char, "vector lanes must not promote");
                assert_eq!(lanes, vec![2, 1, 0x80, 0x80]);
            }
            other => panic!("vector shift produced {other:?}"),
        }
        // Contrast with the scalar rule: a scalar char promotes to int, so
        // the same 1 << 9 computes 512 there.
        let scalar = scalar_binop(
            BinOp::Shl,
            Scalar::from_i128(1, ScalarType::Char),
            Scalar::from_i128(9, ScalarType::Char),
        )
        .unwrap();
        assert_eq!(scalar.ty, ScalarType::Int);
        assert_eq!(scalar.as_u64(), 512);
        let lanes = Value::Vector(ScalarType::Int, vec![1, 2, 4, 8].into());
        let amounts = Value::Vector(
            ScalarType::Int,
            vec![
                33,                                          // 33 mod 32 = 1
                32,                                          // wraps to 0
                Scalar::from_i128(-1, ScalarType::Int).bits, // -1 & 31 = 31
                1,
            ]
            .into(),
        );
        let shifted = value_binop(BinOp::Shl, lanes, amounts).unwrap();
        match shifted {
            Value::Vector(elem, lanes) => {
                assert_eq!(elem, ScalarType::Int);
                // 1<<1, 2<<0, 4<<31 (overflow masks to 0 at 32 bits), 8<<1.
                assert_eq!(lanes, vec![2, 2, 0, 16]);
            }
            other => panic!("vector shift produced {other:?}"),
        }
        // A scalar amount broadcasts, wrapping identically on every lane.
        let lanes = Value::Vector(ScalarType::Int, vec![1, 2, 3, 4].into());
        let shifted = value_binop(
            BinOp::Shl,
            lanes,
            Value::Scalar(Scalar::from_i128(33, ScalarType::Int)),
        )
        .unwrap();
        match shifted {
            Value::Vector(_, lanes) => assert_eq!(lanes, vec![2, 4, 6, 8]),
            other => panic!("vector shift produced {other:?}"),
        }
    }
}
