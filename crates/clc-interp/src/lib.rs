//! # clc-interp — an OpenCL NDRange emulator for the CLsmith reproduction
//!
//! This crate plays the role that Oclgrind plays in the paper (configuration
//! 19 of Table 1): a platform-independent reference executor for OpenCL C
//! kernels.  It executes a [`clc::Program`] over its NDRange with
//! work-group-accurate barrier semantics, intra-group atomics, the four
//! OpenCL address spaces, data-race detection and barrier-divergence
//! detection.
//!
//! ## Execution model
//!
//! * Work-groups run sequentially (OpenCL 1.x offers no inter-group
//!   synchronisation, so this preserves the semantics of well-defined
//!   kernels).
//! * Within a group, work-items are interpreted cooperatively: each runs
//!   until it finishes or reaches a `barrier()` statement in the kernel
//!   body, at which point control passes to the next work-item.  The
//!   scheduling order is configurable ([`Schedule`]) which the harness uses
//!   both to validate determinism of generated kernels and to expose the
//!   data races the paper found in Parboil/Rodinia benchmarks.
//! * Barriers inside helper functions are "soft": they are counted but do
//!   not synchronise.  CLsmith only emits barriers in the kernel body, and
//!   the paper's callee-barrier examples (Figures 1(d), 2(c), 2(d)) do not
//!   depend on callee barriers for cross-thread communication.
//!
//! ## Execution tiers
//!
//! Two engines implement this model and are required to agree bit-for-bit
//! on results, errors and race verdicts:
//!
//! * [`ExecutionTier::TreeWalk`] — the recursive AST evaluator in [`eval`];
//! * [`ExecutionTier::Bytecode`] (the default) — [`compile`](compile())
//!   lowers each kernel into a flat instruction stream with resolved
//!   variable slots and jump-target control flow, and [`vm`] executes it.
//!
//! Select a tier per launch via [`LaunchOptions::tier`] or process-wide with
//! the `CLC_INTERP_TIER` environment variable (`tree` or `bytecode`).
//!
//! ## Example
//!
//! ```
//! use clc::{BufferSpec, Expr, IdKind, KernelDef, LaunchConfig, Program, ScalarType, Stmt};
//!
//! // kernel void k(global ulong *out) { out[get_global_linear_id()] = 7; }
//! let mut program = Program::new(
//!     KernelDef {
//!         name: "k".into(),
//!         params: Program::standard_clsmith_params(0),
//!         body: clc::Block::of(vec![Stmt::assign(
//!             Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
//!             Expr::int(7),
//!         )]),
//!     },
//!     LaunchConfig::single_group(4),
//! );
//! program.buffers.push(BufferSpec::result("out", ScalarType::ULong, 4));
//!
//! let result = clc_interp::run(&program)?;
//! assert_eq!(result.result_string, "7,7,7,7");
//! # Ok::<(), clc_interp::RuntimeError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod error;
pub mod eval;
pub mod exec;
pub mod memory;
pub mod race;
pub mod value;
pub mod vm;

pub use compile::{compile, CompiledProgram};
pub use error::{RaceReport, RuntimeError};
pub use eval::{Ctx, Env, Flow, ThreadIds};
pub use exec::{
    fnv1a, launch, run, CompiledKernel, ExecutionTier, LaunchOptions, LaunchResult, Schedule,
};
pub use memory::{Memory, Object};
pub use race::{AccessKind, RaceDetector, RaceStats};
pub use value::{Cell, Lanes, ObjId, PointerValue, Scalar, Value};
