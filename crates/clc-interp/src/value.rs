//! Runtime values: fixed-width two's complement scalars, vectors, pointers
//! and flattened aggregates.
//!
//! OpenCL mandates exact integer widths and two's complement representation
//! (§3.1 of the paper), so every scalar is stored as the raw bit pattern in a
//! `u64` together with its [`ScalarType`]; arithmetic masks results back to
//! the type's width, which makes unsigned overflow and the "safe math"
//! wrapping semantics exact.

use clc::{AddressSpace, ScalarType, Type};
use std::fmt;

/// A scalar runtime value: a bit pattern plus its type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scalar {
    /// The scalar type (determines width and signedness).
    pub ty: ScalarType,
    /// The raw bits, already masked to the type's width.
    pub bits: u64,
}

impl Scalar {
    /// Creates a scalar from a (possibly out-of-range) signed value,
    /// wrapping to the type's width.
    pub fn from_i128(value: i128, ty: ScalarType) -> Scalar {
        Scalar {
            ty,
            bits: mask(value as u64, ty),
        }
    }

    /// Creates a scalar from raw bits (masked to width).
    pub fn from_bits(bits: u64, ty: ScalarType) -> Scalar {
        Scalar {
            ty,
            bits: mask(bits, ty),
        }
    }

    /// A zero of the given type.
    pub fn zero(ty: ScalarType) -> Scalar {
        Scalar { ty, bits: 0 }
    }

    /// The signed interpretation of the bits.
    pub fn as_i64(self) -> i64 {
        sign_extend(self.bits, self.ty)
    }

    /// The unsigned interpretation of the bits.
    pub fn as_u64(self) -> u64 {
        self.bits
    }

    /// Whether the value is non-zero (C truthiness).
    pub fn is_true(self) -> bool {
        self.bits != 0
    }

    /// Converts to another scalar type (truncation / sign- or zero-extension
    /// exactly as C conversions behave on two's complement machines).
    pub fn convert(self, to: ScalarType) -> Scalar {
        if self.ty.is_signed() {
            Scalar::from_i128(self.as_i64() as i128, to)
        } else {
            Scalar::from_i128(self.as_u64() as i128, to)
        }
    }

    /// Renders the value the way a CLsmith host program would print it
    /// (signed types as signed decimals, unsigned as unsigned decimals).
    pub fn render(self) -> String {
        if self.ty.is_signed() {
            self.as_i64().to_string()
        } else {
            self.as_u64().to_string()
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.render(), self.ty)
    }
}

/// Masks a bit pattern to the width of `ty`.
pub fn mask(bits: u64, ty: ScalarType) -> u64 {
    match ty.bits() {
        8 => bits & 0xff,
        16 => bits & 0xffff,
        32 => bits & 0xffff_ffff,
        _ => bits,
    }
}

/// Sign-extends masked bits according to `ty`.
pub fn sign_extend(bits: u64, ty: ScalarType) -> i64 {
    let width = ty.bits();
    if !ty.is_signed() {
        return bits as i64;
    }
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

/// Identifies an allocated object in the [`Memory`](crate::memory::Memory)
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub usize);

/// A typed pointer value: an object, a cell offset within it, the pointee
/// type and the address space the pointer refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PointerValue {
    /// Target object.
    pub obj: ObjId,
    /// Cell offset within the object.
    pub offset: usize,
    /// Pointee type (determines the stride of indexing).
    pub pointee: Type,
    /// Address space of the target object.
    pub space: AddressSpace,
}

/// A single memory cell: one scalar slot or one pointer slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Cell {
    /// Uninitialised memory.  Reading it is reported as undefined behaviour
    /// so that the reducer never introduces reads of indeterminate values.
    #[default]
    Uninit,
    /// A scalar bit pattern (the static type of the enclosing declaration
    /// determines the interpretation).
    Bits(u64),
    /// A pointer.
    Ptr(PointerValue),
}

/// Lane storage for [`Value::Vector`].
///
/// OpenCL vectors have 2–16 lanes, and the widths CLsmith emits most
/// (2 and 4 lanes) fit inline, so the VM's hottest value path — vector
/// arithmetic on temporaries — allocates nothing.  Wider vectors (8/16
/// lanes) spill to a heap `Vec`.  The representation is invisible through
/// the API: `Lanes` dereferences to `[u64]`, compares and hashes by lane
/// contents, and collects from any `u64` iterator.
#[derive(Clone)]
pub struct Lanes(LanesRepr);

#[derive(Clone)]
enum LanesRepr {
    /// `len` lanes stored inline; the unused tail stays zeroed.
    Inline { len: u8, buf: [u64; 4] },
    /// More than four lanes, on the heap.
    Heap(Vec<u64>),
}

impl Lanes {
    /// An empty lane list (lanes are then [`push`](Lanes::push)ed).
    pub fn new() -> Lanes {
        Lanes(LanesRepr::Inline {
            len: 0,
            buf: [0; 4],
        })
    }

    /// An empty lane list that will hold `n` lanes (heap storage is
    /// reserved up front when `n` exceeds the inline capacity).
    pub fn with_capacity(n: usize) -> Lanes {
        if n <= 4 {
            Lanes::new()
        } else {
            Lanes(LanesRepr::Heap(Vec::with_capacity(n)))
        }
    }

    /// `n` copies of the same bit pattern (the vector broadcast forms
    /// `(int4)(x)` and scalar-to-vector conversion).
    pub fn splat(bits: u64, n: usize) -> Lanes {
        if n <= 4 {
            let mut buf = [0; 4];
            buf[..n].fill(bits);
            Lanes(LanesRepr::Inline { len: n as u8, buf })
        } else {
            Lanes(LanesRepr::Heap(vec![bits; n]))
        }
    }

    /// Appends one lane.
    pub fn push(&mut self, bits: u64) {
        match &mut self.0 {
            LanesRepr::Inline { len, buf } if (*len as usize) < 4 => {
                buf[*len as usize] = bits;
                *len += 1;
            }
            LanesRepr::Inline { len, buf } => {
                let mut spilled = Vec::with_capacity(8);
                spilled.extend_from_slice(&buf[..*len as usize]);
                spilled.push(bits);
                self.0 = LanesRepr::Heap(spilled);
            }
            LanesRepr::Heap(v) => v.push(bits),
        }
    }

    /// The lanes as a slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            LanesRepr::Inline { len, buf } => &buf[..*len as usize],
            LanesRepr::Heap(v) => v,
        }
    }

    /// The lanes as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            LanesRepr::Inline { len, buf } => &mut buf[..*len as usize],
            LanesRepr::Heap(v) => v,
        }
    }
}

impl Default for Lanes {
    fn default() -> Lanes {
        Lanes::new()
    }
}

impl std::ops::Deref for Lanes {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Lanes {
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl PartialEq for Lanes {
    fn eq(&self, other: &Lanes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Lanes {}

impl std::hash::Hash for Lanes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<Vec<u64>> for Lanes {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Lanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl From<Vec<u64>> for Lanes {
    fn from(v: Vec<u64>) -> Lanes {
        if v.len() <= 4 {
            let mut lanes = Lanes::new();
            for bits in v {
                lanes.push(bits);
            }
            lanes
        } else {
            Lanes(LanesRepr::Heap(v))
        }
    }
}

impl From<&[u64]> for Lanes {
    fn from(v: &[u64]) -> Lanes {
        v.iter().copied().collect()
    }
}

impl Extend<u64> for Lanes {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for bits in iter {
            self.push(bits);
        }
    }
}

impl FromIterator<u64> for Lanes {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Lanes {
        let iter = iter.into_iter();
        let mut lanes = Lanes::with_capacity(iter.size_hint().0);
        lanes.extend(iter);
        lanes
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Integer scalar.
    Scalar(Scalar),
    /// Integer vector: element type plus one bit pattern per lane.
    Vector(ScalarType, Lanes),
    /// Pointer.
    Pointer(PointerValue),
    /// A struct or array rvalue, flattened to cells (used for whole-struct
    /// assignment and struct-by-value argument passing).
    Aggregate(Type, Vec<Cell>),
}

impl Value {
    /// A scalar `int` value.
    pub fn int(v: i64) -> Value {
        Value::Scalar(Scalar::from_i128(v as i128, ScalarType::Int))
    }

    /// A scalar of the given type.
    pub fn scalar(v: i128, ty: ScalarType) -> Value {
        Value::Scalar(Scalar::from_i128(v, ty))
    }

    /// Interprets the value as a scalar, if it is one.
    pub fn as_scalar(&self) -> Option<Scalar> {
        match self {
            Value::Scalar(s) => Some(*s),
            _ => None,
        }
    }

    /// C truthiness of the value (used for conditions).
    pub fn is_true(&self) -> Option<bool> {
        match self {
            Value::Scalar(s) => Some(s.is_true()),
            Value::Pointer(_) => Some(true),
            Value::Vector(_, lanes) => Some(lanes.iter().any(|&l| l != 0)),
            Value::Aggregate(..) => None,
        }
    }

    /// A short description of the value's shape for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Vector(..) => "vector",
            Value::Pointer(_) => "pointer",
            Value::Aggregate(..) => "aggregate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_and_sign_extension() {
        let c = Scalar::from_i128(-1, ScalarType::Char);
        assert_eq!(c.bits, 0xff);
        assert_eq!(c.as_i64(), -1);
        assert_eq!(c.as_u64(), 0xff);
        let u = Scalar::from_i128(300, ScalarType::UChar);
        assert_eq!(u.as_u64(), 44);
        let i = Scalar::from_i128(i128::from(i32::MIN) - 1, ScalarType::Int);
        assert_eq!(i.as_i64(), i64::from(i32::MAX));
    }

    #[test]
    fn conversions_match_c_semantics() {
        // (uint)(char)-1 == 0xffffffff
        let c = Scalar::from_i128(-1, ScalarType::Char);
        assert_eq!(c.convert(ScalarType::UInt).as_u64(), 0xffff_ffff);
        // (char)(uint)255 == -1
        let u = Scalar::from_i128(255, ScalarType::UInt);
        assert_eq!(u.convert(ScalarType::Char).as_i64(), -1);
        // (ulong)(int)-1 == u64::MAX
        let i = Scalar::from_i128(-1, ScalarType::Int);
        assert_eq!(i.convert(ScalarType::ULong).as_u64(), u64::MAX);
        // (int)(ulong)u64::MAX == -1
        let l = Scalar::from_bits(u64::MAX, ScalarType::ULong);
        assert_eq!(l.convert(ScalarType::Int).as_i64(), -1);
    }

    #[test]
    fn rendering_respects_signedness() {
        assert_eq!(Scalar::from_i128(-1, ScalarType::Int).render(), "-1");
        assert_eq!(
            Scalar::from_i128(-1, ScalarType::UInt).render(),
            "4294967295"
        );
        assert_eq!(
            Scalar::from_bits(0xffff_0001, ScalarType::ULong).render(),
            "4294901761"
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::int(3).is_true().unwrap());
        assert!(!Value::int(0).is_true().unwrap());
        assert!(Value::Vector(ScalarType::Int, vec![0, 0, 1, 0].into())
            .is_true()
            .unwrap());
        assert!(!Value::Vector(ScalarType::Int, vec![0, 0].into())
            .is_true()
            .unwrap());
    }

    #[test]
    fn value_kinds() {
        assert_eq!(Value::int(1).kind(), "scalar");
        assert_eq!(
            Value::Vector(ScalarType::Int, vec![0, 0].into()).kind(),
            "vector"
        );
    }

    #[test]
    fn lanes_stay_inline_up_to_four_and_spill_beyond() {
        // Every construction path must agree with a plain Vec, across the
        // inline/heap boundary (4 → 5 lanes) and up to the OpenCL maximum
        // width of 16.
        for n in 0..=16usize {
            let expected: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            let collected: Lanes = expected.iter().copied().collect();
            assert_eq!(collected, expected, "collect at {n} lanes");
            let mut pushed = Lanes::with_capacity(n);
            for &bits in &expected {
                pushed.push(bits);
            }
            assert_eq!(pushed, expected, "push at {n} lanes");
            assert_eq!(Lanes::from(expected.clone()), expected, "from at {n}");
            assert_eq!(collected, pushed);
            assert_eq!(collected.len(), n);
        }
        assert_eq!(Lanes::splat(7, 3), vec![7, 7, 7]);
        assert_eq!(Lanes::splat(7, 8), vec![7; 8]);
        // Mutation through the slice view.
        let mut lanes = Lanes::from(vec![1, 2, 3, 4]);
        lanes[2] = 9;
        assert_eq!(lanes, vec![1, 2, 9, 4]);
        // Pushing past the inline capacity preserves earlier lanes.
        lanes.push(5);
        assert_eq!(lanes, vec![1, 2, 9, 4, 5]);
        // Equality and hashing are content-based across representations.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let short: Lanes = vec![1, 2].into();
        let same: Lanes = [1u64, 2].iter().copied().collect();
        let hash = |l: &Lanes| {
            let mut h = DefaultHasher::new();
            l.hash(&mut h);
            h.finish()
        };
        assert_eq!(short, same);
        assert_eq!(hash(&short), hash(&same));
    }
}
