//! The cell-based memory model.
//!
//! Each allocated object (a variable, a kernel buffer, the permutation
//! table, ...) occupies a contiguous run of *cells*, where one cell holds one
//! scalar or one pointer.  Aggregates are flattened using
//! [`Type::cell_count`] and [`Type::field_offset`], which keeps layout simple
//! and byte-order-free; the byte-level struct padding bugs the paper
//! describes (Figure 1(a), Figure 2(a)) are modelled as AST transformations
//! in the simulated compilers rather than as layout differences here.

use crate::error::RuntimeError;
use crate::value::{Cell, ObjId, PointerValue, Scalar};
use clc::{AddressSpace, ScalarType, StructDef, Type};

/// An allocated object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Name used in diagnostics (variable or buffer name).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Address space.
    pub space: AddressSpace,
    /// Flattened storage.
    pub cells: Vec<Cell>,
    /// Whether the object is live (freed objects are kept so that dangling
    /// pointers are detected rather than silently reused).
    pub live: bool,
}

/// The object store for one kernel launch.
#[derive(Debug, Default)]
pub struct Memory {
    objects: Vec<Object>,
    /// Indices of freed objects whose storage may be reused.
    free_list: Vec<usize>,
    /// Cell buffers recovered from freed objects, reused by later
    /// allocations.  Loop bodies declare (and scope-exit free) the same
    /// variables every iteration, so without this pool the interpreter
    /// re-allocates identical `Vec<Cell>`s millions of times per launch.
    spare_cells: Vec<Vec<Cell>>,
    /// Total objects allocated over this memory's lifetime (slot reuse
    /// included).  Diagnostic: the register file shows up here as loop
    /// temporaries no longer churning the object table.
    allocations: u64,
}

/// Cap on pooled cell buffers: enough for every per-iteration declaration
/// of a deeply nested kernel, while one huge freed buffer set cannot pin
/// unbounded memory for the rest of the launch.
const SPARE_CELL_BUFFERS: usize = 64;

impl Memory {
    /// Creates an empty store.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// A cell buffer of `count` copies of `fill`, reusing a pooled
    /// allocation when one is available.
    fn filled_cells(&mut self, count: usize, fill: Cell) -> Vec<Cell> {
        match self.spare_cells.pop() {
            Some(mut cells) => {
                cells.clear();
                cells.resize(count, fill);
                cells
            }
            None => vec![fill; count],
        }
    }

    /// Allocates an object of `ty`, uninitialised.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        space: AddressSpace,
        structs: &[StructDef],
    ) -> ObjId {
        let cells = self.filled_cells(ty.cell_count(structs), Cell::Uninit);
        self.alloc_with_cells(name, ty, space, cells)
    }

    /// Allocates an object of `ty` with every cell zeroed.
    pub fn alloc_zeroed(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        space: AddressSpace,
        structs: &[StructDef],
    ) -> ObjId {
        let cells = self.filled_cells(ty.cell_count(structs), Cell::Bits(0));
        self.alloc_with_cells(name, ty, space, cells)
    }

    /// Allocates an object with explicit cell contents.
    pub fn alloc_with_cells(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        space: AddressSpace,
        cells: Vec<Cell>,
    ) -> ObjId {
        let object = Object {
            name: name.into(),
            ty,
            space,
            cells,
            live: true,
        };
        self.allocations += 1;
        if let Some(slot) = self.free_list.pop() {
            self.objects[slot] = object;
            ObjId(slot)
        } else {
            self.objects.push(object);
            ObjId(self.objects.len() - 1)
        }
    }

    /// Marks an object as dead, recycling both its slot and (up to the pool
    /// cap) its cell storage.
    pub fn free(&mut self, id: ObjId) {
        if let Some(obj) = self.objects.get_mut(id.0) {
            if obj.live {
                obj.live = false;
                let mut cells = std::mem::take(&mut obj.cells);
                if cells.capacity() > 0 && self.spare_cells.len() < SPARE_CELL_BUFFERS {
                    cells.clear();
                    self.spare_cells.push(cells);
                }
                self.free_list.push(id.0);
            }
        }
    }

    /// Number of live objects (diagnostics).
    pub fn live_objects(&self) -> usize {
        self.objects.iter().filter(|o| o.live).count()
    }

    /// Total objects ever allocated by this memory (diagnostics).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Accesses an object, failing if it has been freed.
    pub fn object(&self, id: ObjId) -> Result<&Object, RuntimeError> {
        match self.objects.get(id.0) {
            Some(o) if o.live => Ok(o),
            Some(o) => Err(RuntimeError::InvalidAccess {
                detail: format!("use of freed object `{}`", o.name),
            }),
            None => Err(RuntimeError::InvalidAccess {
                detail: format!("bad object id {}", id.0),
            }),
        }
    }

    pub(crate) fn object_mut(&mut self, id: ObjId) -> Result<&mut Object, RuntimeError> {
        match self.objects.get_mut(id.0) {
            Some(o) if o.live => Ok(o),
            Some(o) => Err(RuntimeError::InvalidAccess {
                detail: format!("use of freed object `{}`", o.name),
            }),
            None => Err(RuntimeError::InvalidAccess {
                detail: format!("bad object id {}", id.0),
            }),
        }
    }

    /// Reads one raw cell.
    pub fn read_cell(&self, id: ObjId, offset: usize) -> Result<Cell, RuntimeError> {
        let obj = self.object(id)?;
        match obj.cells.get(offset) {
            Some(c) => Ok(c.clone()),
            None => Err(RuntimeError::InvalidAccess {
                detail: format!(
                    "offset {offset} out of bounds for `{}` ({} cells)",
                    obj.name,
                    obj.cells.len()
                ),
            }),
        }
    }

    /// Reads a scalar of type `ty` from a cell.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds offsets, reads of uninitialised cells and
    /// reads of pointer cells at scalar type.
    pub fn read_scalar(
        &self,
        id: ObjId,
        offset: usize,
        ty: ScalarType,
    ) -> Result<Scalar, RuntimeError> {
        let obj = self.object(id)?;
        match obj.cells.get(offset) {
            Some(Cell::Bits(bits)) => Ok(Scalar::from_bits(*bits, ty)),
            Some(Cell::Uninit) => Err(RuntimeError::UninitializedRead {
                object: obj.name.clone(),
            }),
            Some(Cell::Ptr(_)) => Err(RuntimeError::TypeMismatch {
                detail: format!("reading pointer cell of `{}` as scalar", obj.name),
            }),
            None => Err(RuntimeError::InvalidAccess {
                detail: format!("offset {offset} out of bounds for `{}`", obj.name),
            }),
        }
    }

    /// Reads a pointer from a cell.
    pub fn read_pointer(&self, id: ObjId, offset: usize) -> Result<PointerValue, RuntimeError> {
        let obj = self.object(id)?;
        match obj.cells.get(offset) {
            Some(Cell::Ptr(p)) => Ok(p.clone()),
            Some(Cell::Uninit) => Err(RuntimeError::UninitializedRead {
                object: obj.name.clone(),
            }),
            Some(Cell::Bits(_)) => Err(RuntimeError::TypeMismatch {
                detail: format!("reading scalar cell of `{}` as pointer", obj.name),
            }),
            None => Err(RuntimeError::InvalidAccess {
                detail: format!("offset {offset} out of bounds for `{}`", obj.name),
            }),
        }
    }

    /// Writes one raw cell.
    pub fn write_cell(&mut self, id: ObjId, offset: usize, cell: Cell) -> Result<(), RuntimeError> {
        let obj = self.object_mut(id)?;
        match obj.cells.get_mut(offset) {
            Some(slot) => {
                *slot = cell;
                Ok(())
            }
            None => Err(RuntimeError::InvalidAccess {
                detail: format!(
                    "offset {offset} out of bounds for `{}` ({} cells)",
                    obj.name,
                    obj.cells.len()
                ),
            }),
        }
    }

    /// Writes a scalar value, masked to `ty`, into a cell.
    pub fn write_scalar(
        &mut self,
        id: ObjId,
        offset: usize,
        value: Scalar,
        ty: ScalarType,
    ) -> Result<(), RuntimeError> {
        self.write_cell(id, offset, Cell::Bits(value.convert(ty).bits))
    }

    /// Copies `count` cells between (possibly identical) objects.
    pub fn copy_cells(
        &mut self,
        src: ObjId,
        src_offset: usize,
        dst: ObjId,
        dst_offset: usize,
        count: usize,
    ) -> Result<(), RuntimeError> {
        let mut buffer = Vec::with_capacity(count);
        for i in 0..count {
            buffer.push(self.read_cell(src, src_offset + i)?);
        }
        for (i, cell) in buffer.into_iter().enumerate() {
            self.write_cell(dst, dst_offset + i, cell)?;
        }
        Ok(())
    }

    /// Reads `count` cells as a vector of cells (used to build aggregate
    /// rvalues).
    pub fn read_cells(
        &self,
        id: ObjId,
        offset: usize,
        count: usize,
    ) -> Result<Vec<Cell>, RuntimeError> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(self.read_cell(id, offset + i)?);
        }
        Ok(out)
    }

    /// Writes a slice of cells starting at `offset`.
    pub fn write_cells(
        &mut self,
        id: ObjId,
        offset: usize,
        cells: &[Cell],
    ) -> Result<(), RuntimeError> {
        for (i, cell) in cells.iter().enumerate() {
            self.write_cell(id, offset + i, cell.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::ScalarType;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut m = Memory::new();
        let id = m.alloc_zeroed(
            "x",
            Type::Scalar(ScalarType::Int),
            AddressSpace::Private,
            &[],
        );
        assert_eq!(m.read_scalar(id, 0, ScalarType::Int).unwrap().as_i64(), 0);
        m.write_scalar(
            id,
            0,
            Scalar::from_i128(-7, ScalarType::Int),
            ScalarType::Int,
        )
        .unwrap();
        assert_eq!(m.read_scalar(id, 0, ScalarType::Int).unwrap().as_i64(), -7);
    }

    #[test]
    fn uninitialised_reads_are_errors() {
        let mut m = Memory::new();
        let id = m.alloc(
            "x",
            Type::Scalar(ScalarType::Int),
            AddressSpace::Private,
            &[],
        );
        assert!(matches!(
            m.read_scalar(id, 0, ScalarType::Int),
            Err(RuntimeError::UninitializedRead { .. })
        ));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut m = Memory::new();
        let id = m.alloc_zeroed(
            "a",
            Type::Scalar(ScalarType::Int).array_of(4),
            AddressSpace::Private,
            &[],
        );
        assert!(m.read_scalar(id, 3, ScalarType::Int).is_ok());
        assert!(m.read_scalar(id, 4, ScalarType::Int).is_err());
        assert!(m
            .write_scalar(id, 9, Scalar::zero(ScalarType::Int), ScalarType::Int)
            .is_err());
    }

    #[test]
    fn freed_objects_are_detected_and_reused() {
        let mut m = Memory::new();
        let a = m.alloc_zeroed(
            "a",
            Type::Scalar(ScalarType::Int),
            AddressSpace::Private,
            &[],
        );
        m.free(a);
        assert!(m.read_scalar(a, 0, ScalarType::Int).is_err());
        let b = m.alloc_zeroed(
            "b",
            Type::Scalar(ScalarType::Int),
            AddressSpace::Private,
            &[],
        );
        // Slot is recycled.
        assert_eq!(a.0, b.0);
        assert_eq!(m.live_objects(), 1);
    }

    #[test]
    fn cell_copies_move_aggregates() {
        let mut m = Memory::new();
        let src = m.alloc_zeroed(
            "src",
            Type::Scalar(ScalarType::Int).array_of(3),
            AddressSpace::Private,
            &[],
        );
        let dst = m.alloc_zeroed(
            "dst",
            Type::Scalar(ScalarType::Int).array_of(3),
            AddressSpace::Private,
            &[],
        );
        for i in 0..3 {
            m.write_scalar(
                src,
                i,
                Scalar::from_i128(i as i128 + 1, ScalarType::Int),
                ScalarType::Int,
            )
            .unwrap();
        }
        m.copy_cells(src, 0, dst, 0, 3).unwrap();
        assert_eq!(m.read_scalar(dst, 2, ScalarType::Int).unwrap().as_i64(), 3);
    }

    #[test]
    fn scalar_writes_convert_to_declared_type() {
        let mut m = Memory::new();
        let id = m.alloc_zeroed(
            "c",
            Type::Scalar(ScalarType::UChar),
            AddressSpace::Private,
            &[],
        );
        m.write_scalar(
            id,
            0,
            Scalar::from_i128(300, ScalarType::Int),
            ScalarType::UChar,
        )
        .unwrap();
        assert_eq!(
            m.read_scalar(id, 0, ScalarType::UChar).unwrap().as_u64(),
            44
        );
    }
}
