//! Lowering a [`clc::Program`] into flat bytecode for the [`crate::vm`]
//! execution tier.
//!
//! The compiler walks each function body once and produces a linear
//! instruction stream per function:
//!
//! * **Variable slots** — every lexical binding is resolved at compile time
//!   to a frame-slot index, eliminating the per-access name hashing and
//!   scope-chain walks of the tree-walking evaluator.  Names that are not
//!   statically in scope fall back to the per-group `local`-declaration
//!   table at runtime, exactly mirroring the tree walker's lookup order.
//! * **Pre-computed layout** — struct field offsets and aggregate
//!   initialiser offsets are folded at compile time.
//! * **Jump-target control flow** — `if` / `for` / `while` / `?:` and the
//!   short-circuit operators become conditional branches over basic blocks;
//!   `break` / `continue` / `return` become explicit scope-exit sequences
//!   plus jumps.
//! * **Barrier sites** — a kernel-body `barrier()` lowers to a dedicated
//!   instruction whose address identifies the barrier site for the
//!   divergence check; barriers in helper functions lower to soft-barrier
//!   counting, as in the tree walker.
//!
//! Compilation is total: constructs the tree walker would only reject *when
//! executed* (unknown variables or functions, non-lvalue assignment targets,
//! `break` outside a loop, ...) are lowered to [`Instr::Fail`] instructions
//! carrying the identical [`RuntimeError`], so dead code containing them
//! stays dead and live code fails with exactly the same error on both tiers.

use crate::error::RuntimeError;
use crate::value::{Lanes, Scalar};
use clc::expr::{BinOp, Builtin, Expr, IdKind, UnOp};
use clc::stmt::{Initializer, Stmt};
use clc::types::{AddressSpace, ScalarType, Type, VectorWidth};
use clc::{Param, Program};
use std::collections::{HashMap, HashSet};

/// The statically known element type of a fused memory access.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LeafTy {
    /// A scalar location.
    Scalar(ScalarType),
    /// A vector location.
    Vector(ScalarType, VectorWidth),
}

/// How a conditional branch treats its popped condition value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BranchKind {
    /// `if` condition: non-scalar conditions are a type error.
    IfCond,
    /// Ternary guard: non-scalar guards are a type error (different message).
    Ternary,
    /// Loop / EMI guards: non-scalar conditions count as false.
    Permissive,
}

/// One bytecode instruction.
///
/// The VM maintains a value stack and a place (lvalue) stack; the comments
/// note each instruction's effect as `pops → pushes`.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// `→ value` — push a literal scalar.
    Const(Scalar),
    /// `→ value` — push a work-item identity query result.
    Id(IdKind),
    /// `parts values → value` — assemble a vector literal (with broadcast).
    MakeVector {
        elem: ScalarType,
        width: VectorWidth,
        parts: u16,
    },
    /// `→ value` — load the whole object bound to a slot.
    LoadSlot(u16),
    /// `→ value` — fused load of a statically resolved scalar location:
    /// a slot plus a compile-time cell offset (0 for plain variables;
    /// folded struct-field / constant-index offsets otherwise).  `shared`
    /// selects race recording.
    LoadScalarSlot {
        slot: u16,
        offset: u32,
        ty: ScalarType,
        shared: bool,
    },
    /// `rhs-value → value?` — fused plain/compound assignment to a
    /// statically resolved scalar location; `push` is false in statement
    /// position where the result is discarded.
    StoreScalarSlot {
        slot: u16,
        offset: u32,
        ty: ScalarType,
        op: Option<BinOp>,
        shared: bool,
        push: bool,
    },
    /// `→ value` — fused load of a statically resolved vector location
    /// (single object lookup instead of one per lane).
    LoadVectorSlot {
        slot: u16,
        offset: u32,
        ty: ScalarType,
        width: VectorWidth,
        shared: bool,
    },
    /// `rhs-value → value?` — fused plain/compound assignment to a
    /// statically resolved vector location.
    StoreVectorSlot {
        slot: u16,
        offset: u32,
        ty: ScalarType,
        width: VectorWidth,
        op: Option<BinOp>,
        shared: bool,
        push: bool,
    },
    /// `→ value` — fused `p->field` load where `p` is a resolved slot whose
    /// declared pointee is a struct: the field offset and leaf type are
    /// folded against the declared struct id, verified at runtime against
    /// the actual pointee (a cast-retyped pointer falls back to the dynamic
    /// field lookup, preserving tree-walker semantics).
    ArrowSlotLoad {
        slot: u16,
        ptr_shared: bool,
        expect: clc::StructId,
        add: u32,
        leaf: LeafTy,
        field: Box<str>,
    },
    /// `rhs-value → value?` — fused plain/compound assignment to
    /// `p->field`.
    ArrowSlotStore {
        slot: u16,
        ptr_shared: bool,
        expect: clc::StructId,
        add: u32,
        leaf: LeafTy,
        field: Box<str>,
        op: Option<BinOp>,
        push: bool,
    },
    /// `→ value` — push a compile-time-folded vector literal.
    ConstVector(Box<(ScalarType, Lanes)>),
    /// `index-value → value` — fused `v[i]` load where `v` is a resolved
    /// slot: combines `PlaceSlot` + `ResolveIndexable` + `IndexPlace` +
    /// `LoadPlace` without materialising a place.
    IndexSlotLoad { slot: u16 },
    /// `rhs-value, index-value → value?` — fused plain/compound assignment
    /// to `v[i]` where `v` is a resolved slot.
    IndexSlotStore {
        slot: u16,
        op: Option<BinOp>,
        push: bool,
    },
    /// `→` — reset a register to *uninitialised*.  Emitted at every
    /// register declaration, so a loop body re-declaring the variable gets
    /// a fresh (uninitialised) value each iteration, exactly as
    /// `DeclPrivate`'s fresh object would.
    DeclReg { reg: u16 },
    /// `→` — declare a register with a literal initialiser folded in
    /// (`int i = 0`): the bits are pre-converted to the register's declared
    /// type at compile time.
    DeclRegInit { reg: u16, bits: u64 },
    /// `→ value` — push the scalar held in a register (fails with the tree
    /// walker's `UninitializedRead` when unset).
    LoadReg { reg: u16, ty: ScalarType },
    /// `rhs-value → value?` — plain/compound assignment to a register,
    /// mirroring `StoreScalarSlot`'s conversion and error semantics.
    StoreReg {
        reg: u16,
        ty: ScalarType,
        op: Option<BinOp>,
        push: bool,
    },
    /// `→ value?` — assignment to a register whose right-hand side is a
    /// literal folded into the instruction (`i = 0`, `acc += 3`).
    StoreRegImm {
        reg: u16,
        ty: ScalarType,
        op: Option<BinOp>,
        imm: Scalar,
        push: bool,
    },
    /// `→ value` — fused `LoadReg` + `BinaryImm` (`i < 10`, `i * 2`): reads
    /// the register and applies an operator with a literal right operand,
    /// without touching the register.
    RegBinopImm {
        reg: u16,
        ty: ScalarType,
        op: BinOp,
        imm: Scalar,
    },
    /// `value → value` — apply a unary operator.
    Unary(UnOp),
    /// `lhs rhs → value` — apply a non-logical binary operator.
    Binary(BinOp),
    /// `lhs → value` — apply a non-logical binary operator whose right
    /// operand is a literal folded into the instruction (loop conditions
    /// and counter updates are almost always of this shape).
    BinaryImm { op: BinOp, imm: Scalar },
    /// `lhs → (int)` or nothing — short-circuit evaluation of `&&` / `||`:
    /// pops the left operand; if it decides the result, pushes it as an
    /// `int` and jumps to `end`, otherwise falls through to the right
    /// operand's code.
    ShortCircuit { is_and: bool, end: u32 },
    /// `value → int` — truthiness of the right logical operand.
    TruthToInt,
    /// `cond →` — jump to `target` when the condition is false.
    Branch { target: u32, kind: BranchKind },
    /// `→` — unconditional jump.
    Jump(u32),
    /// `value →` — discard the top of the value stack.
    Pop,
    /// `value → value` — cast to a type.
    Cast(Box<Type>),
    /// `value → value` — vector component selection.
    Swizzle(Box<[u8]>),
    /// `place → value` — materialise a pointer to a place (`&lv`).
    AddrOf,
    /// `→ place` — the storage of a slot-bound variable.
    PlaceSlot(u16),
    /// `→ place` — the storage of a group-`local` variable resolved by name
    /// at runtime (the fallback the tree walker's `lookup_var` provides).
    PlaceGroupLocal(Box<str>),
    /// `value → place` — dereference a pointer value into a place.
    PlaceDeref,
    /// `place → place` — prepare the base of an indexing expression: arrays
    /// stay as-is, pointer-typed places load the pointer they hold.
    ResolveIndexable,
    /// `index-value, place → place` — apply a bounds-checked index.
    IndexPlace,
    /// `place → place` — step into a struct field (offset folded from the
    /// runtime struct type).
    FieldPlace(Box<str>),
    /// `place → place` — step into a single vector lane.
    LanePlace(u8),
    /// `place → value` — load from a place.
    LoadPlace,
    /// `rhs-value, place → value?` — plain (`None`) or compound (`Some(op)`)
    /// assignment; pushes the stored value unless `push` is false
    /// (statement position).
    Store { op: Option<BinOp>, push: bool },
    /// `→` — open a lexical scope (objects declared inside are freed on
    /// exit).
    EnterScope,
    /// `→` — close the innermost scope, freeing its objects.
    ExitScope,
    /// `→` — allocate an uninitialised private variable into a slot, owned
    /// by the current scope.
    DeclPrivate {
        slot: u16,
        name: Box<str>,
        ty: Box<Type>,
    },
    /// `→` — bind a slot to the per-group shared allocation for a `local`
    /// declaration (allocating it zeroed on first execution in the group).
    DeclLocal {
        slot: u16,
        name: Box<str>,
        ty: Box<Type>,
    },
    /// `value →` — store a declaration initialiser into a slot's object.
    InitSlot { slot: u16, ty: Box<Type> },
    /// `→` — zero-fill a slot's object (brace initialisation).
    ZeroFill { slot: u16, cells: u32 },
    /// `value →` — store one brace-initialiser element at a pre-computed
    /// cell offset.
    InitAt {
        slot: u16,
        offset: u32,
        ty: Box<Type>,
    },
    /// `→` — suspend the work-item at a kernel-body barrier; the instruction
    /// address is the barrier site for divergence checking.
    Barrier,
    /// `→` — count a non-synchronising barrier inside a helper function.
    SoftBarrier,
    /// `→` — reject calls nested deeper than
    /// [`crate::eval::MAX_CALL_DEPTH`], before argument evaluation.
    CheckDepth,
    /// `argc values →` — call a user function (pushes a frame; its `Return`
    /// pushes the result).
    Call { func: u32, argc: u16 },
    /// `argc values → value` — apply a non-atomic builtin.
    CallBuiltin { func: Builtin, argc: u16 },
    /// `pointer-value → place, value` — begin an atomic read-modify-write:
    /// validates the location, records the access and pushes the old value.
    AtomicBegin,
    /// `operands…, old-value, place → value` — complete the atomic
    /// read-modify-write and push the old value.
    AtomicEnd { func: Builtin, argc: u16 },
    /// `value? →` — return from a helper function (frees its scopes and
    /// parameters, pushes the result — `int 0` for `void` fall-through).
    Return { has_value: bool },
    /// `value? →` — finish the work-item from the kernel body.
    ReturnKernel { has_value: bool },
    /// `→ !` — raise a pre-computed runtime error (unknown name, non-lvalue
    /// target, misplaced `break`, ...), preserving the tree walker's
    /// execute-time error behaviour for code the compiler cannot resolve.
    Fail(Box<RuntimeError>),
}

/// One lowered function: the kernel at index 0, helpers after it.
#[derive(Debug)]
pub(crate) struct CompiledFunc {
    /// Function name (diagnostics only).
    #[allow(dead_code)]
    pub(crate) name: String,
    /// The instruction stream.
    pub(crate) code: Vec<Instr>,
    /// Number of variable slots a frame needs.
    pub(crate) n_slots: usize,
    /// Slot names, for `UnknownVariable` diagnostics on unbound slots.
    pub(crate) slot_names: Vec<String>,
    /// Number of scalar registers a frame needs (see [`Instr::LoadReg`]).
    pub(crate) n_regs: usize,
    /// Register names, for `UninitializedRead` diagnostics.
    pub(crate) reg_names: Vec<String>,
    /// Parameters, for call-frame setup.
    pub(crate) params: Vec<Param>,
}

/// A program lowered to bytecode, ready for [`crate::vm`] execution.
///
/// Produced by [`compile`]; `funcs[0]` is the kernel entry point.
#[derive(Debug)]
pub struct CompiledProgram {
    pub(crate) funcs: Vec<CompiledFunc>,
}

impl CompiledProgram {
    /// Total number of lowered instructions (diagnostics / size accounting).
    pub fn instruction_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Total number of scalar registers allocated by escape analysis across
    /// all functions (diagnostics; used by tests to pin which declarations
    /// are register-allocated).
    pub fn register_count(&self) -> usize {
        self.funcs.iter().map(|f| f.n_regs).sum()
    }
}

/// Index of the kernel entry point in [`CompiledProgram`].
pub(crate) const KERNEL_FUNC: usize = 0;

// --- escape analysis -------------------------------------------------------
//
// A private scalar declaration can live in a per-frame register instead of a
// `Memory` object exactly when nothing ever needs a memory location for it:
// its address is never taken, it is never the base of an indexing / member /
// place chain (whose lowering resolves to an object + offset), and every
// assignment to it targets the bare name.  The analysis is name-level and
// conservative: if any use of a name anywhere in the function requires an
// object, *every* declaration of that name stays slot-allocated (shadowed
// re-declarations included), which can only cost performance, never
// correctness.

/// Collects the function-body names that must stay memory-allocated.
fn escaping_names(body: &clc::stmt::Block) -> HashSet<String> {
    let mut out = HashSet::new();
    for s in body.iter() {
        escape_stmt(s, &mut out);
    }
    out
}

fn escape_stmt(stmt: &Stmt, out: &mut HashSet<String>) {
    match stmt {
        Stmt::Decl {
            init, init_list, ..
        } => {
            if let Some(e) = init {
                escape_expr(e, out);
            }
            if let Some(list) = init_list {
                escape_init(list, out);
            }
        }
        Stmt::Expr(e) => escape_expr(e, out),
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            escape_expr(cond, out);
            for s in then_block.iter() {
                escape_stmt(s, out);
            }
            if let Some(eb) = else_block {
                for s in eb.iter() {
                    escape_stmt(s, out);
                }
            }
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(s) = init {
                escape_stmt(s, out);
            }
            if let Some(c) = cond {
                escape_expr(c, out);
            }
            if let Some(u) = update {
                escape_expr(u, out);
            }
            for s in body.iter() {
                escape_stmt(s, out);
            }
        }
        Stmt::While { cond, body } => {
            escape_expr(cond, out);
            for s in body.iter() {
                escape_stmt(s, out);
            }
        }
        Stmt::Block(b) => {
            for s in b.iter() {
                escape_stmt(s, out);
            }
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                escape_expr(e, out);
            }
        }
        Stmt::Break | Stmt::Continue | Stmt::Barrier(_) => {}
        // The synthesised EMI guard only reads `dead[..]`, a kernel
        // parameter — parameters are never register candidates.
        Stmt::Emi(emi) => {
            for s in emi.body.iter() {
                escape_stmt(s, out);
            }
        }
    }
}

fn escape_init(init: &Initializer, out: &mut HashSet<String>) {
    match init {
        Initializer::Expr(e) => escape_expr(e, out),
        Initializer::List(items) => {
            for i in items {
                escape_init(i, out);
            }
        }
    }
}

/// Walks an expression in *value* position.
fn escape_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::IntLit { .. } | Expr::IdQuery(_) | Expr::Var(_) => {}
        Expr::VectorLit { parts, .. } => {
            for p in parts {
                escape_expr(p, out);
            }
        }
        Expr::Unary { expr, .. } => escape_expr(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            escape_expr(lhs, out);
            escape_expr(rhs, out);
        }
        Expr::Assign { lhs, rhs, .. } => {
            // A bare-name target lowers to a register store; anything more
            // structured needs the object.
            if !matches!(&**lhs, Expr::Var(_)) {
                escape_place(lhs, out);
            }
            escape_expr(rhs, out);
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            escape_expr(cond, out);
            escape_expr(then_expr, out);
            escape_expr(else_expr, out);
        }
        Expr::Comma { lhs, rhs } => {
            escape_expr(lhs, out);
            escape_expr(rhs, out);
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
            for a in args {
                escape_expr(a, out);
            }
        }
        // `base[i]` / `base.f` load through the base's object even in value
        // position.
        Expr::Index { base, index } => {
            escape_place(base, out);
            escape_expr(index, out);
        }
        Expr::Field { base, arrow, .. } => {
            if *arrow {
                escape_expr(base, out);
            } else {
                escape_place(base, out);
            }
        }
        // A swizzle reads the vector *value*; vectors are never register
        // candidates anyway.
        Expr::Swizzle { base, .. } => escape_expr(base, out),
        Expr::Deref(inner) => escape_expr(inner, out),
        Expr::AddrOf(inner) => escape_place(inner, out),
        Expr::Cast { expr, .. } => escape_expr(expr, out),
    }
}

/// Walks an expression in *place* position, marking the root name of the
/// lvalue chain as escaping.
fn escape_place(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(name) => {
            out.insert(name.clone());
        }
        Expr::Index { base, index } => {
            escape_place(base, out);
            escape_expr(index, out);
        }
        Expr::Field { base, arrow, .. } => {
            if *arrow {
                escape_expr(base, out);
            } else {
                escape_place(base, out);
            }
        }
        Expr::Swizzle { base, .. } => escape_place(base, out),
        Expr::Deref(inner) => escape_expr(inner, out),
        other => escape_expr(other, out),
    }
}

/// Lowers a program (kernel plus helper functions) into bytecode.
///
/// Compilation never fails: unresolvable constructs are lowered to
/// [`Instr::Fail`] so they raise the tree walker's error if — and only if —
/// they are actually executed.
pub fn compile(program: &Program) -> CompiledProgram {
    // First definition wins on name collisions, matching `Program::function`.
    let mut func_ids: HashMap<&str, u32> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        func_ids.entry(f.name.as_str()).or_insert(i as u32 + 1);
    }
    let mut funcs = Vec::with_capacity(program.functions.len() + 1);
    funcs.push(compile_kernel(program, &func_ids));
    for f in &program.functions {
        funcs.push(compile_helper(program, &func_ids, f));
    }
    CompiledProgram { funcs }
}

fn compile_kernel(program: &Program, func_ids: &HashMap<&str, u32>) -> CompiledFunc {
    let escaping = escaping_names(&program.kernel.body);
    let mut c = FnCompiler::new(program, func_ids, true, escaping);
    // Mirrors the tree walker's environment setup: the permutation table is
    // bound before the parameters in the same (outermost) scope.
    c.declare("permutations", None);
    for p in &program.kernel.params {
        c.declare(&p.name, Some((p.ty.clone(), AddressSpace::Private)));
    }
    for stmt in program.kernel.body.iter() {
        c.stmt(stmt);
    }
    c.emit(Instr::ReturnKernel { has_value: false });
    c.finish(program.kernel.name.clone(), program.kernel.params.clone())
}

fn compile_helper(
    program: &Program,
    func_ids: &HashMap<&str, u32>,
    func: &clc::FunctionDef,
) -> CompiledFunc {
    let mut c = FnCompiler::new(program, func_ids, false, escaping_names(&func.body));
    for p in &func.params {
        c.declare(&p.name, Some((p.ty.clone(), AddressSpace::Private)));
    }
    // The body block gets its own scope, as in `exec_block`.
    let scoped = c.enter_scope_for(&func.body);
    for stmt in func.body.iter() {
        c.stmt(stmt);
    }
    c.exit_scope_if(scoped);
    // Falling off the end of a function yields `int 0`.
    c.emit(Instr::Return { has_value: false });
    c.finish(func.name.clone(), func.params.clone())
}

struct LoopFrame {
    /// Materialised scopes open just *outside* the loop-body scope;
    /// `break` / `continue` emit one `ExitScope` per scope open beyond it.
    exit_to: usize,
    break_patches: Vec<usize>,
    /// `Some(head)` for `while` (continue re-tests the condition);
    /// `None` for `for` (continue jumps forward to the update, patched).
    continue_target: Option<u32>,
    continue_patches: Vec<usize>,
}

/// How a name resolves at compile time: to a frame slot holding an object,
/// or to a scalar register in the frame's register bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Slot(u16),
    Reg(u16),
}

struct FnCompiler<'p> {
    program: &'p Program,
    func_ids: &'p HashMap<&'p str, u32>,
    code: Vec<Instr>,
    scopes: Vec<Vec<(String, Binding)>>,
    slot_names: Vec<String>,
    /// Declared type and address space per slot, when statically known
    /// (drives the fused scalar-slot instructions).
    slot_meta: Vec<Option<(Type, AddressSpace)>>,
    /// Register name and declared scalar type, indexed by register id.
    regs: Vec<(String, ScalarType)>,
    /// Names escape analysis found unsuitable for register allocation.
    escaping: HashSet<String>,
    loops: Vec<LoopFrame>,
    in_kernel: bool,
    /// Number of *materialised* runtime scopes open at the current emission
    /// point.  Scopes that declare nothing are elided: the tree walker
    /// pushes and pops them, but popping an empty scope frees nothing, so
    /// eliding them is unobservable.
    open_scopes: usize,
}

impl<'p> FnCompiler<'p> {
    fn new(
        program: &'p Program,
        func_ids: &'p HashMap<&'p str, u32>,
        in_kernel: bool,
        escaping: HashSet<String>,
    ) -> Self {
        FnCompiler {
            program,
            func_ids,
            code: Vec::new(),
            scopes: vec![Vec::new()],
            slot_names: Vec::new(),
            slot_meta: Vec::new(),
            regs: Vec::new(),
            escaping,
            loops: Vec::new(),
            in_kernel,
            open_scopes: 0,
        }
    }

    fn finish(self, name: String, params: Vec<Param>) -> CompiledFunc {
        debug_assert_eq!(self.open_scopes, 0, "unbalanced scopes in `{name}`");
        CompiledFunc {
            name,
            code: self.code,
            n_slots: self.slot_names.len(),
            slot_names: self.slot_names,
            n_regs: self.regs.len(),
            reg_names: self.regs.into_iter().map(|(n, _)| n).collect(),
            params,
        }
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t)
            | Instr::Branch { target: t, .. }
            | Instr::ShortCircuit { end: t, .. } => *t = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    fn declare(&mut self, name: &str, meta: Option<(Type, AddressSpace)>) -> u16 {
        let slot = self.slot_names.len() as u16;
        self.slot_names.push(name.to_string());
        self.slot_meta.push(meta);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), Binding::Slot(slot)));
        slot
    }

    fn declare_reg(&mut self, name: &str, ty: ScalarType) -> u16 {
        let reg = self.regs.len() as u16;
        self.regs.push((name.to_string(), ty));
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), Binding::Reg(reg)));
        reg
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|&(_, b)| b))
    }

    /// Looks a name up only when it resolves to a register.
    fn lookup_reg(&self, name: &str) -> Option<(u16, ScalarType)> {
        match self.lookup(name) {
            Some(Binding::Reg(reg)) => Some((reg, self.regs[reg as usize].1)),
            _ => None,
        }
    }

    /// Looks a name up only when it resolves to a slot.
    fn lookup_slot(&self, name: &str) -> Option<u16> {
        match self.lookup(name) {
            Some(Binding::Slot(slot)) => Some(slot),
            _ => None,
        }
    }

    /// Whether a declaration will be register-allocated: a non-`volatile`
    /// private scalar with no brace initialiser whose name never escapes.
    fn is_reg_decl(&self, name: &str, ty: &Type, space: AddressSpace, volatile: bool) -> bool {
        space != AddressSpace::Local
            && !volatile
            && matches!(ty, Type::Scalar(_))
            && !self.escaping.contains(name)
    }

    /// Whether a statement is a declaration that allocates a memory object
    /// (register declarations don't, so scopes containing only them can be
    /// elided like declaration-free scopes).
    fn decl_needs_object(&self, stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                space,
                volatile,
                init_list,
                ..
            } => init_list.is_some() || !self.is_reg_decl(name, ty, *space, *volatile),
            _ => false,
        }
    }

    /// Statically resolves a `Var` / `.field` / constant-`[idx]` lvalue
    /// chain over a slot with known declared layout to a (slot, cell
    /// offset, leaf type, sharedness) quadruple.  Chains the tree walker
    /// would reject at runtime (missing fields, out-of-range constant
    /// indices) return `None` so the generic lowering preserves the
    /// runtime error.  Sub-expressions of folded chains are side-effect
    /// free (names and integer literals), so folding them is unobservable.
    fn static_slot_path(&self, expr: &Expr) -> Option<(u16, u32, Type, bool)> {
        match expr {
            Expr::Var(name) => {
                let slot = self.lookup_slot(name)?;
                let (ty, space) = self.slot_meta[slot as usize].clone()?;
                Some((slot, 0, ty, space.is_shared()))
            }
            Expr::Field {
                base,
                field,
                arrow: false,
            } => {
                let (slot, offset, ty, shared) = self.static_slot_path(base)?;
                let Type::Struct(id) = ty else { return None };
                let field_offset = Type::Struct(id).field_offset(field, &self.program.structs)?;
                let field_ty = self.program.struct_def(id).field(field)?.ty.clone();
                Some((slot, offset + field_offset as u32, field_ty, shared))
            }
            Expr::Index { base, index } => {
                let Expr::IntLit { value, .. } = &**index else {
                    return None;
                };
                let (slot, offset, ty, shared) = self.static_slot_path(base)?;
                let Type::Array(elem, len) = ty else {
                    return None;
                };
                if *value < 0 || *value as usize >= len {
                    return None;
                }
                let stride = elem.cell_count(&self.program.structs);
                Some((
                    slot,
                    offset + (*value as usize * stride) as u32,
                    *elem,
                    shared,
                ))
            }
            _ => None,
        }
    }

    /// Emits a fused load when `expr` is a statically resolved scalar or
    /// vector location; returns whether it did.
    fn emit_static_load(&mut self, expr: &Expr) -> bool {
        match self.static_slot_path(expr) {
            Some((slot, offset, Type::Scalar(ty), shared)) => {
                self.emit(Instr::LoadScalarSlot {
                    slot,
                    offset,
                    ty,
                    shared,
                });
                true
            }
            Some((slot, offset, Type::Vector(ty, width), shared)) => {
                self.emit(Instr::LoadVectorSlot {
                    slot,
                    offset,
                    ty,
                    width,
                    shared,
                });
                true
            }
            _ => false,
        }
    }

    /// Compile-time evaluation of an all-literal vector literal, mirroring
    /// the evaluator's assembly rules (nested literals extend raw lanes,
    /// single-lane literals broadcast).  Returns `None` — deferring to the
    /// dynamic lowering — for non-literal parts or lane-count mismatches
    /// (which must raise the tree walker's runtime error).
    fn fold_vector_lit(
        &self,
        elem: ScalarType,
        width: VectorWidth,
        parts: &[Expr],
    ) -> Option<Vec<u64>> {
        let mut lanes = Vec::with_capacity(width.lanes());
        for part in parts {
            match part {
                Expr::IntLit { value, ty } => {
                    lanes.push(Scalar::from_i128(*value, *ty).convert(elem).bits);
                }
                Expr::VectorLit {
                    elem: e2,
                    width: w2,
                    parts: p2,
                } => {
                    lanes.extend(self.fold_vector_lit(*e2, *w2, p2)?);
                }
                _ => return None,
            }
        }
        if lanes.len() == 1 {
            let v = lanes[0];
            lanes = vec![v; width.lanes()];
        }
        if lanes.len() != width.lanes() {
            return None;
        }
        Some(lanes)
    }

    /// Statically resolves `p->field` when `p` is a slot declared as a
    /// pointer to a struct and the field has a scalar or vector type.
    fn static_arrow_path(
        &self,
        expr: &Expr,
    ) -> Option<(u16, bool, clc::StructId, u32, LeafTy, Box<str>)> {
        let Expr::Field {
            base,
            field,
            arrow: true,
        } = expr
        else {
            return None;
        };
        let Expr::Var(name) = &**base else {
            return None;
        };
        let slot = self.lookup_slot(name)?;
        let (ty, space) = self.slot_meta[slot as usize].as_ref()?;
        let Type::Pointer(pointee, _) = ty else {
            return None;
        };
        let Type::Struct(id) = &**pointee else {
            return None;
        };
        let add = Type::Struct(*id).field_offset(field, &self.program.structs)? as u32;
        let leaf = match &self.program.struct_def(*id).field(field)?.ty {
            Type::Scalar(s) => LeafTy::Scalar(*s),
            Type::Vector(s, w) => LeafTy::Vector(*s, *w),
            _ => return None,
        };
        Some((
            slot,
            space.is_shared(),
            *id,
            add,
            leaf,
            field.as_str().into(),
        ))
    }

    /// Opens a compile-time name scope, materialising a runtime scope only
    /// when requested; returns whether one was materialised.
    fn enter_scope_cond(&mut self, materialise: bool) -> bool {
        self.scopes.push(Vec::new());
        if materialise {
            self.open_scopes += 1;
            self.emit(Instr::EnterScope);
        }
        materialise
    }

    /// Opens a runtime scope for `block` only when it directly declares
    /// memory-allocated variables (popping an empty scope frees nothing, and
    /// register declarations own no objects, so eliding it is unobservable).
    fn enter_scope_for(&mut self, block: &clc::stmt::Block) -> bool {
        let needed = block.iter().any(|s| self.decl_needs_object(s));
        self.enter_scope_cond(needed)
    }

    fn exit_scope_if(&mut self, materialised: bool) {
        self.scopes.pop();
        if materialised {
            self.open_scopes -= 1;
            self.emit(Instr::ExitScope);
        }
    }

    /// Emits `n` runtime scope exits for a jump path (`break` / `continue`)
    /// without closing the compiler's lexical scopes: the code after the
    /// jump is still inside them.
    fn emit_scope_exits(&mut self, n: usize) {
        for _ in 0..n {
            self.emit(Instr::ExitScope);
        }
    }

    fn fail(&mut self, e: RuntimeError) {
        self.emit(Instr::Fail(Box::new(e)));
    }

    // --- statements --------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                space,
                volatile,
                init,
                init_list,
            } => self.decl(
                name,
                ty,
                *space,
                *volatile,
                init.as_ref(),
                init_list.as_ref(),
            ),
            Stmt::Expr(e) => self.expr_stmt(e),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.expr(cond);
                // The resumable machine evaluates the condition of a
                // barrier-containing `if` permissively; the recursive
                // evaluator rejects non-scalar conditions.
                let kind = if self.in_kernel && stmt.contains_barrier() {
                    BranchKind::Permissive
                } else {
                    BranchKind::IfCond
                };
                let br = self.emit(Instr::Branch { target: 0, kind });
                let scoped = self.enter_scope_for(then_block);
                for s in then_block.iter() {
                    self.stmt(s);
                }
                self.exit_scope_if(scoped);
                match else_block {
                    Some(eb) => {
                        let jmp = self.emit(Instr::Jump(0));
                        let else_at = self.here();
                        self.patch(br, else_at);
                        let scoped = self.enter_scope_for(eb);
                        for s in eb.iter() {
                            self.stmt(s);
                        }
                        self.exit_scope_if(scoped);
                        let end = self.here();
                        self.patch(jmp, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(br, end);
                    }
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                // Layout:
                //   EnterScope (for-scope, when init declares)   <init>
                //   head: <cond> BranchFalse(exit)
                //         EnterScope <body> ExitScope
                //   cont: <update> Jump(head)
                //   exit: ExitScope (for-scope)
                //
                // Barrier-containing kernel loops run on the tree walker's
                // resumable machine, which keeps loop-body declarations in
                // the loop-level scope (alive across iterations) rather
                // than a per-iteration scope; mirror that by folding the
                // body's declarations into the for-scope.
                let barrier_loop = self.in_kernel && stmt.contains_barrier();
                let body_declares = body.iter().any(|s| self.decl_needs_object(s));
                let for_scoped = self.enter_scope_cond(
                    init.as_deref().is_some_and(|s| self.decl_needs_object(s))
                        || (barrier_loop && body_declares),
                );
                if let Some(init) = init {
                    self.stmt(init);
                }
                let head = self.here();
                let cond_branch = cond.as_ref().map(|c| {
                    self.expr(c);
                    self.emit(Instr::Branch {
                        target: 0,
                        kind: BranchKind::Permissive,
                    })
                });
                let exit_to = self.open_scopes;
                let body_scoped = if barrier_loop {
                    self.enter_scope_cond(false)
                } else {
                    self.enter_scope_for(body)
                };
                self.loops.push(LoopFrame {
                    exit_to,
                    break_patches: Vec::new(),
                    continue_target: None,
                    continue_patches: Vec::new(),
                });
                for s in body.iter() {
                    self.stmt(s);
                }
                let frame = self.loops.pop().expect("loop frame");
                self.exit_scope_if(body_scoped);
                let cont = self.here();
                for at in frame.continue_patches {
                    self.patch(at, cont);
                }
                if let Some(u) = update {
                    self.expr_stmt(u);
                }
                self.emit(Instr::Jump(head));
                let exit = self.here();
                if let Some(br) = cond_branch {
                    self.patch(br, exit);
                }
                for at in frame.break_patches {
                    self.patch(at, exit);
                }
                self.exit_scope_if(for_scoped);
            }
            Stmt::While { cond, body } => {
                // As with `for`: a barrier-containing kernel `while` keeps
                // its body declarations in a loop-level scope (the machine's
                // while-scope), alive across iterations.
                let barrier_loop = self.in_kernel && stmt.contains_barrier();
                let body_declares = body.iter().any(|s| self.decl_needs_object(s));
                let loop_scoped = self.enter_scope_cond(barrier_loop && body_declares);
                let head = self.here();
                self.expr(cond);
                let br = self.emit(Instr::Branch {
                    target: 0,
                    kind: BranchKind::Permissive,
                });
                let exit_to = self.open_scopes;
                let body_scoped = if barrier_loop {
                    self.enter_scope_cond(false)
                } else {
                    self.enter_scope_for(body)
                };
                self.loops.push(LoopFrame {
                    exit_to,
                    break_patches: Vec::new(),
                    continue_target: Some(head),
                    continue_patches: Vec::new(),
                });
                for s in body.iter() {
                    self.stmt(s);
                }
                let frame = self.loops.pop().expect("loop frame");
                self.exit_scope_if(body_scoped);
                self.emit(Instr::Jump(head));
                let end = self.here();
                self.patch(br, end);
                for at in frame.break_patches {
                    self.patch(at, end);
                }
                self.exit_scope_if(loop_scoped);
            }
            Stmt::Block(b) => {
                let scoped = self.enter_scope_for(b);
                for s in b.iter() {
                    self.stmt(s);
                }
                self.exit_scope_if(scoped);
            }
            Stmt::Return(e) => {
                let has_value = e.is_some();
                if let Some(e) = e {
                    self.expr(e);
                }
                if self.in_kernel {
                    self.emit(Instr::ReturnKernel { has_value });
                } else {
                    self.emit(Instr::Return { has_value });
                }
            }
            Stmt::Break => match self.loops.last() {
                Some(frame) => {
                    let exits = self.open_scopes - frame.exit_to;
                    self.emit_scope_exits(exits);
                    let at = self.emit(Instr::Jump(0));
                    self.loops
                        .last_mut()
                        .expect("loop frame")
                        .break_patches
                        .push(at);
                }
                None => self.fail(RuntimeError::Unsupported(if self.in_kernel {
                    "break outside of a loop in kernel body".into()
                } else {
                    "break/continue escaping a function body".into()
                })),
            },
            Stmt::Continue => match self.loops.last() {
                Some(frame) => {
                    let exits = self.open_scopes - frame.exit_to;
                    let target = frame.continue_target;
                    self.emit_scope_exits(exits);
                    match target {
                        Some(head) => {
                            self.emit(Instr::Jump(head));
                        }
                        None => {
                            let at = self.emit(Instr::Jump(0));
                            self.loops
                                .last_mut()
                                .expect("loop frame")
                                .continue_patches
                                .push(at);
                        }
                    }
                }
                None => self.fail(RuntimeError::Unsupported(if self.in_kernel {
                    "continue outside of a loop in kernel body".into()
                } else {
                    "break/continue escaping a function body".into()
                })),
            },
            Stmt::Barrier(_) => {
                if self.in_kernel {
                    self.emit(Instr::Barrier);
                } else {
                    self.emit(Instr::SoftBarrier);
                }
            }
            Stmt::Emi(emi) => {
                // The guard is `dead[a] < dead[b]`, evaluated permissively,
                // exactly as `emi_guard_is_true` builds it.
                let guard = Expr::binary(
                    BinOp::Lt,
                    Expr::index(Expr::var("dead"), Expr::int(emi.guard.0 as i64)),
                    Expr::index(Expr::var("dead"), Expr::int(emi.guard.1 as i64)),
                );
                self.expr(&guard);
                let br = self.emit(Instr::Branch {
                    target: 0,
                    kind: BranchKind::Permissive,
                });
                let scoped = self.enter_scope_for(&emi.body);
                for s in emi.body.iter() {
                    self.stmt(s);
                }
                self.exit_scope_if(scoped);
                let end = self.here();
                self.patch(br, end);
            }
        }
    }

    fn decl(
        &mut self,
        name: &str,
        ty: &Type,
        space: AddressSpace,
        volatile: bool,
        init: Option<&Expr>,
        init_list: Option<&Initializer>,
    ) {
        if space == AddressSpace::Local {
            // One zero-initialised allocation per work-group; initialisers
            // are not evaluated (OpenCL forbids them on `local`).
            let slot = self.declare(name, Some((ty.clone(), AddressSpace::Local)));
            self.emit(Instr::DeclLocal {
                slot,
                name: name.into(),
                ty: Box::new(ty.clone()),
            });
            return;
        }
        if init_list.is_none() && self.is_reg_decl(name, ty, space, volatile) {
            let Type::Scalar(sty) = ty else {
                unreachable!("is_reg_decl only accepts scalar types")
            };
            match init {
                // Literal initialisers fold into the declaration, with the
                // conversion to the declared type done at compile time.
                Some(Expr::IntLit { value, ty: lty }) => {
                    let reg = self.declare_reg(name, *sty);
                    let bits = Scalar::from_i128(*value, *lty).convert(*sty).bits;
                    self.emit(Instr::DeclRegInit { reg, bits });
                }
                Some(e) => {
                    // As with `DeclPrivate` + `InitSlot`, the name is bound
                    // (uninitialised) before the initialiser is evaluated,
                    // so `int x = x + 1;` reads the new, unset `x`.
                    let reg = self.declare_reg(name, *sty);
                    self.emit(Instr::DeclReg { reg });
                    self.expr(e);
                    self.emit(Instr::StoreReg {
                        reg,
                        ty: *sty,
                        op: None,
                        push: false,
                    });
                }
                None => {
                    let reg = self.declare_reg(name, *sty);
                    self.emit(Instr::DeclReg { reg });
                }
            }
            return;
        }
        let slot = self.declare(name, Some((ty.clone(), AddressSpace::Private)));
        self.emit(Instr::DeclPrivate {
            slot,
            name: name.into(),
            ty: Box::new(ty.clone()),
        });
        if let Some(e) = init {
            self.expr(e);
            self.emit(Instr::InitSlot {
                slot,
                ty: Box::new(ty.clone()),
            });
        } else if let Some(list) = init_list {
            // Brace initialisation zero-fills unspecified members.
            let cells = ty.cell_count(&self.program.structs) as u32;
            self.emit(Instr::ZeroFill { slot, cells });
            self.initializer(slot, 0, ty, list);
        }
    }

    /// Lowers a brace initialiser, folding member offsets at compile time
    /// (mirrors `apply_initializer`).
    fn initializer(&mut self, slot: u16, offset: u32, ty: &Type, init: &Initializer) {
        match (ty, init) {
            (_, Initializer::Expr(e)) => {
                self.expr(e);
                self.emit(Instr::InitAt {
                    slot,
                    offset,
                    ty: Box::new(ty.clone()),
                });
            }
            (Type::Array(elem, len), Initializer::List(items)) => {
                let stride = elem.cell_count(&self.program.structs) as u32;
                for (i, item) in items.iter().enumerate() {
                    if i >= *len {
                        break;
                    }
                    self.initializer(slot, offset + i as u32 * stride, elem, item);
                }
            }
            (Type::Struct(id), Initializer::List(items)) => {
                let def = self.program.struct_def(*id).clone();
                if def.is_union {
                    // Only the first member is initialised.
                    if let (Some(field), Some(item)) = (def.fields.first(), items.first()) {
                        self.initializer(slot, offset, &field.ty, item);
                    }
                    return;
                }
                let mut field_offset = 0u32;
                for (field, item) in def.fields.iter().zip(items) {
                    self.initializer(slot, offset + field_offset, &field.ty, item);
                    field_offset += field.ty.cell_count(&self.program.structs) as u32;
                }
            }
            (Type::Vector(elem, width), Initializer::List(items)) => {
                for (i, item) in items.iter().enumerate() {
                    if i >= width.lanes() {
                        break;
                    }
                    self.initializer(slot, offset + i as u32, &Type::Scalar(*elem), item);
                }
            }
            (other, Initializer::List(_)) => {
                self.fail(RuntimeError::TypeMismatch {
                    detail: format!("brace initialiser for non-aggregate {other:?}"),
                });
            }
        }
    }

    // --- expressions -------------------------------------------------------

    /// Compiles an expression in statement position (result discarded):
    /// assignments skip the result push entirely.
    fn expr_stmt(&mut self, expr: &Expr) {
        if let Expr::Assign { op, lhs, rhs } = expr {
            self.assign(op.binop(), lhs, rhs, false);
        } else {
            self.expr(expr);
            self.emit(Instr::Pop);
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::IntLit { value, ty } => {
                self.emit(Instr::Const(Scalar::from_i128(*value, *ty)));
            }
            Expr::VectorLit { elem, width, parts } => {
                // All-literal vector literals (the common CLsmith shape)
                // fold to a single pre-assembled constant; literals have no
                // side effects, so folding is unobservable.
                if let Some(lanes) = self.fold_vector_lit(*elem, *width, parts) {
                    self.emit(Instr::ConstVector(Box::new((*elem, lanes.into()))));
                    return;
                }
                for p in parts {
                    self.expr(p);
                }
                self.emit(Instr::MakeVector {
                    elem: *elem,
                    width: *width,
                    parts: parts.len() as u16,
                });
            }
            Expr::Var(name) => {
                if let Some((reg, ty)) = self.lookup_reg(name) {
                    self.emit(Instr::LoadReg { reg, ty });
                    return;
                }
                if self.emit_static_load(expr) {
                    return;
                }
                match self.lookup_slot(name) {
                    Some(slot) => {
                        self.emit(Instr::LoadSlot(slot));
                    }
                    None => {
                        self.emit(Instr::PlaceGroupLocal(name.as_str().into()));
                        self.emit(Instr::LoadPlace);
                    }
                }
            }
            Expr::Index { base, index } => {
                if self.emit_static_load(expr) {
                    return;
                }
                // Fused form for the hot single-level `v[i]` pattern on a
                // resolved slot; the index is still evaluated first, as in
                // `eval_place`.
                if let Expr::Var(name) = &**base {
                    if let Some(slot) = self.lookup_slot(name) {
                        self.expr(index);
                        self.emit(Instr::IndexSlotLoad { slot });
                        return;
                    }
                }
                self.place(expr);
                self.emit(Instr::LoadPlace);
            }
            Expr::Field { .. } => {
                if self.emit_static_load(expr) {
                    return;
                }
                if let Some((slot, ptr_shared, expect, add, leaf, field)) =
                    self.static_arrow_path(expr)
                {
                    self.emit(Instr::ArrowSlotLoad {
                        slot,
                        ptr_shared,
                        expect,
                        add,
                        leaf,
                        field,
                    });
                    return;
                }
                self.place(expr);
                self.emit(Instr::LoadPlace);
            }
            Expr::Deref(_) => {
                self.place(expr);
                self.emit(Instr::LoadPlace);
            }
            Expr::Swizzle { base, lanes } => {
                self.expr(base);
                self.emit(Instr::Swizzle(lanes.clone().into_boxed_slice()));
            }
            Expr::Unary { op, expr } => {
                self.expr(expr);
                self.emit(Instr::Unary(*op));
            }
            Expr::Binary { op, lhs, rhs } => {
                if op.is_logical() {
                    self.expr(lhs);
                    let sc = self.emit(Instr::ShortCircuit {
                        is_and: *op == BinOp::LAnd,
                        end: 0,
                    });
                    self.expr(rhs);
                    self.emit(Instr::TruthToInt);
                    let end = self.here();
                    self.patch(sc, end);
                } else if let Expr::IntLit { value, ty } = &**rhs {
                    // Literal right operands fold into the instruction; a
                    // literal has no side effects, so evaluation order is
                    // unobservable.
                    let imm = Scalar::from_i128(*value, *ty);
                    // `i < N` / `i + 1` on a register fuses the load too.
                    if let Expr::Var(name) = &**lhs {
                        if let Some((reg, rty)) = self.lookup_reg(name) {
                            self.emit(Instr::RegBinopImm {
                                reg,
                                ty: rty,
                                op: *op,
                                imm,
                            });
                            return;
                        }
                    }
                    self.expr(lhs);
                    self.emit(Instr::BinaryImm { op: *op, imm });
                } else {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.emit(Instr::Binary(*op));
                }
            }
            Expr::Assign { op, lhs, rhs } => self.assign(op.binop(), lhs, rhs, true),
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond);
                let br = self.emit(Instr::Branch {
                    target: 0,
                    kind: BranchKind::Ternary,
                });
                self.expr(then_expr);
                let jmp = self.emit(Instr::Jump(0));
                let else_at = self.here();
                self.patch(br, else_at);
                self.expr(else_expr);
                let end = self.here();
                self.patch(jmp, end);
            }
            Expr::Comma { lhs, rhs } => {
                self.expr(lhs);
                self.emit(Instr::Pop);
                self.expr(rhs);
            }
            Expr::Call { name, args } => {
                // The tree walker checks depth, existence and arity before
                // evaluating any argument.
                self.emit(Instr::CheckDepth);
                let Some(&func) = self.func_ids.get(name.as_str()) else {
                    self.fail(RuntimeError::UnknownFunction(name.clone()));
                    return;
                };
                let expected = self.program.functions[func as usize - 1].params.len();
                if args.len() != expected {
                    self.fail(RuntimeError::TypeMismatch {
                        detail: format!(
                            "call to `{name}` with {} args, expected {}",
                            args.len(),
                            expected
                        ),
                    });
                    return;
                }
                for a in args {
                    self.expr(a);
                }
                self.emit(Instr::Call {
                    func,
                    argc: args.len() as u16,
                });
            }
            Expr::BuiltinCall { func, args } => {
                if func.is_atomic() {
                    let Some(ptr) = args.first() else {
                        self.fail(RuntimeError::Unsupported(format!(
                            "atomic builtin {} with no arguments",
                            func.name()
                        )));
                        return;
                    };
                    self.expr(ptr);
                    self.emit(Instr::AtomicBegin);
                    for a in &args[1..] {
                        self.expr(a);
                    }
                    self.emit(Instr::AtomicEnd {
                        func: *func,
                        argc: args.len() as u16,
                    });
                } else {
                    for a in args {
                        self.expr(a);
                    }
                    self.emit(Instr::CallBuiltin {
                        func: *func,
                        argc: args.len() as u16,
                    });
                }
            }
            Expr::IdQuery(kind) => {
                self.emit(Instr::Id(*kind));
            }
            Expr::AddrOf(inner) => {
                self.place(inner);
                self.emit(Instr::AddrOf);
            }
            Expr::Cast { ty, expr } => {
                self.expr(expr);
                self.emit(Instr::Cast(Box::new(ty.clone())));
            }
        }
    }

    /// Lowers an assignment: right-hand side first, then the target, as in
    /// the tree walker.  Targets that are resolved slots (or single-level
    /// indexes into them) use the fused store instructions.
    fn assign(&mut self, op: Option<BinOp>, lhs: &Expr, rhs: &Expr, push: bool) {
        if let Expr::Var(name) = lhs {
            if let Some((reg, ty)) = self.lookup_reg(name) {
                // Literal right-hand sides fold into the store; a literal
                // has no side effects, so the fold is unobservable.
                if let Expr::IntLit { value, ty: lty } = rhs {
                    self.emit(Instr::StoreRegImm {
                        reg,
                        ty,
                        op,
                        imm: Scalar::from_i128(*value, *lty),
                        push,
                    });
                } else {
                    self.expr(rhs);
                    self.emit(Instr::StoreReg { reg, ty, op, push });
                }
                return;
            }
        }
        self.expr(rhs);
        match self.static_slot_path(lhs) {
            Some((slot, offset, Type::Scalar(ty), shared)) => {
                self.emit(Instr::StoreScalarSlot {
                    slot,
                    offset,
                    ty,
                    op,
                    shared,
                    push,
                });
                return;
            }
            Some((slot, offset, Type::Vector(ty, width), shared)) => {
                self.emit(Instr::StoreVectorSlot {
                    slot,
                    offset,
                    ty,
                    width,
                    op,
                    shared,
                    push,
                });
                return;
            }
            _ => {}
        }
        if let Some((slot, ptr_shared, expect, add, leaf, field)) = self.static_arrow_path(lhs) {
            self.emit(Instr::ArrowSlotStore {
                slot,
                ptr_shared,
                expect,
                add,
                leaf,
                field,
                op,
                push,
            });
            return;
        }
        if let Expr::Index { base, index } = lhs {
            if let Expr::Var(name) = &**base {
                if let Some(slot) = self.lookup_slot(name) {
                    self.expr(index);
                    self.emit(Instr::IndexSlotStore { slot, op, push });
                    return;
                }
            }
        }
        self.place(lhs);
        self.emit(Instr::Store { op, push });
    }

    /// Lowers an lvalue expression to place-stack instructions (mirrors
    /// `eval_place`).
    fn place(&mut self, expr: &Expr) {
        match expr {
            Expr::Var(name) => match self.lookup(name) {
                Some(Binding::Slot(slot)) => {
                    self.emit(Instr::PlaceSlot(slot));
                }
                // Unreachable by construction: escape analysis keeps any
                // name used in place position out of the register bank.
                Some(Binding::Reg(_)) => self.fail(RuntimeError::TypeMismatch {
                    detail: format!("register variable `{name}` used as an lvalue"),
                }),
                None => {
                    self.emit(Instr::PlaceGroupLocal(name.as_str().into()));
                }
            },
            Expr::Deref(inner) => {
                self.expr(inner);
                self.emit(Instr::PlaceDeref);
            }
            Expr::Index { base, index } => {
                // Index value first, then the base place, as in the tree
                // walker's `eval_place`.
                self.expr(index);
                self.place(base);
                self.emit(Instr::ResolveIndexable);
                self.emit(Instr::IndexPlace);
            }
            Expr::Field { base, field, arrow } => {
                if *arrow {
                    self.expr(base);
                    self.emit(Instr::PlaceDeref);
                } else {
                    self.place(base);
                }
                self.emit(Instr::FieldPlace(field.as_str().into()));
            }
            Expr::Swizzle { base, lanes } if lanes.len() == 1 => {
                self.place(base);
                self.emit(Instr::LanePlace(lanes[0]));
            }
            other => self.fail(RuntimeError::TypeMismatch {
                detail: format!("expression is not an lvalue: {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::stmt::Block;
    use clc::{BufferSpec, KernelDef, LaunchConfig};

    fn program_with_body(stmts: Vec<Stmt>) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(stmts),
            },
            LaunchConfig::single_group(2),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 2));
        p
    }

    #[test]
    fn straight_line_kernel_compiles_to_flat_code() {
        let p = program_with_body(vec![Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::int(7),
        )]);
        let c = compile(&p);
        assert_eq!(c.funcs.len(), 1);
        assert!(c.instruction_count() > 0);
        // Kernel slots: permutations + out.
        assert_eq!(c.funcs[KERNEL_FUNC].n_slots, 2);
        // No unresolved jumps (all targets within the stream).
        for instr in &c.funcs[KERNEL_FUNC].code {
            if let Instr::Jump(t) | Instr::Branch { target: t, .. } = instr {
                assert!((*t as usize) <= c.funcs[KERNEL_FUNC].code.len());
            }
        }
    }

    #[test]
    fn barriers_lower_to_sites_in_kernel_and_soft_in_functions() {
        let mut p = program_with_body(vec![Stmt::Barrier(clc::MemFence::Local)]);
        p.functions.push(clc::FunctionDef::new(
            "f",
            None,
            vec![],
            Block::of(vec![Stmt::Barrier(clc::MemFence::Local)]),
        ));
        let c = compile(&p);
        assert!(c.funcs[KERNEL_FUNC]
            .code
            .iter()
            .any(|i| matches!(i, Instr::Barrier)));
        assert!(c.funcs[1]
            .code
            .iter()
            .any(|i| matches!(i, Instr::SoftBarrier)));
        assert!(!c.funcs[1].code.iter().any(|i| matches!(i, Instr::Barrier)));
    }

    #[test]
    fn break_outside_loop_lowers_to_fail() {
        let p = program_with_body(vec![Stmt::Break]);
        let c = compile(&p);
        assert!(c.funcs[KERNEL_FUNC]
            .code
            .iter()
            .any(|i| matches!(i, Instr::Fail(e) if matches!(**e, RuntimeError::Unsupported(_)))));
    }

    #[test]
    fn unknown_names_fall_back_to_group_local_lookup() {
        let p = program_with_body(vec![Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::var("nonexistent"),
        )]);
        let c = compile(&p);
        assert!(c.funcs[KERNEL_FUNC]
            .code
            .iter()
            .any(|i| matches!(i, Instr::PlaceGroupLocal(n) if &**n == "nonexistent")));
    }
}
