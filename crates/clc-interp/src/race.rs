//! Data-race detection for shared (local / global) memory.
//!
//! The paper defines a data race (§3.1) as two accesses to a common location
//! from distinct work-items where at least one access is a write and either
//! the work-items are in different groups, or they are in the same group,
//! at least one access is non-atomic, and the accesses are not separated by
//! a barrier.
//!
//! The detector logs every shared-memory access together with the work-item
//! that made it and the *barrier interval* (number of group barriers the
//! work-item has passed).  Two same-group accesses conflict only when they
//! fall in the same interval; cross-group accesses always conflict when one
//! is a non-atomic write.  This is exactly the check the paper's authors had
//! to perform manually when they discovered the races in Parboil `spmv` and
//! Rodinia `myocyte` (§2.4).
//!
//! # Shadow-memory layout
//!
//! Accesses are kept in flat per-object *shadow arrays* indexed by cell
//! offset rather than in a hash map keyed by `(ObjId, usize)`: the detector
//! sits on the interpreter's shared-access hot path, where a `Vec` index is
//! far cheaper than hashing.  Each shadow carries an *era* counter and each
//! cell log is tagged with the era it was written under, so both whole-object
//! resets (a finished group's locals) and whole-detector resets (reuse across
//! launches, mirroring `Memory::spare_cells`) are O(1)-per-object era bumps
//! instead of deallocations — a stale-era cell log is simply treated as
//! empty and lazily re-initialised on its next access.

use crate::error::RaceReport;
use crate::value::ObjId;
use std::collections::HashMap;

/// Kind of access, for conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain read.
    Read,
    /// Plain write.
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }

    fn is_atomic(self) -> bool {
        matches!(self, AccessKind::Atomic)
    }
}

#[derive(Debug, Clone)]
struct Access {
    thread: usize,
    group: usize,
    interval: u32,
    kind: AccessKind,
}

/// Sentinel for "retained accesses come from more than one thread".
const MIXED_THREADS: usize = usize::MAX;

/// Per-cell access log inside a shadow array.
#[derive(Debug, Clone)]
struct CellLog {
    /// Era this log was last written under; a log whose era differs from its
    /// shadow's current era is logically empty.
    era: u64,
    /// Retained accesses.  Keeping every access would be quadratic; keeping
    /// the full set per location is fine because CLsmith kernels touch each
    /// shared cell a bounded number of times, but to stay robust on
    /// adversarial inputs the log per cell is capped.
    accesses: Vec<Access>,
    /// Whether any retained access is a write or atomic (summary used to
    /// skip the conflict scan for read-after-reads).
    has_write: bool,
    /// The single thread all retained accesses come from, or
    /// [`MIXED_THREADS`].  A thread never races with itself, so a cell only
    /// ever touched by one thread needs no conflict scan.
    only_thread: usize,
}

impl Default for CellLog {
    fn default() -> CellLog {
        CellLog {
            era: 0,
            accesses: Vec::new(),
            has_write: false,
            only_thread: MIXED_THREADS,
        }
    }
}

/// Flat shadow array for one object.
#[derive(Debug, Clone)]
struct Shadow {
    /// Current era; cell logs tagged with an older era are empty.
    era: u64,
    /// Era in which this shadow last counted towards
    /// [`RaceStats::shadow_arrays`], so reuse across eras is counted once
    /// per era rather than once per access.
    counted_era: u64,
    /// One log per cell offset, grown lazily to the highest offset touched.
    cells: Vec<CellLog>,
}

impl Default for Shadow {
    fn default() -> Shadow {
        Shadow {
            // Start above the `CellLog` default era so a freshly grown cell
            // log is always seen as stale and initialised on first use.
            era: 1,
            counted_era: 0,
            cells: Vec::new(),
        }
    }
}

/// Counters describing the work the detector did during one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Shared-memory accesses recorded.
    pub accesses: u64,
    /// Distinct shadow arrays active (objects with at least one recorded
    /// access in their current era).
    pub shadow_arrays: u64,
    /// O(1) era bumps performed in place of log clears (one per group-local
    /// object at each group retirement).
    pub epoch_bumps: u64,
}

/// Records shared-memory accesses and reports the first conflicting pair.
#[derive(Debug)]
pub struct RaceDetector {
    /// Shadow arrays indexed by `ObjId`, grown lazily.
    shadows: Vec<Shadow>,
    /// Human-readable object names for reports.
    names: HashMap<ObjId, String>,
    /// First detected race, if any.
    first_race: Option<RaceReport>,
    /// Cap on retained accesses per cell.  New accesses beyond the cap are
    /// dropped; retained accesses are never evicted, so the earlier half of
    /// a racing pair (checked against *before* the cap is applied to the
    /// newcomer) always survives until the race is reported.
    per_cell_cap: usize,
    /// Per-launch counters.
    stats: RaceStats,
}

impl Default for RaceDetector {
    fn default() -> RaceDetector {
        RaceDetector {
            shadows: Vec::new(),
            names: HashMap::new(),
            first_race: None,
            per_cell_cap: 64,
            stats: RaceStats::default(),
        }
    }
}

impl RaceDetector {
    /// Creates a detector.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Resets the detector for reuse by another launch, keeping the shadow
    /// allocations.  Existing cell logs are invalidated by bumping every
    /// shadow's era rather than by clearing them.
    pub fn reset(&mut self) {
        self.names.clear();
        self.first_race = None;
        self.stats = RaceStats::default();
        for shadow in &mut self.shadows {
            shadow.era += 1;
        }
    }

    /// Registers a friendly name for an object (used in reports).
    pub fn name_object(&mut self, obj: ObjId, name: &str) {
        self.names.insert(obj, name.to_string());
    }

    /// Records an access and checks it against previously recorded accesses.
    pub fn record(
        &mut self,
        obj: ObjId,
        offset: usize,
        thread: usize,
        group: usize,
        interval: u32,
        kind: AccessKind,
    ) {
        if self.first_race.is_some() {
            return;
        }
        self.stats.accesses += 1;
        if obj.0 >= self.shadows.len() {
            self.shadows.resize_with(obj.0 + 1, Shadow::default);
        }
        let shadow = &mut self.shadows[obj.0];
        if shadow.counted_era != shadow.era {
            shadow.counted_era = shadow.era;
            self.stats.shadow_arrays += 1;
        }
        if offset >= shadow.cells.len() {
            shadow.cells.resize_with(offset + 1, CellLog::default);
        }
        let cell = &mut shadow.cells[offset];
        if cell.era != shadow.era {
            cell.era = shadow.era;
            cell.accesses.clear();
            cell.has_write = false;
            cell.only_thread = MIXED_THREADS;
        }
        // Fast paths: the conflict scan below can only find a pair when the
        // cell has retained accesses from another thread and at least one
        // side of some pair writes.  Both checks are summaries of exactly
        // the conditions the scan tests per entry, so skipping it is
        // behaviour-preserving.
        let scan_needed = !cell.accesses.is_empty()
            && cell.only_thread != thread
            && (cell.has_write || kind.is_write());
        if scan_needed {
            for prev in cell.accesses.iter() {
                if prev.thread == thread {
                    continue;
                }
                let involves_write = prev.kind.is_write() || kind.is_write();
                if !involves_write {
                    continue;
                }
                let conflict = if prev.group != group {
                    // Cross-group: atomics on the same location are tolerated
                    // (the generator only uses per-group atomic locations, and
                    // real benchmarks use device-wide atomics legitimately).
                    !(prev.kind.is_atomic() && kind.is_atomic())
                } else {
                    // Same group: a barrier separates the accesses when the
                    // intervals differ; both being atomic is also fine.
                    prev.interval == interval && !(prev.kind.is_atomic() && kind.is_atomic())
                };
                if conflict {
                    let object = self
                        .names
                        .get(&obj)
                        .cloned()
                        .unwrap_or_else(|| format!("obj{}", obj.0));
                    self.first_race = Some(RaceReport {
                        object,
                        offset,
                        first_thread: prev.thread,
                        second_thread: thread,
                        same_group: prev.group == group,
                        involves_write,
                    });
                    return;
                }
            }
        }
        if cell.accesses.len() < self.per_cell_cap {
            if cell.accesses.is_empty() {
                cell.only_thread = thread;
            } else if cell.only_thread != thread {
                cell.only_thread = MIXED_THREADS;
            }
            cell.has_write |= kind.is_write();
            cell.accesses.push(Access {
                thread,
                group,
                interval,
                kind,
            });
        }
    }

    /// The first race found, if any.
    pub fn race(&self) -> Option<&RaceReport> {
        self.first_race.as_ref()
    }

    /// Counters for the current launch.
    pub fn stats(&self) -> RaceStats {
        self.stats
    }

    /// Drops the logs of a finished group's local objects: an O(1) era bump
    /// per object instead of a clear, so the next group reusing the same
    /// `local` declarations starts from logically empty shadows.
    pub fn clear_group_local(&mut self, local_objects: &[ObjId]) {
        for obj in local_objects {
            if let Some(shadow) = self.shadows.get_mut(obj.0) {
                shadow.era += 1;
                self.stats.epoch_bumps += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: usize) -> ObjId {
        ObjId(n)
    }

    #[test]
    fn write_write_same_interval_is_a_race() {
        let mut d = RaceDetector::new();
        d.name_object(obj(1), "A");
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(1), 0, 1, 0, 0, AccessKind::Write);
        let race = d.race().expect("race expected");
        assert_eq!(race.object, "A");
        assert!(race.same_group);
    }

    #[test]
    fn reads_do_not_race() {
        let mut d = RaceDetector::new();
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Read);
        d.record(obj(1), 0, 1, 0, 0, AccessKind::Read);
        assert!(d.race().is_none());
    }

    #[test]
    fn barrier_separation_prevents_race() {
        let mut d = RaceDetector::new();
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(1), 0, 1, 0, 1, AccessKind::Read);
        assert!(d.race().is_none());
    }

    #[test]
    fn cross_group_conflict_ignores_barriers() {
        let mut d = RaceDetector::new();
        d.record(obj(2), 5, 0, 0, 0, AccessKind::Write);
        d.record(obj(2), 5, 300, 3, 7, AccessKind::Read);
        let race = d.race().expect("race expected");
        assert!(!race.same_group);
    }

    #[test]
    fn atomics_do_not_race_with_atomics() {
        let mut d = RaceDetector::new();
        d.record(obj(3), 0, 0, 0, 0, AccessKind::Atomic);
        d.record(obj(3), 0, 1, 0, 0, AccessKind::Atomic);
        d.record(obj(3), 0, 2, 1, 0, AccessKind::Atomic);
        assert!(d.race().is_none());
        // ... but a plain write against an atomic does race.
        d.record(obj(3), 0, 3, 0, 0, AccessKind::Write);
        assert!(d.race().is_some());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let mut d = RaceDetector::new();
        d.record(obj(4), 0, 7, 0, 0, AccessKind::Write);
        d.record(obj(4), 0, 7, 0, 0, AccessKind::Write);
        assert!(d.race().is_none());
    }

    #[test]
    fn distinct_cells_do_not_conflict() {
        let mut d = RaceDetector::new();
        d.record(obj(5), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(5), 1, 1, 0, 0, AccessKind::Write);
        assert!(d.race().is_none());
    }

    #[test]
    fn group_local_clear_forgets_prior_accesses() {
        let mut d = RaceDetector::new();
        d.record(obj(6), 0, 0, 0, 0, AccessKind::Write);
        d.clear_group_local(&[obj(6)]);
        // The next group's thread writing the same cell is not a race: the
        // era bump emptied the log.
        d.record(obj(6), 0, 9, 1, 0, AccessKind::Write);
        assert!(d.race().is_none());
        assert_eq!(d.stats().epoch_bumps, 1);
    }

    #[test]
    fn reset_reuses_shadows_without_leaking_state() {
        let mut d = RaceDetector::new();
        d.name_object(obj(1), "A");
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(1), 0, 1, 0, 0, AccessKind::Write);
        assert!(d.race().is_some());
        d.reset();
        assert!(d.race().is_none());
        assert_eq!(d.stats(), RaceStats::default());
        // The old write is gone: a lone write in the new launch cannot race
        // against it, and the stale name table no longer applies.
        d.record(obj(1), 0, 5, 0, 0, AccessKind::Write);
        assert!(d.race().is_none());
        d.record(obj(1), 0, 6, 0, 0, AccessKind::Write);
        let race = d.race().expect("race within the new launch");
        assert_eq!(race.object, "obj1");
        assert_eq!(race.first_thread, 5);
    }

    /// The per-cell cap drops *new* accesses once the log is full; it never
    /// evicts retained ones.  Because `record` scans the retained log before
    /// appending, the earlier half of a racing pair — here the very first
    /// access to the cell — is still present when the racing access arrives,
    /// no matter how many accesses were recorded (and dropped) in between.
    #[test]
    fn cap_never_evicts_the_earlier_half_of_a_racing_pair() {
        let mut d = RaceDetector::new();
        d.name_object(obj(1), "buf");
        // Thread 0 writes the cell, then floods it with far more reads than
        // the cap retains.
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Write);
        for _ in 0..200 {
            d.record(obj(1), 0, 0, 0, 0, AccessKind::Read);
        }
        assert!(d.race().is_none());
        // A same-interval read from another thread must still pair with the
        // initial write: the cap dropped the excess reads, not the write.
        d.record(obj(1), 0, 1, 0, 0, AccessKind::Read);
        let race = d.race().expect("race against the capped-in first write");
        assert_eq!(race.object, "buf");
        assert_eq!(race.first_thread, 0);
        assert_eq!(race.second_thread, 1);
        assert!(race.same_group);
        assert!(race.involves_write);
    }
}
