//! Data-race detection for shared (local / global) memory.
//!
//! The paper defines a data race (§3.1) as two accesses to a common location
//! from distinct work-items where at least one access is a write and either
//! the work-items are in different groups, or they are in the same group,
//! at least one access is non-atomic, and the accesses are not separated by
//! a barrier.
//!
//! The detector logs every shared-memory access together with the work-item
//! that made it and the *barrier interval* (number of group barriers the
//! work-item has passed).  Two same-group accesses conflict only when they
//! fall in the same interval; cross-group accesses always conflict when one
//! is a non-atomic write.  This is exactly the check the paper's authors had
//! to perform manually when they discovered the races in Parboil `spmv` and
//! Rodinia `myocyte` (§2.4).

use crate::error::RaceReport;
use crate::value::ObjId;
use std::collections::HashMap;

/// Kind of access, for conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain read.
    Read,
    /// Plain write.
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }

    fn is_atomic(self) -> bool {
        matches!(self, AccessKind::Atomic)
    }
}

#[derive(Debug, Clone)]
struct Access {
    thread: usize,
    group: usize,
    interval: u32,
    kind: AccessKind,
}

/// Records shared-memory accesses and reports the first conflicting pair.
#[derive(Debug, Default)]
pub struct RaceDetector {
    /// Most recent accesses per (object, cell).  Keeping every access would
    /// be quadratic; keeping the full set per location is fine because CLsmith
    /// kernels touch each shared cell a bounded number of times, but to stay
    /// robust on adversarial inputs the log per cell is capped.
    accesses: HashMap<(ObjId, usize), Vec<Access>>,
    /// Human-readable object names for reports.
    names: HashMap<ObjId, String>,
    /// First detected race, if any.
    first_race: Option<RaceReport>,
    /// Cap on retained accesses per cell.
    per_cell_cap: usize,
}

impl RaceDetector {
    /// Creates a detector.
    pub fn new() -> RaceDetector {
        RaceDetector {
            per_cell_cap: 64,
            ..RaceDetector::default()
        }
    }

    /// Registers a friendly name for an object (used in reports).
    pub fn name_object(&mut self, obj: ObjId, name: &str) {
        self.names.insert(obj, name.to_string());
    }

    /// Records an access and checks it against previously recorded accesses.
    pub fn record(
        &mut self,
        obj: ObjId,
        offset: usize,
        thread: usize,
        group: usize,
        interval: u32,
        kind: AccessKind,
    ) {
        if self.first_race.is_some() {
            return;
        }
        let entry = self.accesses.entry((obj, offset)).or_default();
        for prev in entry.iter() {
            if prev.thread == thread {
                continue;
            }
            let involves_write = prev.kind.is_write() || kind.is_write();
            if !involves_write {
                continue;
            }
            let conflict = if prev.group != group {
                // Cross-group: atomics on the same location are tolerated
                // (the generator only uses per-group atomic locations, and
                // real benchmarks use device-wide atomics legitimately).
                !(prev.kind.is_atomic() && kind.is_atomic())
            } else {
                // Same group: a barrier separates the accesses when the
                // intervals differ; both being atomic is also fine.
                prev.interval == interval && !(prev.kind.is_atomic() && kind.is_atomic())
            };
            if conflict {
                let object = self
                    .names
                    .get(&obj)
                    .cloned()
                    .unwrap_or_else(|| format!("obj{}", obj.0));
                self.first_race = Some(RaceReport {
                    object,
                    offset,
                    first_thread: prev.thread,
                    second_thread: thread,
                    same_group: prev.group == group,
                    involves_write,
                });
                return;
            }
        }
        if entry.len() < self.per_cell_cap {
            entry.push(Access {
                thread,
                group,
                interval,
                kind,
            });
        }
    }

    /// The first race found, if any.
    pub fn race(&self) -> Option<&RaceReport> {
        self.first_race.as_ref()
    }

    /// Clears per-location logs (called when a group finishes; cross-group
    /// global accesses are retained by recording them under interval
    /// `u32::MAX` before clearing — see [`RaceDetector::retain_global`]).
    pub fn clear_group_local(&mut self, local_objects: &[ObjId]) {
        for obj in local_objects {
            self.accesses.retain(|(o, _), _| o != obj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: usize) -> ObjId {
        ObjId(n)
    }

    #[test]
    fn write_write_same_interval_is_a_race() {
        let mut d = RaceDetector::new();
        d.name_object(obj(1), "A");
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(1), 0, 1, 0, 0, AccessKind::Write);
        let race = d.race().expect("race expected");
        assert_eq!(race.object, "A");
        assert!(race.same_group);
    }

    #[test]
    fn reads_do_not_race() {
        let mut d = RaceDetector::new();
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Read);
        d.record(obj(1), 0, 1, 0, 0, AccessKind::Read);
        assert!(d.race().is_none());
    }

    #[test]
    fn barrier_separation_prevents_race() {
        let mut d = RaceDetector::new();
        d.record(obj(1), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(1), 0, 1, 0, 1, AccessKind::Read);
        assert!(d.race().is_none());
    }

    #[test]
    fn cross_group_conflict_ignores_barriers() {
        let mut d = RaceDetector::new();
        d.record(obj(2), 5, 0, 0, 0, AccessKind::Write);
        d.record(obj(2), 5, 300, 3, 7, AccessKind::Read);
        let race = d.race().expect("race expected");
        assert!(!race.same_group);
    }

    #[test]
    fn atomics_do_not_race_with_atomics() {
        let mut d = RaceDetector::new();
        d.record(obj(3), 0, 0, 0, 0, AccessKind::Atomic);
        d.record(obj(3), 0, 1, 0, 0, AccessKind::Atomic);
        d.record(obj(3), 0, 2, 1, 0, AccessKind::Atomic);
        assert!(d.race().is_none());
        // ... but a plain write against an atomic does race.
        d.record(obj(3), 0, 3, 0, 0, AccessKind::Write);
        assert!(d.race().is_some());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let mut d = RaceDetector::new();
        d.record(obj(4), 0, 7, 0, 0, AccessKind::Write);
        d.record(obj(4), 0, 7, 0, 0, AccessKind::Write);
        assert!(d.race().is_none());
    }

    #[test]
    fn distinct_cells_do_not_conflict() {
        let mut d = RaceDetector::new();
        d.record(obj(5), 0, 0, 0, 0, AccessKind::Write);
        d.record(obj(5), 1, 1, 0, 0, AccessKind::Write);
        assert!(d.race().is_none());
    }
}
