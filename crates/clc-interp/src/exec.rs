//! NDRange execution: the resumable kernel-body machine, the per-group
//! cooperative scheduler, and the launch entry point.
//!
//! Work-groups execute one after another (OpenCL 1.x provides no inter-group
//! synchronisation, §3.1/§4.2 of the paper, so this is semantics-preserving
//! for well-defined kernels).  Within a group, work-items are interpreted
//! cooperatively: each runs until it finishes or reaches a kernel-body
//! `barrier()`, at which point the scheduler switches to the next work-item.
//! When every live work-item waits at the same barrier the group is released
//! into the next *barrier interval*; arriving at different barriers (or
//! finishing while others wait) is reported as barrier divergence.

use crate::error::{RaceReport, RuntimeError};
use crate::eval::{
    declare_var, emi_guard_is_true, eval_expr, exec_stmt, Ctx, Env, Flow, ThreadIds,
};
use crate::memory::Memory;
use crate::race::{RaceDetector, RaceStats};
use crate::value::{Cell, ObjId, PointerValue, Scalar};
use clc::stmt::{Block, Stmt};
use clc::types::{AddressSpace, ScalarType, Type};
use clc::Program;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Order in which ready work-items of a group are scheduled in each barrier
/// interval.  Varying the schedule is how the harness checks that kernels
/// are schedule-deterministic and how it exposes the data races the paper
/// found in Parboil `spmv` and Rodinia `myocyte`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Ascending local id (the natural order).
    #[default]
    Forward,
    /// Descending local id.
    Reverse,
    /// Deterministic pseudo-random permutation derived from the seed and the
    /// barrier interval.
    Shuffled(u64),
}

/// Which execution engine runs the kernel.
///
/// Both tiers share the same [`Memory`], race detector, barrier/scheduling
/// machinery and [`RuntimeError`] surface, and are required (and tested) to
/// agree bit-for-bit on results, errors and race verdicts.  The bytecode tier
/// lowers the kernel once ([`crate::compile`]) and then executes a flat
/// instruction stream ([`crate::vm`]), which avoids the per-statement
/// name-lookup and AST-traversal costs of the tree walker.
///
/// The one intentionally tier-specific quantity is **step accounting**: the
/// tree walker counts evaluated AST nodes while the VM counts executed
/// instructions (typically fewer, since fused instructions cover several
/// nodes).  [`LaunchOptions::step_limit`] is enforced against each tier's
/// own count, so a kernel whose cost sits within a small factor of the
/// budget can time out on one tier but not the other; CLsmith-generated
/// kernels terminate far below the default budget, where the tiers agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionTier {
    /// The original recursive AST evaluator ([`crate::eval`]).
    TreeWalk,
    /// The compiled bytecode VM (the default).
    #[default]
    Bytecode,
}

impl ExecutionTier {
    /// All tiers, for benchmarks and equivalence tests.
    pub const ALL: [ExecutionTier; 2] = [ExecutionTier::TreeWalk, ExecutionTier::Bytecode];

    /// A short name for table axes and logs.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionTier::TreeWalk => "tree-walk",
            ExecutionTier::Bytecode => "bytecode",
        }
    }

    /// The tier selected by the `CLC_INTERP_TIER` environment variable
    /// (`tree` / `treewalk` / `tree-walk` select the tree walker, anything
    /// else — including unset — selects the bytecode tier).  The variable is
    /// read once per process.
    pub fn from_env() -> ExecutionTier {
        static TIER: std::sync::OnceLock<ExecutionTier> = std::sync::OnceLock::new();
        *TIER.get_or_init(|| match std::env::var("CLC_INTERP_TIER").as_deref() {
            Ok("tree") | Ok("treewalk") | Ok("tree-walk") | Ok("tree_walk") => {
                ExecutionTier::TreeWalk
            }
            _ => ExecutionTier::Bytecode,
        })
    }
}

/// Options controlling a kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Per-work-item step budget; exceeding it reports a timeout.
    pub step_limit: u64,
    /// Whether to run the data-race detector (slower; used for benchmark
    /// EMI testing and for the reducer's validity checks).
    pub detect_races: bool,
    /// Work-item scheduling order.
    pub schedule: Schedule,
    /// Replaces the initial contents of named buffers (used to invert the
    /// EMI `dead` array, §7.4).  Behind an [`Arc`] so that per-target
    /// [`LaunchOptions`] can be derived from shared execution options
    /// without cloning the override data; use [`Arc::make_mut`] to edit.
    pub buffer_overrides: Arc<HashMap<String, Vec<i64>>>,
    /// Values for scalar (non-pointer) kernel parameters.
    pub scalar_args: HashMap<String, i64>,
    /// Which execution engine to use (defaults to the bytecode tier, with a
    /// `CLC_INTERP_TIER` environment override).
    pub tier: ExecutionTier,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            step_limit: 2_000_000,
            detect_races: false,
            schedule: Schedule::Forward,
            buffer_overrides: Arc::new(HashMap::new()),
            scalar_args: HashMap::new(),
            tier: ExecutionTier::from_env(),
        }
    }
}

/// The observable outcome of a successful kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchResult {
    /// Final contents of the result buffer (CLsmith's `out` array), if the
    /// program declares one.
    pub output: Vec<Scalar>,
    /// The comma-separated result string a CLsmith host program would print.
    pub result_string: String,
    /// FNV-1a hash of the result string (cheap comparison key).
    pub result_hash: u64,
    /// First data race detected, if race detection was enabled.
    pub race: Option<RaceReport>,
    /// Total interpreter steps across all work-items.
    pub total_steps: u64,
    /// Number of barriers executed inside helper functions (not
    /// synchronising; see `clc-interp`'s crate documentation).
    pub soft_barriers: u64,
    /// Race-detector counters for this launch; `None` when race detection
    /// was disabled.  Diagnostic only: excluded from the tier-equivalence
    /// contract and from memoised outcomes.
    pub race_stats: Option<RaceStats>,
    /// Objects allocated in the launch's memory (buffers, parameters and
    /// every variable declaration that needed backing storage).  Diagnostic
    /// and tier-specific: the bytecode tier's register file keeps scalar
    /// temporaries out of the object table entirely.
    pub objects_allocated: u64,
    /// Maximum number of barriers any work-group released — how deep the
    /// barrier-arrival ladder ran.  Tier-identical (both tiers share the
    /// cooperative scheduler) and schedule-independent for race-free
    /// kernels, so coverage feedback may fold it into its dynamic bits.
    /// Excluded from memoised outcomes, like `race_stats`.
    pub barrier_intervals: u64,
}

thread_local! {
    /// Per-thread spare race detector, reused across launches so the shadow
    /// arrays grown by earlier kernels are recycled instead of reallocated —
    /// the detector analogue of `Memory::spare_cells`.  Reuse is sound
    /// because [`RaceDetector::reset`] bumps every shadow's era, which makes
    /// all retained cell logs logically empty in O(#objects).
    static SPARE_DETECTOR: RefCell<Option<RaceDetector>> = const { RefCell::new(None) };
}

/// Executes a program over its NDRange.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for undefined behaviour (barrier divergence,
/// uninitialised reads, raw division by zero, ...), for step-budget
/// exhaustion (timeouts), and for malformed programs (unknown variables,
/// missing buffers).  Data races are reported in the result rather than as
/// errors so that the harness can distinguish them from crashes.
pub fn launch(program: &Program, options: &LaunchOptions) -> Result<LaunchResult, RuntimeError> {
    match options.tier {
        ExecutionTier::Bytecode => {
            launch_with(program, Some(&crate::compile::compile(program)), options)
        }
        ExecutionTier::TreeWalk => launch_with(program, None, options),
    }
}

/// A kernel prepared for repeated launching: the program plus its lazily
/// lowered bytecode module.
///
/// The historical entry point [`launch`] re-lowers the program to bytecode
/// on every call; `CompiledKernel` splits that into an explicit
/// compile-once / launch-many shape, so a differential harness that runs
/// one compiled program under many launch options (schedules, buffer
/// overrides, race detection on and off) pays the lowering exactly once.
/// Lowering happens on the first bytecode-tier launch, so a kernel that is
/// only ever tree-walked never pays it at all.
///
/// Launches are pure: for fixed options, [`CompiledKernel::launch`] returns
/// the same result every time (the emulator is deterministic), which is what
/// makes outcome memoisation above this layer sound.
#[derive(Debug)]
pub struct CompiledKernel {
    program: Program,
    bytecode: OnceLock<crate::compile::CompiledProgram>,
}

impl CompiledKernel {
    /// Takes ownership of a program and prepares it for repeated launching.
    pub fn compile(program: Program) -> CompiledKernel {
        CompiledKernel {
            program,
            bytecode: OnceLock::new(),
        }
    }

    /// The program this kernel was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Executes the kernel over its NDRange, reusing the lowered bytecode
    /// across calls.
    ///
    /// # Errors
    ///
    /// See [`launch`].
    pub fn launch(&self, options: &LaunchOptions) -> Result<LaunchResult, RuntimeError> {
        let compiled = match options.tier {
            ExecutionTier::Bytecode => Some(
                self.bytecode
                    .get_or_init(|| crate::compile::compile(&self.program)),
            ),
            ExecutionTier::TreeWalk => None,
        };
        launch_with(&self.program, compiled, options)
    }
}

/// The shared launch body: executes `program` with an optional pre-lowered
/// bytecode module (present exactly when the tier is
/// [`ExecutionTier::Bytecode`]).
fn launch_with(
    program: &Program,
    compiled: Option<&crate::compile::CompiledProgram>,
    options: &LaunchOptions,
) -> Result<LaunchResult, RuntimeError> {
    program
        .launch
        .validate()
        .map_err(|detail| RuntimeError::InvalidAccess { detail })?;
    let mut memory = Memory::new();
    let mut races = if options.detect_races {
        let mut detector = SPARE_DETECTOR
            .with(|spare| spare.borrow_mut().take())
            .unwrap_or_default();
        detector.reset();
        Some(detector)
    } else {
        None
    };

    // Allocate buffer objects for pointer parameters.
    let mut buffer_objects: HashMap<String, (ObjId, ScalarType, usize)> = HashMap::new();
    for spec in &program.buffers {
        let data = match options.buffer_overrides.get(&spec.param) {
            Some(d) => {
                let mut v = d.clone();
                v.resize(spec.len, 0);
                v
            }
            None => spec.init.materialize(spec.len),
        };
        let cells: Vec<Cell> = data
            .iter()
            .map(|&v| Cell::Bits(Scalar::from_i128(v as i128, spec.elem).bits))
            .collect();
        let ty = Type::Scalar(spec.elem).array_of(spec.len);
        let obj = memory.alloc_with_cells(
            format!("buf_{}", spec.param),
            ty,
            AddressSpace::Global,
            cells,
        );
        if let Some(r) = races.as_mut() {
            r.name_object(obj, &spec.param);
        }
        buffer_objects.insert(spec.param.clone(), (obj, spec.elem, spec.len));
    }

    // The BARRIER-mode permutation table lives in constant memory.
    let permutations_obj = if program.permutations.is_empty() {
        None
    } else {
        let rows = program.permutations.len();
        let cols = program.permutations[0].len();
        let mut cells = Vec::with_capacity(rows * cols);
        for row in &program.permutations {
            for &v in row {
                cells.push(Cell::Bits(u64::from(v)));
            }
        }
        let ty = Type::Scalar(ScalarType::UInt).array_of(cols).array_of(rows);
        Some(memory.alloc_with_cells("permutations", ty, AddressSpace::Constant, cells))
    };

    let launch_cfg = &program.launch;
    let groups = launch_cfg.groups();
    let mut total_steps = 0u64;
    let mut soft_barriers = 0u64;
    let mut barrier_intervals = 0u64;

    // Run the group loop and result readback inside a closure so that the
    // detector is harvested and returned to the spare slot on the error
    // paths too, not just on success.
    let run = (|| -> Result<(Vec<Scalar>, String), RuntimeError> {
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    let group = [gx, gy, gz];
                    match compiled {
                        Some(compiled) => crate::vm::run_group(
                            program,
                            compiled,
                            options,
                            &mut memory,
                            &mut races,
                            &buffer_objects,
                            permutations_obj,
                            group,
                            &mut total_steps,
                            &mut soft_barriers,
                            &mut barrier_intervals,
                        )?,
                        None => run_group(
                            program,
                            options,
                            &mut memory,
                            &mut races,
                            &buffer_objects,
                            permutations_obj,
                            group,
                            &mut total_steps,
                            &mut soft_barriers,
                            &mut barrier_intervals,
                        )?,
                    }
                }
            }
        }

        // Read back the result buffer.
        match program.result_param() {
            Some(name) => {
                let (obj, elem, len) = buffer_objects.get(name).copied().ok_or_else(|| {
                    RuntimeError::InvalidAccess {
                        detail: format!("result parameter `{name}` has no buffer"),
                    }
                })?;
                let mut values = Vec::with_capacity(len);
                for i in 0..len {
                    values.push(memory.read_scalar(obj, i, elem)?);
                }
                let rendered: Vec<String> = values.iter().map(|s| s.render()).collect();
                Ok((values, rendered.join(",")))
            }
            None => Ok((Vec::new(), String::new())),
        }
    })();

    let race = races.as_ref().and_then(|r| r.race().cloned());
    let race_stats = races.as_ref().map(|r| r.stats());
    if let Some(detector) = races.take() {
        SPARE_DETECTOR.with(|spare| *spare.borrow_mut() = Some(detector));
    }
    let (output, result_string) = run?;
    let result_hash = fnv1a(result_string.as_bytes());
    Ok(LaunchResult {
        output,
        result_string,
        result_hash,
        race,
        total_steps,
        soft_barriers,
        race_stats,
        objects_allocated: memory.allocations(),
        barrier_intervals,
    })
}

/// FNV-1a hash (used as a compact result fingerprint).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Execution status of one work-item.  Shared by both execution tiers; the
/// barrier `site` identifies the syntactic barrier a work-item waits at
/// (block address + statement index for the tree walker, instruction address
/// for the bytecode VM) so that barrier divergence is detected identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Status {
    Ready,
    AtBarrier { site: (usize, usize) },
    Done,
    Failed(RuntimeError),
}

/// A work-item that can be cooperatively scheduled by [`drive_group`].
///
/// Implemented by both tiers' work-item states, so the barrier-interval /
/// divergence machinery is written exactly once.
pub(crate) trait CoopItem {
    /// Current status.
    fn status(&self) -> &Status;
    /// Releases the item from a barrier: the barrier interval advances and
    /// the item becomes ready again.
    fn release_barrier(&mut self);
}

/// The per-group cooperative scheduler shared by both execution tiers: runs
/// ready work-items in schedule order until all finish, detecting barrier
/// divergence and propagating the first failure.
///
/// Returns the number of barriers the group released — i.e. how many
/// barrier intervals beyond the first the group advanced through.  Both
/// tiers walk the same statements through the same scheduler, so the count
/// is tier-identical.
pub(crate) fn drive_group<T: CoopItem>(
    items: &mut [T],
    schedule: Schedule,
    group_linear: usize,
    mut run: impl FnMut(&mut T),
) -> Result<u64, RuntimeError> {
    let n = items.len();
    let mut round = 0u64;
    loop {
        let order = schedule_order(schedule, n, round);
        for &i in &order {
            if *items[i].status() == Status::Ready {
                run(&mut items[i]);
            }
        }
        // Classify.
        let mut any_failed: Option<RuntimeError> = None;
        let mut done = 0usize;
        let mut waiting: Vec<usize> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item.status() {
                Status::Done => done += 1,
                Status::AtBarrier { .. } => waiting.push(i),
                Status::Failed(e) => {
                    if any_failed.is_none() {
                        any_failed = Some(e.clone());
                    }
                }
                Status::Ready => {}
            }
        }
        if let Some(e) = any_failed {
            return Err(e);
        }
        if done == n {
            return Ok(round);
        }
        if waiting.is_empty() {
            // All remaining are Ready (should not happen: `run` always leaves
            // a non-Ready status) — guard against livelock.
            return Err(RuntimeError::Unsupported(
                "scheduler made no progress".into(),
            ));
        }
        if done > 0 {
            return Err(RuntimeError::BarrierDivergence {
                group: group_linear,
            });
        }
        // All work-items must be waiting at the same barrier site.
        let first_site = match items[waiting[0]].status() {
            Status::AtBarrier { site } => *site,
            _ => unreachable!(),
        };
        for &i in &waiting[1..] {
            match items[i].status() {
                Status::AtBarrier { site } if *site == first_site => {}
                _ => {
                    return Err(RuntimeError::BarrierDivergence {
                        group: group_linear,
                    })
                }
            }
        }
        // Release the barrier.
        for item in items.iter_mut() {
            item.release_barrier();
        }
        round += 1;
    }
}

/// Allocates the per-work-item object backing one kernel parameter: a
/// pointer cell aimed at the parameter's buffer, or a scalar cell fed from
/// `scalar_args`.  Shared by both execution tiers.
pub(crate) fn alloc_param_object(
    memory: &mut Memory,
    buffer_objects: &HashMap<String, (ObjId, ScalarType, usize)>,
    options: &LaunchOptions,
    param: &clc::Param,
) -> Result<ObjId, RuntimeError> {
    match &param.ty {
        Type::Pointer(inner, space) => {
            let (buf, _, _) = buffer_objects.get(&param.name).copied().ok_or_else(|| {
                RuntimeError::InvalidAccess {
                    detail: format!(
                        "kernel parameter `{}` has no buffer specification",
                        param.name
                    ),
                }
            })?;
            Ok(memory.alloc_with_cells(
                param.name.clone(),
                param.ty.clone(),
                AddressSpace::Private,
                vec![Cell::Ptr(PointerValue {
                    obj: buf,
                    offset: 0,
                    pointee: (**inner).clone(),
                    space: *space,
                })],
            ))
        }
        other => {
            let value = options.scalar_args.get(&param.name).copied().unwrap_or(0);
            let elem = other.scalar_elem().unwrap_or(ScalarType::Int);
            Ok(memory.alloc_with_cells(
                param.name.clone(),
                param.ty.clone(),
                AddressSpace::Private,
                vec![Cell::Bits(Scalar::from_i128(value as i128, elem).bits)],
            ))
        }
    }
}

/// Builds the [`ThreadIds`] for the work-item at local coordinates
/// `(lx, ly, lz)` of `group`.  Shared by both execution tiers.
pub(crate) fn thread_ids(
    cfg: &clc::LaunchConfig,
    group: [usize; 3],
    local_coord: [usize; 3],
) -> ThreadIds {
    let local = cfg.local;
    ThreadIds {
        global: [
            group[0] * local[0] + local_coord[0],
            group[1] * local[1] + local_coord[1],
            group[2] * local[2] + local_coord[2],
        ],
        local: local_coord,
        group,
        global_size: cfg.global,
        local_size: local,
        num_groups: cfg.groups(),
        interval: 0,
    }
}

#[derive(Debug)]
enum FrameKind<'p> {
    Seq,
    Loop { stmt: &'p Stmt },
}

#[derive(Debug)]
struct Frame<'p> {
    block: &'p Block,
    idx: usize,
    kind: FrameKind<'p>,
    scope_depth: usize,
}

struct WorkItem<'p> {
    ids: ThreadIds,
    env: Env,
    frames: Vec<Frame<'p>>,
    status: Status,
    steps: u64,
    soft_barriers: u64,
}

impl CoopItem for WorkItem<'_> {
    fn status(&self) -> &Status {
        &self.status
    }

    fn release_barrier(&mut self) {
        self.ids.interval += 1;
        self.status = Status::Ready;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_group<'p>(
    program: &'p Program,
    options: &LaunchOptions,
    memory: &mut Memory,
    races: &mut Option<RaceDetector>,
    buffer_objects: &HashMap<String, (ObjId, ScalarType, usize)>,
    permutations_obj: Option<ObjId>,
    group: [usize; 3],
    total_steps: &mut u64,
    soft_barriers: &mut u64,
    barrier_intervals: &mut u64,
) -> Result<(), RuntimeError> {
    let cfg = &program.launch;
    let num_groups = cfg.groups();
    let local = cfg.local;
    let mut group_locals: HashMap<String, ObjId> = HashMap::new();

    // Create the work-items of this group.
    let mut items: Vec<WorkItem<'p>> = Vec::with_capacity(cfg.group_size());
    for lz in 0..local[2] {
        for ly in 0..local[1] {
            for lx in 0..local[0] {
                let ids = thread_ids(cfg, group, [lx, ly, lz]);
                let mut env = Env::new();
                if let Some(perm) = permutations_obj {
                    env.bind("permutations", perm);
                }
                // Bind kernel parameters.
                for param in &program.kernel.params {
                    let obj = alloc_param_object(memory, buffer_objects, options, param)?;
                    env.bind_owned(param.name.clone(), obj);
                }
                let scope_depth = env.depth();
                items.push(WorkItem {
                    ids,
                    env,
                    frames: vec![Frame {
                        block: &program.kernel.body,
                        idx: 0,
                        kind: FrameKind::Seq,
                        scope_depth,
                    }],
                    status: Status::Ready,
                    steps: 0,
                    soft_barriers: 0,
                });
            }
        }
    }

    let released = drive_group(
        &mut items,
        options.schedule,
        group_linear(group, num_groups),
        |item| run_item(program, options, memory, races, &mut group_locals, item),
    )?;
    *barrier_intervals = (*barrier_intervals).max(released);

    for item in &mut items {
        *total_steps += item.steps;
        *soft_barriers += item.soft_barriers;
        item.env.pop_to_depth(0, memory);
    }
    // The group is over: no later access can race with this group's local
    // objects, so drop their logs with an O(1) era bump per shadow.
    if let Some(r) = races.as_mut() {
        let locals: Vec<ObjId> = group_locals.values().copied().collect();
        r.clear_group_local(&locals);
    }
    Ok(())
}

pub(crate) fn group_linear(group: [usize; 3], num_groups: [usize; 3]) -> usize {
    (group[2] * num_groups[1] + group[1]) * num_groups[0] + group[0]
}

fn schedule_order(schedule: Schedule, n: usize, round: u64) -> Vec<usize> {
    match schedule {
        Schedule::Forward => (0..n).collect(),
        Schedule::Reverse => (0..n).rev().collect(),
        Schedule::Shuffled(seed) => {
            let mut order: Vec<usize> = (0..n).collect();
            let mut state =
                seed ^ (round.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ 0x2545_f491_4f6c_dd1d;
            for i in (1..n).rev() {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let r = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
                let j = (r % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            order
        }
    }
}

/// Runs a single work-item until it blocks at a barrier, finishes or fails.
fn run_item<'p>(
    program: &'p Program,
    options: &LaunchOptions,
    memory: &mut Memory,
    races: &mut Option<RaceDetector>,
    group_locals: &mut HashMap<String, ObjId>,
    item: &mut WorkItem<'p>,
) {
    loop {
        match step_item(program, options, memory, races, group_locals, item) {
            Ok(true) => continue,
            Ok(false) => return,
            Err(e) => {
                item.status = Status::Failed(e);
                return;
            }
        }
    }
}

/// Executes one machine step.  Returns `Ok(true)` when the work-item can
/// continue immediately, `Ok(false)` when it is now blocked or finished.
fn step_item<'p>(
    program: &'p Program,
    options: &LaunchOptions,
    memory: &mut Memory,
    races: &mut Option<RaceDetector>,
    group_locals: &mut HashMap<String, ObjId>,
    item: &mut WorkItem<'p>,
) -> Result<bool, RuntimeError> {
    let Some(frame) = item.frames.last_mut() else {
        item.status = Status::Done;
        return Ok(false);
    };
    // Frame epilogue: the block is exhausted.
    if frame.idx >= frame.block.stmts.len() {
        let kind_is_loop = matches!(frame.kind, FrameKind::Loop { .. });
        if kind_is_loop {
            let FrameKind::Loop { stmt } = frame.kind else {
                unreachable!()
            };
            let mut ctx = make_ctx(
                program,
                options,
                memory,
                races,
                group_locals,
                item.ids,
                &mut item.steps,
                &mut item.soft_barriers,
            );
            match stmt {
                Stmt::For { cond, update, .. } => {
                    if let Some(u) = update {
                        eval_expr(&mut ctx, &mut item.env, u)?;
                    }
                    let again = match cond {
                        Some(c) => eval_expr(&mut ctx, &mut item.env, c)?
                            .is_true()
                            .unwrap_or(false),
                        None => true,
                    };
                    finish_or_repeat(item, memory, again);
                }
                Stmt::While { cond, .. } => {
                    let again = eval_expr(&mut ctx, &mut item.env, cond)?
                        .is_true()
                        .unwrap_or(false);
                    finish_or_repeat(item, memory, again);
                }
                _ => unreachable!("loop frame over non-loop statement"),
            }
        } else {
            let depth = frame.scope_depth;
            item.frames.pop();
            item.env.pop_to_depth(depth, memory);
        }
        if item.frames.is_empty() {
            item.status = Status::Done;
            return Ok(false);
        }
        return Ok(true);
    }

    let stmt = &frame.block.stmts[frame.idx];
    let site = (frame.block as *const Block as usize, frame.idx);
    frame.idx += 1;

    // A kernel-body barrier suspends the work-item.
    if let Stmt::Barrier(_) = stmt {
        item.steps += 1;
        item.status = Status::AtBarrier { site };
        return Ok(false);
    }

    if !stmt.contains_barrier() {
        // Atomic execution of the whole statement.
        let mut ctx = make_ctx(
            program,
            options,
            memory,
            races,
            group_locals,
            item.ids,
            &mut item.steps,
            &mut item.soft_barriers,
        );
        let flow = exec_stmt(&mut ctx, &mut item.env, stmt)?;
        return handle_flow(item, memory, flow);
    }

    // Compound statement containing a barrier: open it up so the barrier
    // becomes visible to the machine.
    match stmt {
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            let mut ctx = make_ctx(
                program,
                options,
                memory,
                races,
                group_locals,
                item.ids,
                &mut item.steps,
                &mut item.soft_barriers,
            );
            let taken = eval_expr(&mut ctx, &mut item.env, cond)?
                .is_true()
                .unwrap_or(false);
            let block = if taken {
                Some(then_block)
            } else {
                else_block.as_ref()
            };
            if let Some(block) = block {
                push_seq_frame(item, block);
            }
            Ok(true)
        }
        Stmt::Block(b) => {
            push_seq_frame(item, b);
            Ok(true)
        }
        Stmt::Emi(emi) => {
            let mut ctx = make_ctx(
                program,
                options,
                memory,
                races,
                group_locals,
                item.ids,
                &mut item.steps,
                &mut item.soft_barriers,
            );
            let live = emi_guard_is_true(&mut ctx, &mut item.env, emi)?;
            if live {
                push_seq_frame(item, &emi.body);
            }
            Ok(true)
        }
        Stmt::For {
            init, cond, body, ..
        } => {
            let scope_depth = item.env.depth();
            item.env.push_scope();
            let mut ctx = make_ctx(
                program,
                options,
                memory,
                races,
                group_locals,
                item.ids,
                &mut item.steps,
                &mut item.soft_barriers,
            );
            if let Some(init) = init {
                if let Stmt::Decl { .. } = init.as_ref() {
                    declare_var(&mut ctx, &mut item.env, init)?;
                } else {
                    exec_stmt(&mut ctx, &mut item.env, init)?;
                }
            }
            let enter = match cond {
                Some(c) => eval_expr(&mut ctx, &mut item.env, c)?
                    .is_true()
                    .unwrap_or(false),
                None => true,
            };
            if enter {
                item.frames.push(Frame {
                    block: body,
                    idx: 0,
                    kind: FrameKind::Loop { stmt },
                    scope_depth,
                });
            } else {
                item.env.pop_to_depth(scope_depth, memory);
            }
            Ok(true)
        }
        Stmt::While { cond, body } => {
            let scope_depth = item.env.depth();
            item.env.push_scope();
            let mut ctx = make_ctx(
                program,
                options,
                memory,
                races,
                group_locals,
                item.ids,
                &mut item.steps,
                &mut item.soft_barriers,
            );
            let enter = eval_expr(&mut ctx, &mut item.env, cond)?
                .is_true()
                .unwrap_or(false);
            if enter {
                item.frames.push(Frame {
                    block: body,
                    idx: 0,
                    kind: FrameKind::Loop { stmt },
                    scope_depth,
                });
            } else {
                item.env.pop_to_depth(scope_depth, memory);
            }
            Ok(true)
        }
        // Decl / Expr / Return / Break / Continue never contain barriers.
        _ => {
            let mut ctx = make_ctx(
                program,
                options,
                memory,
                races,
                group_locals,
                item.ids,
                &mut item.steps,
                &mut item.soft_barriers,
            );
            let flow = exec_stmt(&mut ctx, &mut item.env, stmt)?;
            handle_flow(item, memory, flow)
        }
    }
}

fn push_seq_frame<'p>(item: &mut WorkItem<'p>, block: &'p Block) {
    let scope_depth = item.env.depth();
    item.env.push_scope();
    item.frames.push(Frame {
        block,
        idx: 0,
        kind: FrameKind::Seq,
        scope_depth,
    });
}

fn finish_or_repeat(item: &mut WorkItem<'_>, memory: &mut Memory, again: bool) {
    if again {
        if let Some(frame) = item.frames.last_mut() {
            frame.idx = 0;
        }
    } else {
        let depth = item.frames.last().map(|f| f.scope_depth).unwrap_or(0);
        item.frames.pop();
        item.env.pop_to_depth(depth, memory);
    }
}

fn handle_flow(
    item: &mut WorkItem<'_>,
    memory: &mut Memory,
    flow: Flow,
) -> Result<bool, RuntimeError> {
    match flow {
        Flow::Normal => Ok(true),
        Flow::Return(_) => {
            while let Some(frame) = item.frames.pop() {
                item.env.pop_to_depth(frame.scope_depth, memory);
            }
            item.status = Status::Done;
            Ok(false)
        }
        Flow::Break => {
            loop {
                match item.frames.last() {
                    Some(frame) => {
                        let is_loop = matches!(frame.kind, FrameKind::Loop { .. });
                        let depth = frame.scope_depth;
                        item.frames.pop();
                        item.env.pop_to_depth(depth, memory);
                        if is_loop {
                            break;
                        }
                    }
                    None => {
                        return Err(RuntimeError::Unsupported(
                            "break outside of a loop in kernel body".into(),
                        ))
                    }
                }
            }
            Ok(true)
        }
        Flow::Continue => {
            // Unwind nested Seq frames to the enclosing loop frame, then jump
            // to its epilogue.
            loop {
                match item.frames.last_mut() {
                    Some(frame) => {
                        if matches!(frame.kind, FrameKind::Loop { .. }) {
                            frame.idx = frame.block.stmts.len();
                            break;
                        }
                        let depth = frame.scope_depth;
                        item.frames.pop();
                        item.env.pop_to_depth(depth, memory);
                    }
                    None => {
                        return Err(RuntimeError::Unsupported(
                            "continue outside of a loop in kernel body".into(),
                        ))
                    }
                }
            }
            Ok(true)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn make_ctx<'a, 'p>(
    program: &'p Program,
    options: &LaunchOptions,
    memory: &'a mut Memory,
    races: &'a mut Option<RaceDetector>,
    group_locals: &'a mut HashMap<String, ObjId>,
    ids: ThreadIds,
    steps: &'a mut u64,
    soft_barriers: &'a mut u64,
) -> Ctx<'a, 'p> {
    Ctx {
        program,
        memory,
        races: races.as_mut(),
        group_locals,
        ids,
        steps,
        step_limit: options.step_limit,
        call_depth: 0,
        soft_barriers,
    }
}

/// Convenience: launches with default options.
///
/// # Errors
///
/// See [`launch`].
pub fn run(program: &Program) -> Result<LaunchResult, RuntimeError> {
    launch(program, &LaunchOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::expr::{AssignOp, BinOp, Builtin, Expr, IdKind};
    use clc::stmt::MemFence;
    use clc::{BufferInit, BufferSpec, KernelDef, LaunchConfig, Param};

    /// A kernel where each thread writes `base + t_linear` to `out`.
    fn simple_program(n: usize, base: i64) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(vec![Stmt::assign(
                    Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                    Expr::binary(
                        BinOp::Add,
                        Expr::int(base),
                        Expr::IdQuery(IdKind::GlobalLinearId),
                    ),
                )]),
            },
            LaunchConfig::single_group(n),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n));
        p
    }

    #[test]
    fn embarrassingly_parallel_kernel_runs() {
        let p = simple_program(8, 100);
        let result = run(&p).unwrap();
        assert_eq!(result.output.len(), 8);
        assert_eq!(result.output[0].as_u64(), 100);
        assert_eq!(result.output[7].as_u64(), 107);
        assert_eq!(result.result_string, "100,101,102,103,104,105,106,107");
    }

    #[test]
    fn result_hash_is_stable_and_discriminating() {
        let a = run(&simple_program(4, 0)).unwrap();
        let b = run(&simple_program(4, 0)).unwrap();
        let c = run(&simple_program(4, 1)).unwrap();
        assert_eq!(a.result_hash, b.result_hash);
        assert_ne!(a.result_hash, c.result_hash);
    }

    #[test]
    fn multiple_groups_execute_independently() {
        let mut p = simple_program(8, 0);
        p.launch = LaunchConfig::new([8, 1, 1], [4, 1, 1]).unwrap();
        let result = run(&p).unwrap();
        assert_eq!(
            result.output.iter().map(|s| s.as_u64()).collect::<Vec<_>>(),
            (0..8).collect::<Vec<u64>>()
        );
    }

    /// Barrier-based intra-group communication: thread l writes its id into
    /// a local array, everyone barriers, then thread l reads its neighbour's
    /// slot.  Deterministic because the write and read are separated by the
    /// barrier.
    fn barrier_program(n: usize) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(vec![
                    Stmt::Decl {
                        name: "A".into(),
                        ty: Type::Scalar(ScalarType::UInt).array_of(n),
                        space: AddressSpace::Local,
                        volatile: false,
                        init: None,
                        init_list: None,
                    },
                    Stmt::assign(
                        Expr::index(Expr::var("A"), Expr::IdQuery(IdKind::LocalLinearId)),
                        Expr::IdQuery(IdKind::LocalLinearId),
                    ),
                    Stmt::Barrier(MemFence::Local),
                    Stmt::assign(
                        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                        Expr::index(
                            Expr::var("A"),
                            Expr::binary(
                                BinOp::Mod,
                                Expr::binary(
                                    BinOp::Add,
                                    Expr::IdQuery(IdKind::LocalLinearId),
                                    Expr::lit(1, ScalarType::UInt),
                                ),
                                Expr::lit(n as i128, ScalarType::UInt),
                            ),
                        ),
                    ),
                ]),
            },
            LaunchConfig::single_group(n),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n));
        p
    }

    #[test]
    fn barrier_communication_is_deterministic_across_schedules() {
        let p = barrier_program(8);
        let forward = run(&p).unwrap();
        let reverse = launch(
            &p,
            &LaunchOptions {
                schedule: Schedule::Reverse,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        let shuffled = launch(
            &p,
            &LaunchOptions {
                schedule: Schedule::Shuffled(42),
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(forward.result_string, "1,2,3,4,5,6,7,0");
        assert_eq!(forward.result_string, reverse.result_string);
        assert_eq!(forward.result_string, shuffled.result_string);
    }

    #[test]
    fn race_detector_flags_unsynchronised_sharing() {
        // Same as barrier_program but without the barrier: a read/write race.
        let mut p = barrier_program(4);
        p.kernel
            .body
            .stmts
            .retain(|s| !matches!(s, Stmt::Barrier(_)));
        let result = launch(
            &p,
            &LaunchOptions {
                detect_races: true,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        assert!(result.race.is_some());
        // And the barrier version is race free.
        let clean = launch(
            &barrier_program(4),
            &LaunchOptions {
                detect_races: true,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        assert!(clean.race.is_none());
    }

    #[test]
    fn barrier_divergence_is_detected() {
        // Thread 0 skips the barrier that everyone else executes.
        let n = 4;
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(vec![
                    Stmt::If {
                        cond: Expr::binary(
                            BinOp::Gt,
                            Expr::IdQuery(IdKind::LocalLinearId),
                            Expr::lit(0, ScalarType::UInt),
                        ),
                        then_block: Block::of(vec![Stmt::Barrier(MemFence::Local)]),
                        else_block: None,
                    },
                    Stmt::assign(
                        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                        Expr::int(1),
                    ),
                ]),
            },
            LaunchConfig::single_group(n),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n));
        let err = run(&p).unwrap_err();
        assert!(matches!(err, RuntimeError::BarrierDivergence { .. }));
    }

    #[test]
    fn atomic_reduction_is_schedule_independent() {
        // ATOMIC REDUCTION idiom from §4.2: every thread atomically adds its
        // contribution, thread 0 accumulates after a barrier.
        let n = 16;
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: vec![
                    Param::new(
                        "out",
                        Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
                    ),
                    Param::new(
                        "r",
                        Type::Scalar(ScalarType::UInt).pointer_to(AddressSpace::Global),
                    ),
                ],
                body: Block::of(vec![
                    Stmt::expr(Expr::builtin(
                        Builtin::AtomicAdd,
                        vec![Expr::var("r"), Expr::lit(3, ScalarType::UInt)],
                    )),
                    Stmt::Barrier(MemFence::Global),
                    Stmt::If {
                        cond: Expr::binary(
                            BinOp::Eq,
                            Expr::IdQuery(IdKind::LocalLinearId),
                            Expr::lit(0, ScalarType::UInt),
                        ),
                        then_block: Block::of(vec![Stmt::assign(
                            Expr::index(Expr::var("out"), Expr::lit(0, ScalarType::UInt)),
                            Expr::index(Expr::var("r"), Expr::lit(0, ScalarType::UInt)),
                        )]),
                        else_block: None,
                    },
                ]),
            },
            LaunchConfig::single_group(n),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 1));
        p.buffers
            .push(BufferSpec::new("r", ScalarType::UInt, 1, BufferInit::Zero));
        let forward = run(&p).unwrap();
        let shuffled = launch(
            &p,
            &LaunchOptions {
                schedule: Schedule::Shuffled(7),
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(forward.result_string, "48");
        assert_eq!(forward.result_string, shuffled.result_string);
    }

    #[test]
    fn step_limit_reports_timeout() {
        let mut p = simple_program(2, 0);
        p.kernel.body.stmts.insert(
            0,
            Stmt::While {
                cond: Expr::int(1),
                body: Block::of(vec![Stmt::expr(Expr::int(0))]),
            },
        );
        let err = launch(
            &p,
            &LaunchOptions {
                step_limit: 10_000,
                ..LaunchOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::StepLimitExceeded { .. }));
    }

    #[test]
    fn barrier_inside_loop_in_kernel_body() {
        // for (i = 0; i < 4; ++i) { A[l] += 1; barrier; if (l == 0) out[0] += A[sibling]; barrier; }
        let n = 4;
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(vec![
                    Stmt::Decl {
                        name: "A".into(),
                        ty: Type::Scalar(ScalarType::UInt).array_of(n),
                        space: AddressSpace::Local,
                        volatile: false,
                        init: None,
                        init_list: None,
                    },
                    Stmt::assign(
                        Expr::index(Expr::var("A"), Expr::IdQuery(IdKind::LocalLinearId)),
                        Expr::lit(0, ScalarType::UInt),
                    ),
                    Stmt::Barrier(MemFence::Local),
                    Stmt::For {
                        init: Some(Box::new(Stmt::decl(
                            "i",
                            Type::Scalar(ScalarType::Int),
                            Some(Expr::int(0)),
                        ))),
                        cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(4))),
                        update: Some(Expr::assign_op(
                            AssignOp::AddAssign,
                            Expr::var("i"),
                            Expr::int(1),
                        )),
                        body: Block::of(vec![
                            Stmt::expr(Expr::assign_op(
                                AssignOp::AddAssign,
                                Expr::index(Expr::var("A"), Expr::IdQuery(IdKind::LocalLinearId)),
                                Expr::lit(1, ScalarType::UInt),
                            )),
                            Stmt::Barrier(MemFence::Local),
                            Stmt::If {
                                cond: Expr::binary(
                                    BinOp::Eq,
                                    Expr::IdQuery(IdKind::LocalLinearId),
                                    Expr::lit(0, ScalarType::UInt),
                                ),
                                then_block: Block::of(vec![Stmt::expr(Expr::assign_op(
                                    AssignOp::AddAssign,
                                    Expr::index(Expr::var("out"), Expr::lit(0, ScalarType::UInt)),
                                    Expr::index(Expr::var("A"), Expr::lit(3, ScalarType::UInt)),
                                ))]),
                                else_block: None,
                            },
                            Stmt::Barrier(MemFence::Local),
                        ]),
                    },
                ]),
            },
            LaunchConfig::single_group(n),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n));
        let result = run(&p).unwrap();
        // Thread 3's counter is 1, 2, 3, 4 at the four barriers: 1+2+3+4 = 10.
        assert_eq!(result.output[0].as_u64(), 10);
        // Determinism across schedules.
        let reverse = launch(
            &p,
            &LaunchOptions {
                schedule: Schedule::Reverse,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(result.result_string, reverse.result_string);
    }

    #[test]
    fn dead_array_override_inverts_emi_guards() {
        let n = 4;
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(8),
                body: Block::of(vec![
                    Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
                    Stmt::Emi(clc::EmiBlock {
                        index: 0,
                        guard: (5, 2),
                        body: Block::of(vec![Stmt::assign(Expr::var("x"), Expr::int(99))]),
                    }),
                    Stmt::assign(
                        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                        Expr::var("x"),
                    ),
                ]),
            },
            LaunchConfig::single_group(n),
        );
        p.dead_len = 8;
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, n));
        p.buffers.push(BufferSpec::new(
            "dead",
            ScalarType::Int,
            8,
            BufferInit::Iota,
        ));
        let normal = run(&p).unwrap();
        assert_eq!(normal.output[0].as_u64(), 1);
        // Inverting the dead array (ReverseIota) makes the guard true.
        let mut opts = LaunchOptions::default();
        Arc::make_mut(&mut opts.buffer_overrides)
            .insert("dead".into(), BufferInit::ReverseIota.materialize(8));
        let inverted = launch(&p, &opts).unwrap();
        assert_eq!(inverted.output[0].as_u64(), 99);
    }
}
