//! The bytecode execution tier: a stack machine over the instruction streams
//! produced by [`crate::compile`].
//!
//! The VM shares everything observable with the tree-walking evaluator — the
//! [`Memory`] object store, the race detector, the cooperative work-group
//! scheduler ([`crate::exec::drive_group`]) and the [`RuntimeError`] surface.
//! Each work-item holds a stack of call frames; a frame carries the resolved
//! variable slots of its function, the objects it owns (freed on scope exit,
//! mirroring the tree walker's `Env`), and a program counter.  A kernel-body
//! `barrier()` suspends the work-item at its instruction address, which
//! serves as the barrier site for divergence detection; execution resumes at
//! the next instruction once the whole group arrives.
//!
//! Side-effect order — loads, stores, race-detector records, allocation and
//! freeing of objects — matches the tree walker statement by statement, which
//! is what makes the two tiers agree bit-for-bit on results, errors and race
//! verdicts (enforced by the `tier_equivalence` integration test).

use crate::compile::{BranchKind, CompiledProgram, Instr, LeafTy, KERNEL_FUNC};
use crate::error::RuntimeError;
use crate::eval::{
    cast_value, id_query_value, lift_builtin, read_value, record_shared, scalar_binop,
    scalar_builtin, swizzle_value, unary_op, value_binop, vector_lane_binop, write_value,
    AccessCtx, Place, ThreadIds, MAX_CALL_DEPTH,
};
use crate::exec::{
    alloc_param_object, drive_group, group_linear, thread_ids, CoopItem, LaunchOptions, Status,
};
use crate::memory::Memory;
use crate::race::{AccessKind, RaceDetector};
use crate::value::{Cell, Lanes, ObjId, PointerValue, Scalar, Value};
use clc::expr::{BinOp, Builtin};
use clc::types::{AddressSpace, ScalarType, Type};
use clc::Program;
use std::collections::HashMap;

/// One call frame: the executing function, its program counter, resolved
/// variable slots, and the objects owned by its open scopes.
struct Frame {
    func: usize,
    pc: usize,
    /// Slot-indexed variable bindings (`None` = not (yet) bound).
    slots: Vec<Option<ObjId>>,
    /// Scalar register bank for escape-analysed private scalars (`None` =
    /// uninitialised, the counterpart of `Cell::Uninit`).  Register values
    /// are stored pre-converted to the register's declared type.
    regs: Vec<Option<u64>>,
    /// Objects owned by this frame, in allocation order; `scope_bases` marks
    /// where each open scope's ownership begins.
    owned: Vec<ObjId>,
    scope_bases: Vec<usize>,
}

/// The execution state of one work-item on the bytecode tier.
pub(crate) struct VmItem {
    ids: ThreadIds,
    frames: Vec<Frame>,
    /// Recycled call frames (their vectors keep capacity across calls).
    frame_pool: Vec<Frame>,
    values: Vec<Value>,
    places: Vec<Place>,
    status: Status,
    steps: u64,
    soft_barriers: u64,
}

impl VmItem {
    fn pop_value(&mut self) -> Value {
        self.values.pop().expect("value stack underflow")
    }

    fn pop_place(&mut self) -> Place {
        self.places.pop().expect("place stack underflow")
    }
}

impl CoopItem for VmItem {
    fn status(&self) -> &Status {
        &self.status
    }

    fn release_barrier(&mut self) {
        self.ids.interval += 1;
        self.status = Status::Ready;
    }
}

/// Launch-wide mutable state shared by the work-items of the current group.
struct World<'a> {
    compiled: &'a CompiledProgram,
    program: &'a Program,
    step_limit: u64,
    memory: &'a mut Memory,
    races: &'a mut Option<RaceDetector>,
    group_locals: &'a mut HashMap<String, ObjId>,
}

impl World<'_> {
    fn access(&mut self, ids: ThreadIds) -> AccessCtx<'_> {
        AccessCtx {
            memory: self.memory,
            races: self.races.as_mut(),
            ids,
            structs: &self.program.structs,
        }
    }
}

/// Executes one work-group on the bytecode tier (the VM counterpart of
/// `exec::run_group`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_group(
    program: &Program,
    compiled: &CompiledProgram,
    options: &LaunchOptions,
    memory: &mut Memory,
    races: &mut Option<RaceDetector>,
    buffer_objects: &HashMap<String, (ObjId, ScalarType, usize)>,
    permutations_obj: Option<ObjId>,
    group: [usize; 3],
    total_steps: &mut u64,
    soft_barriers: &mut u64,
    barrier_intervals: &mut u64,
) -> Result<(), RuntimeError> {
    let cfg = &program.launch;
    let local = cfg.local;
    let mut group_locals: HashMap<String, ObjId> = HashMap::new();
    let kernel = &compiled.funcs[KERNEL_FUNC];

    // Create the work-items of this group.  Slot 0 is the permutation
    // table, followed by the kernel parameters, matching the environment
    // the tree walker builds.
    let mut items: Vec<VmItem> = Vec::with_capacity(cfg.group_size());
    for lz in 0..local[2] {
        for ly in 0..local[1] {
            for lx in 0..local[0] {
                let ids = thread_ids(cfg, group, [lx, ly, lz]);
                let mut slots = vec![None; kernel.n_slots];
                let mut owned = Vec::new();
                if let Some(perm) = permutations_obj {
                    slots[0] = Some(perm);
                }
                for (i, param) in program.kernel.params.iter().enumerate() {
                    let obj = alloc_param_object(memory, buffer_objects, options, param)?;
                    slots[1 + i] = Some(obj);
                    owned.push(obj);
                }
                items.push(VmItem {
                    ids,
                    frames: vec![Frame {
                        func: KERNEL_FUNC,
                        pc: 0,
                        slots,
                        regs: vec![None; kernel.n_regs],
                        owned,
                        scope_bases: Vec::new(),
                    }],
                    frame_pool: Vec::new(),
                    values: Vec::new(),
                    places: Vec::new(),
                    status: Status::Ready,
                    steps: 0,
                    soft_barriers: 0,
                });
            }
        }
    }

    let mut world = World {
        compiled,
        program,
        step_limit: options.step_limit,
        memory,
        races,
        group_locals: &mut group_locals,
    };
    let released = drive_group(
        &mut items,
        options.schedule,
        group_linear(group, cfg.groups()),
        |item| run_item(&mut world, item),
    )?;
    *barrier_intervals = (*barrier_intervals).max(released);

    for item in &mut items {
        *total_steps += item.steps;
        *soft_barriers += item.soft_barriers;
        // Free the kernel frame's ownership (parameters plus top-level
        // declarations) in allocation order, as the tree walker's final
        // `pop_to_depth(0)` does.
        if let Some(frame) = item.frames.last_mut() {
            for obj in frame.owned.drain(..) {
                memory.free(obj);
            }
        }
    }
    // The group is over: no later access can race with this group's local
    // objects, so drop their logs with an O(1) era bump per shadow.
    if let Some(r) = races.as_mut() {
        let locals: Vec<ObjId> = group_locals.values().copied().collect();
        r.clear_group_local(&locals);
    }
    Ok(())
}

/// Runs a single work-item until it blocks at a barrier, finishes or fails.
fn run_item(world: &mut World<'_>, item: &mut VmItem) {
    if let Err(e) = run_frames(world, item) {
        item.status = Status::Failed(e);
    }
}

/// The interpreter loop: executes the current frame's instructions with the
/// program counter cached in a local, re-entering the outer loop only on
/// frame transitions (calls and returns).  Returns when the work-item
/// yields (barrier) or finishes; errors mark the work-item failed.
fn run_frames(world: &mut World<'_>, item: &mut VmItem) -> Result<(), RuntimeError> {
    let compiled = world.compiled;
    'frames: loop {
        let frame_idx = item.frames.len() - 1;
        let func = item.frames[frame_idx].func;
        let code: &[Instr] = &compiled.funcs[func].code;
        let mut pc = item.frames[frame_idx].pc;
        loop {
            item.steps += 1;
            if item.steps > world.step_limit {
                return Err(RuntimeError::StepLimitExceeded {
                    limit: world.step_limit,
                });
            }
            let instr = &code[pc];
            pc += 1;

            match instr {
                Instr::Const(s) => item.values.push(Value::Scalar(*s)),
                Instr::Id(kind) => item.values.push(Value::Scalar(Scalar::from_i128(
                    id_query_value(&item.ids, *kind) as i128,
                    ScalarType::ULong,
                ))),
                Instr::MakeVector { elem, width, parts } => {
                    let start = item.values.len() - *parts as usize;
                    let mut lanes = Lanes::with_capacity(width.lanes());
                    for part in item.values.drain(start..) {
                        match part {
                            Value::Scalar(s) => lanes.push(s.convert(*elem).bits),
                            Value::Vector(_, sub) => lanes.extend(sub.iter().copied()),
                            other => {
                                return Err(RuntimeError::TypeMismatch {
                                    detail: format!(
                                        "vector literal component is a {}",
                                        other.kind()
                                    ),
                                })
                            }
                        }
                    }
                    if lanes.len() == 1 {
                        // Broadcast form (int4)(x).
                        let v = lanes[0];
                        lanes = Lanes::splat(v, width.lanes());
                    }
                    if lanes.len() != width.lanes() {
                        return Err(RuntimeError::TypeMismatch {
                            detail: format!(
                                "vector literal provides {} lanes, expected {}",
                                lanes.len(),
                                width.lanes()
                            ),
                        });
                    }
                    item.values.push(Value::Vector(*elem, lanes));
                }
                Instr::LoadSlot(slot) => {
                    let place = slot_place(world, item, frame_idx, func, *slot)?;
                    let value = world.access(item.ids).load(&place)?;
                    item.values.push(value);
                }
                Instr::LoadScalarSlot {
                    slot,
                    offset,
                    ty,
                    shared,
                } => {
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let offset = *offset as usize;
                    if *shared {
                        record_shared(
                            world.races.as_mut(),
                            &item.ids,
                            obj,
                            offset,
                            1,
                            AccessKind::Read,
                        );
                    }
                    let s = world.memory.read_scalar(obj, offset, *ty)?;
                    item.values.push(Value::Scalar(s));
                }
                Instr::StoreScalarSlot {
                    slot,
                    offset,
                    ty,
                    op,
                    shared,
                    push,
                } => {
                    let rhs = item.pop_value();
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let offset = *offset as usize;
                    let leaf = LeafTy::Scalar(*ty);
                    let new_value = match op {
                        None => rhs,
                        Some(binop) => {
                            let current = load_leaf(world, item.ids, obj, offset, &leaf, *shared)?;
                            vm_value_binop(*binop, current, rhs)?
                        }
                    };
                    store_leaf(world, item.ids, obj, offset, &leaf, *shared, &new_value)?;
                    if *push {
                        item.values.push(new_value);
                    }
                }
                Instr::LoadVectorSlot {
                    slot,
                    offset,
                    ty,
                    width,
                    shared,
                } => {
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let value = load_leaf(
                        world,
                        item.ids,
                        obj,
                        *offset as usize,
                        &LeafTy::Vector(*ty, *width),
                        *shared,
                    )?;
                    item.values.push(value);
                }
                Instr::StoreVectorSlot {
                    slot,
                    offset,
                    ty,
                    width,
                    op,
                    shared,
                    push,
                } => {
                    let rhs = item.pop_value();
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let offset = *offset as usize;
                    let leaf = LeafTy::Vector(*ty, *width);
                    let new_value = match op {
                        None => rhs,
                        Some(binop) => {
                            let current = load_leaf(world, item.ids, obj, offset, &leaf, *shared)?;
                            vm_value_binop(*binop, current, rhs)?
                        }
                    };
                    store_leaf(world, item.ids, obj, offset, &leaf, *shared, &new_value)?;
                    if *push {
                        item.values.push(new_value);
                    }
                }
                Instr::ConstVector(payload) => {
                    let (elem, lanes) = &**payload;
                    item.values.push(Value::Vector(*elem, lanes.clone()));
                }
                Instr::ArrowSlotLoad {
                    slot,
                    ptr_shared,
                    expect,
                    add,
                    leaf,
                    field,
                } => {
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    match resolve_arrow(world, item.ids, obj, *ptr_shared, *expect, *add, field)? {
                        ArrowTarget::Leaf(tobj, toffset, tspace) => {
                            let value = load_leaf(
                                world,
                                item.ids,
                                tobj,
                                toffset,
                                leaf,
                                tspace.is_shared(),
                            )?;
                            item.values.push(value);
                        }
                        ArrowTarget::Place(place) => {
                            let v = world.access(item.ids).load(&place)?;
                            item.values.push(v);
                        }
                    }
                }
                Instr::ArrowSlotStore {
                    slot,
                    ptr_shared,
                    expect,
                    add,
                    leaf,
                    field,
                    op,
                    push,
                } => {
                    let rhs = item.pop_value();
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    match resolve_arrow(world, item.ids, obj, *ptr_shared, *expect, *add, field)? {
                        ArrowTarget::Leaf(tobj, toffset, tspace) => {
                            let shared = tspace.is_shared();
                            let new_value = match op {
                                None => rhs,
                                Some(binop) => {
                                    let current =
                                        load_leaf(world, item.ids, tobj, toffset, leaf, shared)?;
                                    vm_value_binop(*binop, current, rhs)?
                                }
                            };
                            store_leaf(world, item.ids, tobj, toffset, leaf, shared, &new_value)?;
                            if *push {
                                item.values.push(new_value);
                            }
                        }
                        ArrowTarget::Place(place) => {
                            let new_value = match op {
                                None => rhs,
                                Some(binop) => {
                                    let current = world.access(item.ids).load(&place)?;
                                    vm_value_binop(*binop, current, rhs)?
                                }
                            };
                            if *push {
                                world.access(item.ids).store(&place, new_value.clone())?;
                                item.values.push(new_value);
                            } else {
                                world.access(item.ids).store(&place, new_value)?;
                            }
                        }
                    }
                }
                Instr::IndexSlotLoad { slot } => {
                    let idx = index_operand(item)?;
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let memory: &Memory = &*world.memory;
                    let (tobj, offset, tspace, elem, cells) =
                        resolve_slot_index(memory, &world.program.structs, obj, idx)?;
                    if tspace.is_shared() {
                        record_shared(
                            world.races.as_mut(),
                            &item.ids,
                            tobj,
                            offset,
                            cells,
                            AccessKind::Read,
                        );
                    }
                    let value =
                        read_value(memory, &world.program.structs, tobj, offset, elem, tspace)?;
                    item.values.push(value);
                }
                Instr::IndexSlotStore { slot, op, push } => {
                    let idx = index_operand(item)?;
                    let rhs = item.pop_value();
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    // Resolve with a shared borrow, keeping the element type owned
                    // only when it is not a plain scalar, so the store below can
                    // take the memory mutably.
                    let (tobj, offset, tspace, elem, cells) = {
                        let (tobj, offset, tspace, elem, cells) =
                            resolve_slot_index(&*world.memory, &world.program.structs, obj, idx)?;
                        let elem = match elem {
                            Type::Scalar(s) => ResolvedTy::Scalar(*s),
                            other => ResolvedTy::Owned(other.clone()),
                        };
                        (tobj, offset, tspace, elem, cells)
                    };
                    let shared = tspace.is_shared();
                    let mut new_value = match op {
                        None => rhs,
                        Some(binop) => {
                            if shared {
                                record_shared(
                                    world.races.as_mut(),
                                    &item.ids,
                                    tobj,
                                    offset,
                                    cells,
                                    AccessKind::Read,
                                );
                            }
                            let current = match &elem {
                                ResolvedTy::Scalar(s) => {
                                    Value::Scalar(world.memory.read_scalar(tobj, offset, *s)?)
                                }
                                ResolvedTy::Owned(ty) => read_value(
                                    &*world.memory,
                                    &world.program.structs,
                                    tobj,
                                    offset,
                                    ty,
                                    tspace,
                                )?,
                            };
                            vm_value_binop(*binop, current, rhs)?
                        }
                    };
                    if shared {
                        record_shared(
                            world.races.as_mut(),
                            &item.ids,
                            tobj,
                            offset,
                            cells,
                            AccessKind::Write,
                        );
                    }
                    match &elem {
                        ResolvedTy::Scalar(s) => match &new_value {
                            Value::Scalar(v) => world.memory.write_scalar(tobj, offset, *v, *s)?,
                            Value::Pointer(_) => {
                                world
                                    .memory
                                    .write_scalar(tobj, offset, Scalar::zero(*s), *s)?
                            }
                            other => {
                                return Err(RuntimeError::TypeMismatch {
                                    detail: format!(
                                        "cannot store {} into {:?}",
                                        other.kind(),
                                        Type::Scalar(*s)
                                    ),
                                })
                            }
                        },
                        ResolvedTy::Owned(ty) => {
                            // Move the value into the store when the result
                            // is discarded; clone only when it must also be
                            // pushed.
                            let stored = if *push {
                                new_value.clone()
                            } else {
                                std::mem::replace(&mut new_value, Value::int(0))
                            };
                            write_value(
                                world.memory,
                                &world.program.structs,
                                tobj,
                                offset,
                                ty,
                                stored,
                            )?;
                        }
                    }
                    if *push {
                        item.values.push(new_value);
                    }
                }
                Instr::DeclReg { reg } => {
                    item.frames[frame_idx].regs[*reg as usize] = None;
                }
                Instr::DeclRegInit { reg, bits } => {
                    item.frames[frame_idx].regs[*reg as usize] = Some(*bits);
                }
                Instr::LoadReg { reg, ty } => {
                    let s = read_reg(item, frame_idx, func, compiled, *reg, *ty)?;
                    item.values.push(Value::Scalar(s));
                }
                Instr::StoreReg { reg, ty, op, push } => {
                    let rhs = item.pop_value();
                    let new_value = match op {
                        None => rhs,
                        Some(binop) => {
                            let current = Value::Scalar(read_reg(
                                item, frame_idx, func, compiled, *reg, *ty,
                            )?);
                            vm_value_binop(*binop, current, rhs)?
                        }
                    };
                    write_reg(item, frame_idx, *reg, *ty, &new_value)?;
                    if *push {
                        item.values.push(new_value);
                    }
                }
                Instr::StoreRegImm {
                    reg,
                    ty,
                    op,
                    imm,
                    push,
                } => {
                    let new_value = match op {
                        None => Value::Scalar(*imm),
                        Some(binop) => {
                            let current = Value::Scalar(read_reg(
                                item, frame_idx, func, compiled, *reg, *ty,
                            )?);
                            vm_value_binop(*binop, current, Value::Scalar(*imm))?
                        }
                    };
                    write_reg(item, frame_idx, *reg, *ty, &new_value)?;
                    if *push {
                        item.values.push(new_value);
                    }
                }
                Instr::RegBinopImm { reg, ty, op, imm } => {
                    let l = read_reg(item, frame_idx, func, compiled, *reg, *ty)?;
                    item.values.push(Value::Scalar(scalar_binop(*op, l, *imm)?));
                }
                Instr::Unary(op) => {
                    let v = item.pop_value();
                    item.values.push(unary_op(*op, v)?);
                }
                Instr::Binary(op) => {
                    let rhs = item.pop_value();
                    let lhs = item.pop_value();
                    item.values.push(vm_value_binop(*op, lhs, rhs)?);
                }
                Instr::BinaryImm { op, imm } => {
                    let lhs = item.pop_value();
                    let result = match lhs {
                        Value::Scalar(l) => Value::Scalar(scalar_binop(*op, l, *imm)?),
                        other => vm_value_binop(*op, other, Value::Scalar(*imm))?,
                    };
                    item.values.push(result);
                }
                Instr::ShortCircuit { is_and, end } => {
                    let l = item.pop_value();
                    let lt = l.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                        detail: "logical operand is not scalar".into(),
                    })?;
                    if *is_and && !lt {
                        item.values.push(Value::int(0));
                        pc = *end as usize;
                    } else if !*is_and && lt {
                        item.values.push(Value::int(1));
                        pc = *end as usize;
                    }
                }
                Instr::TruthToInt => {
                    let r = item.pop_value();
                    let rt = r.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                        detail: "logical operand is not scalar".into(),
                    })?;
                    item.values.push(Value::int(i64::from(rt)));
                }
                Instr::Branch { target, kind } => {
                    let c = item.pop_value();
                    let taken = match kind {
                        BranchKind::IfCond => {
                            c.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                                detail: "if condition is not scalar".into(),
                            })?
                        }
                        BranchKind::Ternary => {
                            c.is_true().ok_or_else(|| RuntimeError::TypeMismatch {
                                detail: "conditional guard is not scalar".into(),
                            })?
                        }
                        BranchKind::Permissive => c.is_true().unwrap_or(false),
                    };
                    if !taken {
                        pc = *target as usize;
                    }
                }
                Instr::Jump(target) => pc = *target as usize,
                Instr::Pop => {
                    item.pop_value();
                }
                Instr::Cast(ty) => {
                    let v = item.pop_value();
                    item.values.push(cast_value(ty, v, &world.program.structs)?);
                }
                Instr::Swizzle(lanes) => {
                    let v = item.pop_value();
                    item.values.push(swizzle_value(v, lanes)?);
                }
                Instr::AddrOf => {
                    let place = item.pop_place();
                    item.values.push(Value::Pointer(PointerValue {
                        obj: place.obj,
                        offset: place.offset,
                        pointee: place.ty,
                        space: place.space,
                    }));
                }
                Instr::PlaceSlot(slot) => {
                    let place = slot_place(world, item, frame_idx, func, *slot)?;
                    item.places.push(place);
                }
                Instr::PlaceGroupLocal(name) => {
                    let obj = world
                        .group_locals
                        .get(&**name)
                        .copied()
                        .ok_or_else(|| RuntimeError::UnknownVariable(name.to_string()))?;
                    let object = world.memory.object(obj)?;
                    item.places.push(Place {
                        obj,
                        offset: 0,
                        ty: object.ty.clone(),
                        space: object.space,
                    });
                }
                Instr::PlaceDeref => {
                    let v = item.pop_value();
                    match v {
                        Value::Pointer(p) => item.places.push(Place {
                            obj: p.obj,
                            offset: p.offset,
                            ty: p.pointee,
                            space: p.space,
                        }),
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                detail: format!("expected pointer, found {}", other.kind()),
                            })
                        }
                    }
                }
                Instr::ResolveIndexable => {
                    let place = item.places.last_mut().expect("place stack underflow");
                    match &place.ty {
                        Type::Array(..) => {}
                        Type::Pointer(..) => {
                            let ptr = match world.memory.read_cell(place.obj, place.offset)? {
                                Cell::Ptr(p) => p,
                                _ => {
                                    return Err(RuntimeError::UninitializedRead {
                                        object: world.memory.object(place.obj)?.name.clone(),
                                    })
                                }
                            };
                            *place = Place {
                                obj: ptr.obj,
                                offset: ptr.offset,
                                ty: ptr.pointee,
                                space: ptr.space,
                            };
                        }
                        _ => {}
                    }
                }
                Instr::IndexPlace => {
                    let idx_value = item.pop_value();
                    let idx = idx_value
                        .as_scalar()
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            detail: "index is not scalar".into(),
                        })?
                        .as_i64();
                    let place = item.places.last_mut().expect("place stack underflow");
                    let (elem_ty, stride_base) = match &place.ty {
                        Type::Array(elem, len) => {
                            if idx < 0 || idx as usize >= *len {
                                return Err(RuntimeError::InvalidAccess {
                                    detail: format!(
                                        "array index {idx} out of bounds for length {len}"
                                    ),
                                });
                            }
                            ((**elem).clone(), place.offset)
                        }
                        other => (other.clone(), place.offset),
                    };
                    let stride = elem_ty.cell_count(&world.program.structs);
                    if idx < 0 {
                        return Err(RuntimeError::InvalidAccess {
                            detail: format!("negative index {idx}"),
                        });
                    }
                    place.offset = stride_base + idx as usize * stride;
                    place.ty = elem_ty;
                }
                Instr::FieldPlace(field) => {
                    let place = item.places.last_mut().expect("place stack underflow");
                    let field_offset = place
                        .ty
                        .field_offset(field, &world.program.structs)
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            detail: format!("no field `{field}` on {:?}", place.ty),
                        })?;
                    let field_ty = match &place.ty {
                        Type::Struct(id) => world
                            .program
                            .struct_def(*id)
                            .field(field)
                            .map(|f| f.ty.clone())
                            .ok_or_else(|| RuntimeError::TypeMismatch {
                                detail: format!("no field `{field}`"),
                            })?,
                        _ => {
                            return Err(RuntimeError::TypeMismatch {
                                detail: "field access on non-struct".into(),
                            })
                        }
                    };
                    place.offset += field_offset;
                    place.ty = field_ty;
                }
                Instr::LanePlace(lane) => {
                    let place = item.places.last_mut().expect("place stack underflow");
                    match &place.ty {
                        Type::Vector(elem, width) => {
                            let lane = *lane as usize;
                            if lane >= width.lanes() {
                                return Err(RuntimeError::InvalidAccess {
                                    detail: format!("swizzle lane {lane} out of range"),
                                });
                            }
                            place.offset += lane;
                            place.ty = Type::Scalar(*elem);
                        }
                        _ => {
                            return Err(RuntimeError::TypeMismatch {
                                detail: "swizzle store on non-vector".into(),
                            })
                        }
                    }
                }
                Instr::LoadPlace => {
                    let place = item.pop_place();
                    let value = world.access(item.ids).load(&place)?;
                    item.values.push(value);
                }
                Instr::Store { op, push } => {
                    let place = item.pop_place();
                    let rhs = item.pop_value();
                    let new_value = match op {
                        None => rhs,
                        Some(binop) => {
                            let current = world.access(item.ids).load(&place)?;
                            vm_value_binop(*binop, current, rhs)?
                        }
                    };
                    if *push {
                        world.access(item.ids).store(&place, new_value.clone())?;
                        item.values.push(new_value);
                    } else {
                        world.access(item.ids).store(&place, new_value)?;
                    }
                }
                Instr::EnterScope => {
                    let frame = &mut item.frames[frame_idx];
                    frame.scope_bases.push(frame.owned.len());
                }
                Instr::ExitScope => {
                    let frame = &mut item.frames[frame_idx];
                    let base = frame.scope_bases.pop().expect("scope stack underflow");
                    for obj in frame.owned.drain(base..) {
                        world.memory.free(obj);
                    }
                }
                Instr::DeclPrivate { slot, name, ty } => {
                    let obj = world.memory.alloc(
                        name.to_string(),
                        (**ty).clone(),
                        AddressSpace::Private,
                        &world.program.structs,
                    );
                    let frame = &mut item.frames[frame_idx];
                    frame.slots[*slot as usize] = Some(obj);
                    frame.owned.push(obj);
                }
                Instr::DeclLocal { slot, name, ty } => {
                    // One allocation per work-group, shared by its work-items (and
                    // *not* owned by the declaring scope).
                    let obj = if let Some(existing) = world.group_locals.get(&**name) {
                        *existing
                    } else {
                        let obj = world.memory.alloc_zeroed(
                            name.to_string(),
                            (**ty).clone(),
                            AddressSpace::Local,
                            &world.program.structs,
                        );
                        if let Some(races) = world.races.as_mut() {
                            races.name_object(obj, name);
                        }
                        world.group_locals.insert(name.to_string(), obj);
                        obj
                    };
                    item.frames[frame_idx].slots[*slot as usize] = Some(obj);
                }
                Instr::InitSlot { slot, ty } => {
                    let v = item.pop_value();
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let place = Place {
                        obj,
                        offset: 0,
                        ty: (**ty).clone(),
                        space: AddressSpace::Private,
                    };
                    world.access(item.ids).store(&place, v)?;
                }
                Instr::ZeroFill { slot, cells } => {
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    world
                        .memory
                        .write_cells(obj, 0, &vec![Cell::Bits(0); *cells as usize])?;
                }
                Instr::InitAt { slot, offset, ty } => {
                    let v = item.pop_value();
                    let obj = bound_slot(item, frame_idx, func, compiled, *slot)?;
                    let place = Place {
                        obj,
                        offset: *offset as usize,
                        ty: (**ty).clone(),
                        space: AddressSpace::Private,
                    };
                    world.access(item.ids).store(&place, v)?;
                }
                Instr::Barrier => {
                    item.frames[frame_idx].pc = pc;
                    item.status = Status::AtBarrier {
                        site: (func, pc - 1),
                    };
                    return Ok(());
                }
                Instr::SoftBarrier => item.soft_barriers += 1,
                Instr::CheckDepth => {
                    if item.frames.len() > MAX_CALL_DEPTH {
                        return Err(RuntimeError::CallDepthExceeded);
                    }
                }
                Instr::Call { func, argc } => {
                    let target = &compiled.funcs[*func as usize];
                    let start = item.values.len() - *argc as usize;
                    let mut frame = item.frame_pool.pop().unwrap_or_else(|| Frame {
                        func: 0,
                        pc: 0,
                        slots: Vec::new(),
                        regs: Vec::new(),
                        owned: Vec::new(),
                        scope_bases: Vec::new(),
                    });
                    frame.func = *func as usize;
                    frame.pc = 0;
                    frame.slots.clear();
                    frame.slots.resize(target.n_slots, None);
                    frame.regs.clear();
                    frame.regs.resize(target.n_regs, None);
                    frame.owned.clear();
                    frame.scope_bases.clear();
                    // Parameters behave like initialised local variables,
                    // allocated and stored one at a time as in
                    // `call_function`.  The drain only borrows the value
                    // stack, so the stores below can take the world.
                    let mut args = item.values.drain(start..);
                    for (i, param) in target.params.iter().enumerate() {
                        let value = args.next().expect("argument count checked at compile time");
                        let obj = world.memory.alloc(
                            param.name.clone(),
                            param.ty.clone(),
                            AddressSpace::Private,
                            &world.program.structs,
                        );
                        frame.slots[i] = Some(obj);
                        frame.owned.push(obj);
                        let place = Place {
                            obj,
                            offset: 0,
                            ty: param.ty.clone(),
                            space: AddressSpace::Private,
                        };
                        let mut access = AccessCtx {
                            memory: world.memory,
                            races: world.races.as_mut(),
                            ids: item.ids,
                            structs: &world.program.structs,
                        };
                        access.store(&place, value)?;
                    }
                    drop(args);
                    item.frames[frame_idx].pc = pc;
                    item.frames.push(frame);
                    continue 'frames;
                }
                Instr::CallBuiltin { func, argc } => {
                    let n = *argc as usize;
                    let start = item.values.len() - n;
                    // Allocation-free fast path for all-scalar arguments (the
                    // common case for the safe-math wrappers); mirrors
                    // `lift_builtin`'s scalar branch, which `scalar_builtin` also
                    // implements.
                    let all_scalar = n <= 3
                        && item.values[start..]
                            .iter()
                            .all(|v| matches!(v, Value::Scalar(_)));
                    if all_scalar {
                        let mut args = [Scalar::zero(ScalarType::Int); 3];
                        for i in (0..n).rev() {
                            args[i] = match item.values.pop() {
                                Some(Value::Scalar(s)) => s,
                                _ => unreachable!("checked scalar"),
                            };
                        }
                        item.values
                            .push(Value::Scalar(scalar_builtin(*func, &args[..n])?));
                    } else {
                        let args: Vec<Value> = item.values.drain(start..).collect();
                        item.values.push(lift_builtin(*func, &args)?);
                    }
                }
                Instr::AtomicBegin => {
                    let v = item.pop_value();
                    let ptr = match v {
                        Value::Pointer(p) => p,
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                detail: format!("expected pointer, found {}", other.kind()),
                            })
                        }
                    };
                    let elem = match &ptr.pointee {
                        Type::Scalar(s) if s.bits() == 32 => *s,
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                detail: format!("atomic on non-32-bit location {other:?}"),
                            })
                        }
                    };
                    let place = Place {
                        obj: ptr.obj,
                        offset: ptr.offset,
                        ty: Type::Scalar(elem),
                        space: ptr.space,
                    };
                    world.access(item.ids).record(&place, 1, AccessKind::Atomic);
                    let old = world.memory.read_scalar(place.obj, place.offset, elem)?;
                    item.places.push(place);
                    item.values.push(Value::Scalar(old));
                }
                Instr::AtomicEnd { func, argc } => {
                    let n_ops = *argc as usize - 1;
                    let start = item.values.len() - n_ops;
                    let raw_ops: Vec<Value> = item.values.drain(start..).collect();
                    let mut operands = Vec::with_capacity(n_ops);
                    for v in raw_ops {
                        operands.push(v.as_scalar().ok_or_else(|| RuntimeError::TypeMismatch {
                            detail: "atomic operand is not scalar".into(),
                        })?);
                    }
                    let old = item
                        .pop_value()
                        .as_scalar()
                        .expect("atomic old value is scalar");
                    let place = item.pop_place();
                    let elem = match place.ty {
                        Type::Scalar(s) => s,
                        _ => unreachable!("atomic place has scalar type"),
                    };
                    let new = match func {
                        Builtin::AtomicInc => {
                            scalar_binop(BinOp::Add, old, Scalar::from_i128(1, elem))?
                        }
                        Builtin::AtomicDec => {
                            scalar_binop(BinOp::Sub, old, Scalar::from_i128(1, elem))?
                        }
                        Builtin::AtomicAdd => scalar_binop(BinOp::Add, old, operands[0])?,
                        Builtin::AtomicSub => scalar_binop(BinOp::Sub, old, operands[0])?,
                        Builtin::AtomicAnd => scalar_binop(BinOp::BitAnd, old, operands[0])?,
                        Builtin::AtomicOr => scalar_binop(BinOp::BitOr, old, operands[0])?,
                        Builtin::AtomicXor => scalar_binop(BinOp::BitXor, old, operands[0])?,
                        Builtin::AtomicMin => scalar_builtin(Builtin::Min, &[old, operands[0]])?,
                        Builtin::AtomicMax => scalar_builtin(Builtin::Max, &[old, operands[0]])?,
                        Builtin::AtomicXchg => operands[0],
                        Builtin::AtomicCmpxchg => {
                            if old.convert(elem).bits == operands[0].convert(elem).bits {
                                operands[1]
                            } else {
                                old
                            }
                        }
                        _ => unreachable!("non-atomic builtin in AtomicEnd"),
                    };
                    world
                        .memory
                        .write_scalar(place.obj, place.offset, new, elem)?;
                    item.values.push(Value::Scalar(old.convert(elem)));
                }
                Instr::Return { has_value } => {
                    let result = if *has_value {
                        item.pop_value()
                    } else {
                        Value::int(0)
                    };
                    let mut frame = item.frames.pop().expect("return without frame");
                    // Free open scopes innermost first, then the parameters, as the
                    // tree walker's unwinding `pop_scope` chain does.
                    while let Some(base) = frame.scope_bases.pop() {
                        for obj in frame.owned.drain(base..) {
                            world.memory.free(obj);
                        }
                    }
                    for obj in frame.owned.drain(..) {
                        world.memory.free(obj);
                    }
                    item.frame_pool.push(frame);
                    item.values.push(result);
                    continue 'frames;
                }
                Instr::ReturnKernel { has_value } => {
                    if *has_value {
                        item.pop_value();
                    }
                    // Free scopes above the kernel frame's base; the base ownership
                    // (parameters and top-level declarations) is released when the
                    // group finishes.
                    let frame = &mut item.frames[frame_idx];
                    while let Some(base) = frame.scope_bases.pop() {
                        let freed: Vec<ObjId> = frame.owned.drain(base..).collect();
                        for obj in freed {
                            world.memory.free(obj);
                        }
                    }
                    item.status = Status::Done;
                    return Ok(());
                }
                Instr::Fail(e) => return Err((**e).clone()),
            }
        }
    }
}

/// The VM's binary-operator application: identical results to
/// [`value_binop`], but vector operands are rewritten in place instead of
/// allocating fresh lane vectors (the tree walker cannot do this because it
/// holds its operands behind shared AST references).
fn vm_value_binop(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, RuntimeError> {
    match (lhs, rhs) {
        (Value::Vector(ea, mut la), Value::Vector(eb, lb)) => {
            if la.len() != lb.len() {
                return Err(RuntimeError::TypeMismatch {
                    detail: "vector operands of different widths".into(),
                });
            }
            for (a, &b) in la.iter_mut().zip(lb.iter()) {
                let r = vector_lane_binop(op, Scalar::from_bits(*a, ea), Scalar::from_bits(b, eb))?;
                *a = vector_lane_result(op, r, ea);
            }
            Ok(Value::Vector(comparison_elem(op, ea), la))
        }
        (Value::Vector(ea, mut la), Value::Scalar(b)) => {
            let b = b.convert(ea);
            for a in la.iter_mut() {
                let r = vector_lane_binop(op, Scalar::from_bits(*a, ea), b)?;
                *a = vector_lane_result(op, r, ea);
            }
            Ok(Value::Vector(comparison_elem(op, ea), la))
        }
        (Value::Scalar(a), Value::Vector(eb, mut lb)) => {
            let a = a.convert(eb);
            for b in lb.iter_mut() {
                let r = vector_lane_binop(op, a, Scalar::from_bits(*b, eb))?;
                *b = vector_lane_result(op, r, eb);
            }
            Ok(Value::Vector(comparison_elem(op, eb), lb))
        }
        (lhs, rhs) => value_binop(op, lhs, rhs),
    }
}

fn vector_lane_result(op: BinOp, r: Scalar, elem: ScalarType) -> u64 {
    if op.is_comparison() {
        // OpenCL vector comparisons produce -1 (all bits set) for true.
        if r.is_true() {
            Scalar::from_i128(-1, elem.to_signed()).bits
        } else {
            0
        }
    } else {
        r.convert(elem).bits
    }
}

fn comparison_elem(op: BinOp, elem: ScalarType) -> ScalarType {
    if op.is_comparison() {
        elem.to_signed()
    } else {
        elem
    }
}

/// Reads `lanes` vector lanes with a single object lookup (mirrors the
/// per-lane `read_scalar` loop of `read_value`, including its errors).
fn read_lanes(
    memory: &Memory,
    obj: ObjId,
    offset: usize,
    ty: ScalarType,
    lanes: usize,
) -> Result<Lanes, RuntimeError> {
    let object = memory.object(obj)?;
    let mut out = Lanes::with_capacity(lanes);
    for i in 0..lanes {
        match object.cells.get(offset + i) {
            Some(Cell::Bits(b)) => out.push(crate::value::mask(*b, ty)),
            Some(Cell::Uninit) => {
                return Err(RuntimeError::UninitializedRead {
                    object: object.name.clone(),
                })
            }
            Some(Cell::Ptr(_)) => {
                return Err(RuntimeError::TypeMismatch {
                    detail: format!("reading pointer cell of `{}` as scalar", object.name),
                })
            }
            None => {
                return Err(RuntimeError::InvalidAccess {
                    detail: format!("offset {} out of bounds for `{}`", offset + i, object.name),
                })
            }
        }
    }
    Ok(out)
}

/// Writes vector lanes with a single object lookup (mirrors the per-lane
/// `write_scalar` loop of `write_value`, including its errors and its
/// partial-write behaviour on out-of-bounds offsets).
fn write_lanes(
    memory: &mut Memory,
    obj: ObjId,
    offset: usize,
    ty: ScalarType,
    lanes: impl Iterator<Item = u64>,
) -> Result<(), RuntimeError> {
    let object = memory.object_mut(obj)?;
    for (i, bits) in lanes.enumerate() {
        match object.cells.get_mut(offset + i) {
            Some(slot) => *slot = Cell::Bits(crate::value::mask(bits, ty)),
            None => {
                return Err(RuntimeError::InvalidAccess {
                    detail: format!(
                        "offset {} out of bounds for `{}` ({} cells)",
                        offset + i,
                        object.name,
                        object.cells.len()
                    ),
                })
            }
        }
    }
    Ok(())
}

/// Loads a statically typed scalar/vector leaf, recording the read when the
/// location is shared.  Single source of the fused instructions' read
/// semantics (mirrors `AccessCtx::load` for these two type shapes).
fn load_leaf(
    world: &mut World<'_>,
    ids: ThreadIds,
    obj: ObjId,
    offset: usize,
    leaf: &LeafTy,
    shared: bool,
) -> Result<Value, RuntimeError> {
    match leaf {
        LeafTy::Scalar(s) => {
            if shared {
                record_shared(world.races.as_mut(), &ids, obj, offset, 1, AccessKind::Read);
            }
            Ok(Value::Scalar(world.memory.read_scalar(obj, offset, *s)?))
        }
        LeafTy::Vector(s, w) => {
            let lanes = w.lanes();
            if shared {
                record_shared(
                    world.races.as_mut(),
                    &ids,
                    obj,
                    offset,
                    lanes,
                    AccessKind::Read,
                );
            }
            Ok(Value::Vector(
                *s,
                read_lanes(&*world.memory, obj, offset, *s, lanes)?,
            ))
        }
    }
}

/// Stores into a statically typed scalar/vector leaf, recording the write
/// when the location is shared.  Single source of the fused instructions'
/// store-conversion semantics (mirrors `write_value` for these two type
/// shapes: scalar conversion, the pointer-to-integer zero token, the vector
/// lane-count check and the scalar broadcast).
fn store_leaf(
    world: &mut World<'_>,
    ids: ThreadIds,
    obj: ObjId,
    offset: usize,
    leaf: &LeafTy,
    shared: bool,
    value: &Value,
) -> Result<(), RuntimeError> {
    if shared {
        let cells = match leaf {
            LeafTy::Scalar(_) => 1,
            LeafTy::Vector(_, w) => w.lanes(),
        };
        record_shared(
            world.races.as_mut(),
            &ids,
            obj,
            offset,
            cells,
            AccessKind::Write,
        );
    }
    match (leaf, value) {
        (LeafTy::Scalar(s), Value::Scalar(v)) => world.memory.write_scalar(obj, offset, *v, *s),
        (LeafTy::Scalar(s), Value::Pointer(_)) => {
            world.memory.write_scalar(obj, offset, Scalar::zero(*s), *s)
        }
        (LeafTy::Vector(s, w), Value::Vector(_, l)) => {
            if l.len() != w.lanes() {
                return Err(RuntimeError::TypeMismatch {
                    detail: "vector store with mismatched lane count".into(),
                });
            }
            write_lanes(world.memory, obj, offset, *s, l.iter().copied())
        }
        (LeafTy::Vector(s, w), Value::Scalar(v)) => {
            // Broadcast store: the scalar is converted to the element type
            // once.
            let bits = v.convert(*s).bits;
            write_lanes(
                world.memory,
                obj,
                offset,
                *s,
                std::iter::repeat_n(bits, w.lanes()),
            )
        }
        (LeafTy::Scalar(s), other) => Err(RuntimeError::TypeMismatch {
            detail: format!("cannot store {} into {:?}", other.kind(), Type::Scalar(*s)),
        }),
        (LeafTy::Vector(s, w), other) => Err(RuntimeError::TypeMismatch {
            detail: format!(
                "cannot store {} into {:?}",
                other.kind(),
                Type::Vector(*s, *w)
            ),
        }),
    }
}

/// The resolved target of a fused `p->field` access.
enum ArrowTarget {
    /// The pointee matched the compiled struct id: location plus space
    /// (the leaf type comes from the instruction).
    Leaf(ObjId, usize, AddressSpace),
    /// The pointee was retyped (pointer cast): a dynamically resolved place
    /// mirroring `eval_place`'s field handling.
    Place(Place),
}

/// Loads the pointer held by a slot and resolves the fused field access
/// against it, mirroring `eval_pointer` + the `Field` arm of `eval_place`.
fn resolve_arrow(
    world: &mut World<'_>,
    ids: ThreadIds,
    obj: ObjId,
    ptr_shared: bool,
    expect: clc::StructId,
    add: u32,
    field: &str,
) -> Result<ArrowTarget, RuntimeError> {
    if ptr_shared {
        record_shared(world.races.as_mut(), &ids, obj, 0, 1, AccessKind::Read);
    }
    let p = world.memory.read_pointer(obj, 0)?;
    match &p.pointee {
        Type::Struct(id) if *id == expect => {
            Ok(ArrowTarget::Leaf(p.obj, p.offset + add as usize, p.space))
        }
        pointee => {
            let field_offset = pointee
                .field_offset(field, &world.program.structs)
                .ok_or_else(|| RuntimeError::TypeMismatch {
                    detail: format!("no field `{field}` on {pointee:?}"),
                })?;
            let field_ty = match pointee {
                Type::Struct(id) => world
                    .program
                    .struct_def(*id)
                    .field(field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| RuntimeError::TypeMismatch {
                        detail: format!("no field `{field}`"),
                    })?,
                _ => {
                    return Err(RuntimeError::TypeMismatch {
                        detail: "field access on non-struct".into(),
                    })
                }
            };
            Ok(ArrowTarget::Place(Place {
                obj: p.obj,
                offset: p.offset + field_offset,
                ty: field_ty,
                space: p.space,
            }))
        }
    }
}

/// The element type of a resolved index target: scalars stay as a copyable
/// tag so the hot store path never clones a `Type`.
enum ResolvedTy {
    Scalar(ScalarType),
    Owned(Type),
}

/// Pops and converts an index operand (mirrors `eval_place`'s index
/// handling).
fn index_operand(item: &mut VmItem) -> Result<i64, RuntimeError> {
    let idx_value = item.pop_value();
    Ok(idx_value
        .as_scalar()
        .ok_or_else(|| RuntimeError::TypeMismatch {
            detail: "index is not scalar".into(),
        })?
        .as_i64())
}

/// The fused equivalent of `ResolveIndexable` + `IndexPlace` on a slot's
/// object: resolves the indexable base (arrays in place, pointers through
/// their cell) and applies the bounds-checked index, returning the target
/// location, element type (borrowed — no clones) and its cell count.
fn resolve_slot_index<'m>(
    memory: &'m Memory,
    structs: &[clc::StructDef],
    obj: ObjId,
    idx: i64,
) -> Result<(ObjId, usize, AddressSpace, &'m Type, usize), RuntimeError> {
    let object = memory.object(obj)?;
    let (tobj, toffset, tspace, tty): (ObjId, usize, AddressSpace, &Type) = match &object.ty {
        Type::Pointer(..) => match object.cells.first() {
            Some(Cell::Ptr(p)) => (p.obj, p.offset, p.space, &p.pointee),
            Some(_) => {
                return Err(RuntimeError::UninitializedRead {
                    object: object.name.clone(),
                })
            }
            None => {
                return Err(RuntimeError::InvalidAccess {
                    detail: format!(
                        "offset 0 out of bounds for `{}` ({} cells)",
                        object.name,
                        object.cells.len()
                    ),
                })
            }
        },
        other => (obj, 0, object.space, other),
    };
    let (elem, stride_base): (&Type, usize) = match tty {
        Type::Array(elem, len) => {
            if idx < 0 || idx as usize >= *len {
                return Err(RuntimeError::InvalidAccess {
                    detail: format!("array index {idx} out of bounds for length {len}"),
                });
            }
            (&**elem, toffset)
        }
        other => (other, toffset),
    };
    let stride = elem.cell_count(structs);
    if idx < 0 {
        return Err(RuntimeError::InvalidAccess {
            detail: format!("negative index {idx}"),
        });
    }
    Ok((
        tobj,
        stride_base + idx as usize * stride,
        tspace,
        elem,
        stride,
    ))
}

/// Resolves a slot to the place of its whole object (the bytecode analogue
/// of `eval_place` on a variable).
fn slot_place(
    world: &World<'_>,
    item: &VmItem,
    frame_idx: usize,
    func: usize,
    slot: u16,
) -> Result<Place, RuntimeError> {
    let obj = bound_slot(item, frame_idx, func, world.compiled, slot)?;
    let object = world.memory.object(obj)?;
    Ok(Place {
        obj,
        offset: 0,
        ty: object.ty.clone(),
        space: object.space,
    })
}

fn bound_slot(
    item: &VmItem,
    frame_idx: usize,
    func: usize,
    compiled: &CompiledProgram,
    slot: u16,
) -> Result<ObjId, RuntimeError> {
    item.frames[frame_idx].slots[slot as usize].ok_or_else(|| {
        RuntimeError::UnknownVariable(compiled.funcs[func].slot_names[slot as usize].clone())
    })
}

/// Reads a register, failing like `Memory::read_scalar` on an
/// uninitialised cell (the same error, naming the same variable).
fn read_reg(
    item: &VmItem,
    frame_idx: usize,
    func: usize,
    compiled: &CompiledProgram,
    reg: u16,
    ty: ScalarType,
) -> Result<Scalar, RuntimeError> {
    match item.frames[frame_idx].regs[reg as usize] {
        Some(bits) => Ok(Scalar::from_bits(bits, ty)),
        None => Err(RuntimeError::UninitializedRead {
            object: compiled.funcs[func].reg_names[reg as usize].clone(),
        }),
    }
}

/// Stores into a register with `write_value`'s `Type::Scalar` semantics:
/// scalar conversion to the declared type, the pointer-to-integer zero
/// token, and the identical `TypeMismatch` for anything else.
fn write_reg(
    item: &mut VmItem,
    frame_idx: usize,
    reg: u16,
    ty: ScalarType,
    value: &Value,
) -> Result<(), RuntimeError> {
    let bits = match value {
        Value::Scalar(v) => v.convert(ty).bits,
        Value::Pointer(_) => Scalar::zero(ty).bits,
        other => {
            return Err(RuntimeError::TypeMismatch {
                detail: format!("cannot store {} into {:?}", other.kind(), Type::Scalar(ty)),
            })
        }
    };
    item.frames[frame_idx].regs[reg as usize] = Some(bits);
    Ok(())
}
