//! Escape-analysis edge cases for the bytecode tier's scalar register file.
//!
//! The compiler promotes private scalars to per-frame registers only when
//! they can never be observed through memory; these tests pin the
//! conservative edges of that analysis — address-taken scalars, scalars
//! captured through a callee's pointer parameter, and scalars shadowed
//! inside loop bodies — by requiring byte-identical results, errors and
//! race verdicts across the tree-walking and bytecode tiers, alongside the
//! expected register counts from [`clc_interp::compile`].

use clc::expr::{AssignOp, BinOp, Expr, IdKind};
use clc::types::AddressSpace;
use clc::{
    BufferSpec, FunctionDef, KernelDef, LaunchConfig, Param, Program, ScalarType, Stmt, Type,
};
use clc_interp::{compile, launch, ExecutionTier, LaunchOptions, RuntimeError};

fn options_for(tier: ExecutionTier) -> LaunchOptions {
    LaunchOptions {
        tier,
        detect_races: true,
        ..LaunchOptions::default()
    }
}

/// A two-work-item program whose kernel body is `stmts` followed by
/// `out[global_linear_id] = result;`.
fn program_of(stmts: Vec<Stmt>, result: Expr) -> Program {
    let mut body = stmts;
    body.push(Stmt::assign(
        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
        result,
    ));
    let mut p = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::of(body),
        },
        LaunchConfig::single_group(2),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 2));
    p
}

/// Runs on both tiers, asserts identical observables, and returns the
/// bytecode-tier result.
fn assert_tiers_agree(program: &Program, label: &str) -> clc_interp::LaunchResult {
    let tree = launch(program, &options_for(ExecutionTier::TreeWalk));
    let bytecode = launch(program, &options_for(ExecutionTier::Bytecode));
    match (tree, bytecode) {
        (Ok(t), Ok(b)) => {
            assert_eq!(t.result_string, b.result_string, "results differ: {label}");
            assert_eq!(t.race, b.race, "race verdicts differ: {label}");
            b
        }
        (Err(t), Err(b)) => {
            assert_eq!(t, b, "errors differ: {label}");
            panic!("{label}: expected success, both tiers failed with {b}");
        }
        (t, b) => panic!("tier outcomes diverge for {label}:\n tree: {t:?}\n vm:   {b:?}"),
    }
}

/// `int x; int *p = &x; *p = 5;` — taking `x`'s address forces it out of
/// the register file (a register has no address), so the store through `p`
/// must be visible when `x` is read back.
#[test]
fn address_taken_scalar_is_not_registered() {
    let program = program_of(
        vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), None),
            Stmt::decl(
                "p",
                Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
                Some(Expr::addr_of(Expr::var("x"))),
            ),
            Stmt::assign(Expr::deref(Expr::var("p")), Expr::int(5)),
        ],
        Expr::var("x"),
    );
    assert_eq!(
        compile(&program).register_count(),
        0,
        "an address-taken scalar must not be promoted"
    );
    let result = assert_tiers_agree(&program, "address-taken scalar");
    assert_eq!(result.output[0].as_u64(), 5);
}

/// A scalar passed by address to a helper function: the callee writes
/// through its pointer parameter, so the caller's scalar must live in
/// memory for the write to land.
#[test]
fn scalar_captured_by_callee_pointer_param_is_not_registered() {
    let mut program = program_of(
        vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
            Stmt::expr(Expr::call("set7", vec![Expr::addr_of(Expr::var("x"))])),
        ],
        Expr::var("x"),
    );
    program.functions.push(FunctionDef::new(
        "set7",
        None,
        vec![Param::new(
            "q",
            Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
        )],
        clc::Block::of(vec![Stmt::assign(
            Expr::deref(Expr::var("q")),
            Expr::int(7),
        )]),
    ));
    assert_eq!(
        compile(&program).register_count(),
        0,
        "a scalar captured by a callee's pointer parameter must not be promoted"
    );
    let result = assert_tiers_agree(&program, "callee-captured scalar");
    assert_eq!(result.output[0].as_u64(), 7);
}

/// A scalar shadowed inside a loop body: the inner `x` is a fresh register
/// every iteration while the outer `x` keeps its own, and the shadowing
/// must resolve exactly as the tree walker's scope stack does.
#[test]
fn loop_shadowed_scalar_resolves_like_the_scope_stack() {
    let program = program_of(
        vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
            Stmt::decl("acc", Type::Scalar(ScalarType::Int), Some(Expr::int(0))),
            Stmt::For {
                init: Some(Box::new(Stmt::decl(
                    "i",
                    Type::Scalar(ScalarType::Int),
                    Some(Expr::int(0)),
                ))),
                cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(3))),
                update: Some(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var("i"),
                    Expr::int(1),
                )),
                body: clc::Block::of(vec![
                    Stmt::decl(
                        "x",
                        Type::Scalar(ScalarType::Int),
                        Some(Expr::binary(BinOp::Add, Expr::var("i"), Expr::int(2))),
                    ),
                    Stmt::expr(Expr::assign_op(
                        AssignOp::AddAssign,
                        Expr::var("acc"),
                        Expr::var("x"),
                    )),
                ]),
            },
        ],
        // 2 + 3 + 4 from the inner x, plus the untouched outer x = 1.
        Expr::binary(BinOp::Add, Expr::var("acc"), Expr::var("x")),
    );
    assert_eq!(
        compile(&program).register_count(),
        4,
        "outer x, acc, i and the shadowing inner x should all be registers"
    );
    let result = assert_tiers_agree(&program, "loop-shadowed scalar");
    assert_eq!(result.output[0].as_u64(), 10);
}

/// The register file's observable structural effect: the loop above churns
/// no objects on the bytecode tier, so it allocates strictly fewer objects
/// than the tree walker while producing the same result.
#[test]
fn register_file_reduces_object_allocations() {
    let program = program_of(
        vec![
            Stmt::decl("acc", Type::Scalar(ScalarType::Int), Some(Expr::int(0))),
            Stmt::For {
                init: Some(Box::new(Stmt::decl(
                    "i",
                    Type::Scalar(ScalarType::Int),
                    Some(Expr::int(0)),
                ))),
                cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(8))),
                update: Some(Expr::assign_op(
                    AssignOp::AddAssign,
                    Expr::var("i"),
                    Expr::int(1),
                )),
                body: clc::Block::of(vec![
                    Stmt::decl(
                        "t",
                        Type::Scalar(ScalarType::Int),
                        Some(Expr::binary(BinOp::Mul, Expr::var("i"), Expr::var("i"))),
                    ),
                    Stmt::expr(Expr::assign_op(
                        AssignOp::AddAssign,
                        Expr::var("acc"),
                        Expr::var("t"),
                    )),
                ]),
            },
        ],
        Expr::var("acc"),
    );
    let tree = launch(&program, &options_for(ExecutionTier::TreeWalk)).unwrap();
    let vm = launch(&program, &options_for(ExecutionTier::Bytecode)).unwrap();
    assert_eq!(tree.result_string, vm.result_string);
    assert!(
        vm.objects_allocated < tree.objects_allocated,
        "register file should avoid per-iteration object churn ({} vs {})",
        vm.objects_allocated,
        tree.objects_allocated
    );
}

/// Reading an uninitialised register reports the same `UninitializedRead`
/// (naming the variable) as the tree walker's uninitialised memory cell.
#[test]
fn uninitialised_register_read_errors_identically() {
    let program = program_of(
        vec![Stmt::decl("x", Type::Scalar(ScalarType::Int), None)],
        Expr::var("x"),
    );
    assert!(compile(&program).register_count() > 0);
    for tier in ExecutionTier::ALL {
        let err = launch(&program, &options_for(tier)).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::UninitializedRead { object: "x".into() },
            "on the {} tier",
            tier.name()
        );
    }
}
