//! Barrier-divergence soundness regressions: programs where the static
//! analyzer's verdict and the dynamic detector's must stay consistent.
//!
//! The contract under test is one-sided (see `clc-analyze`): the static
//! analyzer may over-approximate, but a kernel it certifies as
//! divergence-free must never trip the interpreter's dynamic
//! barrier-divergence detector, on either execution tier.

use clc::expr::{BinOp, Expr, IdKind};
use clc::stmt::Stmt;
use clc::types::{ScalarType, Type};
use clc::{BufferSpec, KernelDef, LaunchConfig, Program};
use clc_interp::{launch, ExecutionTier, LaunchOptions, RuntimeError, Schedule};

/// A barrier guarded by a variable that is only *conditionally* assigned
/// under identity-dependent control flow: flow-insensitive uniformity
/// tracking must not certify `x` as uniform just because every assignment
/// to it stores a uniform constant.
#[test]
fn conditional_uniform_assignment_poisons_barrier_guard() {
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::single_group(8),
    );
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 8)];
    // int x = 0;
    program.kernel.body.push(Stmt::decl(
        "x",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    // if (lid < 2) x = 1;
    program.kernel.body.push(Stmt::if_then(
        Expr::binary(
            BinOp::Lt,
            Expr::IdQuery(IdKind::LocalLinearId),
            Expr::lit(2, ScalarType::UInt),
        ),
        clc::Block::of(vec![Stmt::expr(Expr::assign(Expr::var("x"), Expr::int(1)))]),
    ));
    // if (x) barrier;
    program.kernel.body.push(Stmt::if_then(
        Expr::binary(BinOp::Ne, Expr::var("x"), Expr::int(0)),
        clc::Block::of(vec![Stmt::Barrier(clc::stmt::MemFence::Local)]),
    ));
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
        Expr::int(1),
    )));

    let report = clsmith::validate(&program);
    let statically_divergent = !report.divergence_free();

    let mut dynamic_divergence = false;
    for tier in [ExecutionTier::TreeWalk, ExecutionTier::Bytecode] {
        let outcome = launch(
            &program,
            &LaunchOptions {
                tier,
                detect_races: true,
                schedule: Schedule::Forward,
                ..LaunchOptions::default()
            },
        );
        if matches!(outcome, Err(RuntimeError::BarrierDivergence { .. })) {
            dynamic_divergence = true;
        }
    }
    assert!(
        statically_divergent || !dynamic_divergence,
        "SOUNDNESS HOLE: certified divergence-free but diverges dynamically (report: {})",
        report.summary()
    );
}
