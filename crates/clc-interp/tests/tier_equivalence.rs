//! Differential testing of the two execution tiers.
//!
//! The repository's own methodology is the oracle: the tree-walking
//! evaluator and the bytecode VM execute the same seeded CLsmith-style
//! kernels and must agree bit-for-bit on results, runtime errors and race
//! verdicts.  Any semantic drift in the compiler/VM pair shows up here as a
//! differential.  (`total_steps` is deliberately excluded: step accounting
//! is tier-specific — AST nodes vs executed instructions — and the step
//! limit is enforced against each tier's own count; see
//! [`clc_interp::ExecutionTier`].)
//!
//! Also pins the scalar-semantics bugfixes (mixed-type `min`/`max`, `abs`
//! on unsigned operands, shift amounts taken modulo the promoted width per
//! OpenCL C §6.3(j)) on *both* tiers.

use clc::expr::{BinOp, Builtin, Expr, IdKind};
use clc::{BufferSpec, KernelDef, LaunchConfig, Program, ScalarType, Stmt};
use clc_interp::{launch, ExecutionTier, LaunchOptions, Schedule};
use clsmith::{generate, GenMode, GeneratorOptions};

fn options_for(tier: ExecutionTier, detect_races: bool, schedule: Schedule) -> LaunchOptions {
    LaunchOptions {
        tier,
        detect_races,
        schedule,
        ..LaunchOptions::default()
    }
}

/// Runs `program` on both tiers and asserts the observable outcomes are
/// identical: result hash and string, runtime error, and race verdict.
fn assert_tiers_agree(program: &Program, detect_races: bool, schedule: Schedule, label: &str) {
    let tree = launch(
        program,
        &options_for(ExecutionTier::TreeWalk, detect_races, schedule),
    );
    let bytecode = launch(
        program,
        &options_for(ExecutionTier::Bytecode, detect_races, schedule),
    );
    match (tree, bytecode) {
        (Ok(t), Ok(b)) => {
            assert_eq!(t.result_hash, b.result_hash, "result hash differs: {label}");
            assert_eq!(
                t.result_string, b.result_string,
                "result string differs: {label}"
            );
            assert_eq!(t.race, b.race, "race verdict differs: {label}");
            assert_eq!(
                t.soft_barriers, b.soft_barriers,
                "soft barrier count differs: {label}"
            );
        }
        (Err(t), Err(b)) => assert_eq!(t, b, "errors differ: {label}"),
        (t, b) => panic!("tier outcomes diverge for {label}:\n tree: {t:?}\n vm:   {b:?}"),
    }
}

/// ≥50 seeded kernels across every generation mode and several option
/// presets, all compared across tiers with race detection enabled.
#[test]
fn tiers_agree_on_seeded_kernels() {
    let mut checked = 0usize;
    for mode in GenMode::ALL {
        for seed in 0..7 {
            let opts = GeneratorOptions {
                min_threads: 8,
                max_threads: 32,
                ..GeneratorOptions::new(mode, 0x7133 + seed)
            };
            let program = generate(&opts);
            assert_tiers_agree(
                &program,
                true,
                Schedule::Forward,
                &format!("{} seed {seed}", mode.name()),
            );
            checked += 1;
        }
    }
    // EMI-enabled preset: exercises the `dead` array guards on both tiers.
    for seed in 0..6 {
        let opts = GeneratorOptions {
            min_threads: 8,
            max_threads: 32,
            ..GeneratorOptions::new(GenMode::All, 0xE31 + seed)
        }
        .with_emi();
        let program = generate(&opts);
        assert_tiers_agree(
            &program,
            true,
            Schedule::Forward,
            &format!("ALL+emi seed {seed}"),
        );
        checked += 1;
    }
    // Default-size preset (larger NDRanges, helper functions, structs).
    for seed in 0..6 {
        let program = generate(&GeneratorOptions::new(GenMode::All, 0xD0_0D + seed));
        assert_tiers_agree(
            &program,
            true,
            Schedule::Forward,
            &format!("ALL default-size seed {seed}"),
        );
        checked += 1;
    }
    assert!(checked >= 50, "only {checked} kernels checked");
}

/// The tiers must also agree under non-default work-item schedules (the
/// harness uses schedule variation to classify races).
#[test]
fn tiers_agree_across_schedules() {
    for (i, schedule) in [Schedule::Reverse, Schedule::Shuffled(0xABCD)]
        .into_iter()
        .enumerate()
    {
        for mode in [GenMode::Barrier, GenMode::AtomicReduction, GenMode::All] {
            let opts = GeneratorOptions {
                min_threads: 8,
                max_threads: 32,
                ..GeneratorOptions::new(mode, 0x5C_0001 + i as u64)
            };
            let program = generate(&opts);
            assert_tiers_agree(
                &program,
                true,
                schedule,
                &format!("{} schedule {schedule:?}", mode.name()),
            );
        }
    }
}

/// A kernel that writes `expr` (converted to `ulong`) into every `out` slot.
fn kernel_of(expr: Expr) -> Program {
    let mut p = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::of(vec![Stmt::assign(
                Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                expr,
            )]),
        },
        LaunchConfig::single_group(2),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 2));
    p
}

/// Regression (both tiers): in a barrier-containing kernel loop, loop-body
/// declarations live in the loop-level scope (the resumable machine's
/// semantics), so a pointer captured in one iteration still refers to that
/// iteration's object in the next.
#[test]
fn barrier_loop_body_locals_survive_iterations() {
    use clc::expr::{AssignOp, BinOp};
    use clc::stmt::MemFence;
    use clc::types::{AddressSpace, Type};
    let mut p = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::of(vec![
                Stmt::decl(
                    "p",
                    Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
                    None,
                ),
                Stmt::For {
                    init: Some(Box::new(Stmt::decl(
                        "i",
                        Type::Scalar(ScalarType::Int),
                        Some(Expr::int(0)),
                    ))),
                    cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(2))),
                    update: Some(Expr::assign_op(
                        AssignOp::AddAssign,
                        Expr::var("i"),
                        Expr::int(1),
                    )),
                    body: clc::Block::of(vec![
                        Stmt::decl(
                            "x",
                            Type::Scalar(ScalarType::Int),
                            Some(Expr::binary(BinOp::Add, Expr::var("i"), Expr::int(5))),
                        ),
                        Stmt::If {
                            cond: Expr::binary(BinOp::Eq, Expr::var("i"), Expr::int(1)),
                            then_block: clc::Block::of(vec![Stmt::assign(
                                Expr::index(
                                    Expr::var("out"),
                                    Expr::IdQuery(IdKind::GlobalLinearId),
                                ),
                                Expr::deref(Expr::var("p")),
                            )]),
                            else_block: None,
                        },
                        Stmt::assign(Expr::var("p"), Expr::addr_of(Expr::var("x"))),
                        Stmt::Barrier(MemFence::Local),
                    ]),
                },
            ]),
        },
        LaunchConfig::single_group(2),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 2));
    for tier in ExecutionTier::ALL {
        let result = launch(&p, &options_for(tier, false, Schedule::Forward))
            .unwrap_or_else(|e| panic!("{} failed: {e}", tier.name()));
        // Iteration 1 reads the pointer captured in iteration 0, whose
        // object (x = 0 + 5) must still be live.
        assert_eq!(
            result.output[0].as_u64(),
            5,
            "cross-iteration pointer read on the {} tier",
            tier.name()
        );
    }
    assert_tiers_agree(&p, true, Schedule::Forward, "barrier-loop locals");
}

/// Regression (both tiers): `max(-1, 1u)` converts the winner to the common
/// `uint` type, so storing it into a `ulong` buffer zero-extends rather than
/// sign-extends.
#[test]
fn min_max_mixed_signedness_regression() {
    let program = kernel_of(Expr::builtin(
        Builtin::Max,
        vec![Expr::int(-1), Expr::lit(1, ScalarType::UInt)],
    ));
    for tier in ExecutionTier::ALL {
        let result = launch(&program, &options_for(tier, false, Schedule::Forward))
            .unwrap_or_else(|e| panic!("{} failed: {e}", tier.name()));
        assert_eq!(
            result.output[0].as_u64(),
            0xFFFF_FFFF,
            "max(-1, 1u) must be (uint)-1 on the {} tier",
            tier.name()
        );
    }
}

/// Regression (both tiers): `abs` on a `ulong` operand is the identity.
#[test]
fn abs_unsigned_identity_regression() {
    let program = kernel_of(Expr::builtin(
        Builtin::Abs,
        vec![Expr::lit(u64::MAX as i128, ScalarType::ULong)],
    ));
    for tier in ExecutionTier::ALL {
        let result = launch(&program, &options_for(tier, false, Schedule::Forward))
            .unwrap_or_else(|e| panic!("{} failed: {e}", tier.name()));
        assert_eq!(
            result.output[0].as_u64(),
            u64::MAX,
            "abs((ulong)MAX) must be the identity on the {} tier",
            tier.name()
        );
    }
}

/// Regression (both tiers): OpenCL C §6.3(j) defines out-of-range shift
/// amounts as taken modulo the promoted left-operand width — they are never
/// runtime errors.  `1 << 33` on an `int` shifts by 1; `1 << (1 << 32)`
/// shifts by 0 (the amount's low 32 bits are zero); `1 << -1` shifts by 31
/// (the amount's two's complement bit pattern is masked).
#[test]
fn shift_amount_modulo_width_regression() {
    let cases: [(BinOp, i128, ScalarType, u64); 5] = [
        (BinOp::Shl, 33, ScalarType::Long, 2),
        (BinOp::Shl, 1i128 << 32, ScalarType::Long, 1),
        // 1 << 31 = INT_MIN, sign-extended by the store into the ulong
        // result buffer.
        (BinOp::Shl, -1, ScalarType::Int, 0xFFFF_FFFF_8000_0000),
        (BinOp::Shr, 32, ScalarType::Int, 1),
        (BinOp::Shr, 33, ScalarType::Int, 0),
    ];
    for (op, amount, amount_ty, expected) in cases {
        let program = kernel_of(Expr::binary(op, Expr::int(1), Expr::lit(amount, amount_ty)));
        for tier in ExecutionTier::ALL {
            let result = launch(&program, &options_for(tier, false, Schedule::Forward))
                .unwrap_or_else(|e| panic!("{op:?} by {amount} failed on {}: {e}", tier.name()));
            assert_eq!(
                result.output[0].as_u64(),
                expected,
                "1 {op:?} {amount} on the {} tier",
                tier.name()
            );
        }
        assert_tiers_agree(
            &program,
            false,
            Schedule::Forward,
            &format!("shift {op:?} by {amount}"),
        );
    }
}

/// Satellite audit of `RaceDetector::record` call sites: a race through a
/// *struct-field* access on a local variable must be reported under the
/// variable's declared name (`sh`), not a field-qualified or synthetic
/// `obj{n}` name, and the two tiers must produce the byte-identical
/// [`clc_interp::RaceReport`] — including its `Debug` rendering — for the
/// same seeded schedule.
#[test]
fn struct_field_race_reports_identically_across_tiers() {
    use clc::types::{AddressSpace, Field, StructDef, Type};
    let mut program = Program::new(
        KernelDef {
            name: "k".into(),
            params: Program::standard_clsmith_params(0),
            body: clc::Block::new(),
        },
        LaunchConfig::single_group(8),
    );
    let sid = program.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("a", Type::Scalar(ScalarType::Int)),
            Field::new("b", Type::Scalar(ScalarType::Int)),
        ],
    ));
    program.buffers = vec![BufferSpec::result("out", ScalarType::ULong, 8)];
    program.kernel.body.push(Stmt::Decl {
        name: "sh".into(),
        ty: Type::Struct(sid),
        space: AddressSpace::Local,
        volatile: false,
        init: None,
        init_list: None,
    });
    // Every work-item writes the same field of the one shared struct.
    program.kernel.body.push(Stmt::expr(Expr::assign(
        Expr::field(Expr::var("sh"), "a"),
        Expr::IdQuery(IdKind::LocalLinearId),
    )));
    let mut reports = Vec::new();
    for tier in ExecutionTier::ALL {
        let result = launch(&program, &options_for(tier, true, Schedule::Forward))
            .unwrap_or_else(|e| panic!("{} failed: {e}", tier.name()));
        let race = result
            .race
            .unwrap_or_else(|| panic!("{}: expected a race on sh.a", tier.name()));
        assert_eq!(
            race.object,
            "sh",
            "{}: struct-field race must name the declared variable",
            tier.name()
        );
        assert!(race.involves_write && race.same_group, "{race:?}");
        reports.push(race);
    }
    assert_eq!(reports[0], reports[1], "tiers disagree on the race report");
    assert_eq!(
        format!("{:?}", reports[0]),
        format!("{:?}", reports[1]),
        "tiers render the race report differently"
    );
}
