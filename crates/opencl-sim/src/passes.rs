//! Optimization passes of the simulated OpenCL C compilers.
//!
//! These are genuine, semantics-preserving AST-to-AST transformations
//! (constant folding, dead-code elimination, trivial simplification).  They
//! run when a configuration compiles with optimisations enabled (the default
//! in OpenCL; `-cl-opt-disable` turns them off, §6 of the paper).  Their
//! correctness is checked by differential tests against the reference
//! emulator; the *bugs* that the paper's testing campaign finds live in
//! [`crate::miscompile`], not here.

use clc::expr::{BinOp, Expr, UnOp};
use clc::stmt::{Block, Stmt};
use clc::types::{ScalarType, Type};
use clc::Program;
use clc_interp::eval::{lift_builtin, scalar_binop};
use clc_interp::{Scalar, Value};

/// Runs the full optimisation pipeline in place.
pub fn optimize(program: &mut Program) {
    constant_fold(program);
    eliminate_dead_code(program);
    simplify(program);
    // Folding may expose more dead code and vice versa; one extra round is
    /* enough for the program shapes CLsmith produces. */
    constant_fold(program);
    eliminate_dead_code(program);
}

/// Coverage bit (in the `Passes` class word) for constant folding.
pub const PASS_BIT_CONSTANT_FOLD: u32 = 0;
/// Coverage bit (in the `Passes` class word) for dead-code elimination.
pub const PASS_BIT_DEAD_CODE: u32 = 1;
/// Coverage bit (in the `Passes` class word) for trivial simplification.
pub const PASS_BIT_SIMPLIFY: u32 = 2;

/// Runs the same pipeline as [`optimize`] while recording which passes
/// actually *changed* the program (detected by fingerprinting between
/// stages).  Returns a bitmask over the `PASS_BIT_*` constants — the
/// optimiser-pass word of the feedback layer's coverage map.  The final
/// program is bit-identical to what [`optimize`] produces (pinned by a unit
/// test below); only the fingerprint probes are extra.
pub fn optimize_traced(program: &mut Program) -> u8 {
    let mut bits = 0u8;
    let mut stage = |program: &mut Program, pass: fn(&mut Program), bit: u32| {
        let before = program.fingerprint();
        pass(program);
        if program.fingerprint() != before {
            bits |= 1u8 << bit;
        }
    };
    stage(program, constant_fold, PASS_BIT_CONSTANT_FOLD);
    stage(program, eliminate_dead_code, PASS_BIT_DEAD_CODE);
    stage(program, simplify, PASS_BIT_SIMPLIFY);
    stage(program, constant_fold, PASS_BIT_CONSTANT_FOLD);
    stage(program, eliminate_dead_code, PASS_BIT_DEAD_CODE);
    bits
}

/// Folds operations whose operands are integer literals.
pub fn constant_fold(program: &mut Program) {
    program.for_each_expr_mut(&mut fold_expr);
}

fn literal_value(e: &Expr) -> Option<Scalar> {
    match e {
        Expr::IntLit { value, ty } => Some(Scalar::from_i128(*value, *ty)),
        _ => None,
    }
}

fn scalar_to_expr(s: Scalar) -> Expr {
    Expr::IntLit {
        value: if s.ty.is_signed() {
            s.as_i64() as i128
        } else {
            s.as_u64() as i128
        },
        ty: s.ty,
    }
}

fn fold_expr(e: &mut Expr) {
    let replacement = match e {
        Expr::Binary { op, lhs, rhs } => match (literal_value(lhs), literal_value(rhs)) {
            (Some(a), Some(b)) => {
                if op.is_logical() {
                    let v = match op {
                        BinOp::LAnd => a.is_true() && b.is_true(),
                        _ => a.is_true() || b.is_true(),
                    };
                    Some(Expr::int(i64::from(v)))
                } else {
                    scalar_binop(*op, a, b).ok().map(scalar_to_expr)
                }
            }
            _ => None,
        },
        Expr::Unary { op, expr } => literal_value(expr).map(|v| {
            let folded = match op {
                UnOp::Neg => Scalar::from_i128(-(v.as_i64() as i128), v.ty.promoted()),
                UnOp::LNot => Scalar::from_i128(i128::from(!v.is_true()), ScalarType::Int),
                UnOp::BitNot => Scalar::from_bits(!v.bits, v.ty.promoted()),
            };
            scalar_to_expr(folded)
        }),
        Expr::BuiltinCall { func, args } if !func.is_atomic() => {
            let literals: Option<Vec<Value>> = args
                .iter()
                .map(|a| literal_value(a).map(Value::Scalar))
                .collect();
            match literals {
                Some(values) if values.len() == func.arity() => lift_builtin(*func, &values)
                    .ok()
                    .and_then(|v| v.as_scalar())
                    .map(scalar_to_expr),
                _ => None,
            }
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => literal_value(cond).map(|c| {
            if c.is_true() {
                (**then_expr).clone()
            } else {
                (**else_expr).clone()
            }
        }),
        Expr::Cast {
            ty: Type::Scalar(target),
            expr,
        } => literal_value(expr).map(|v| scalar_to_expr(v.convert(*target))),
        Expr::Comma { lhs, rhs } => {
            // The discarded operand can be dropped when it has no side
            // effects; the comma then folds to its right operand.
            if !lhs.has_side_effects() {
                Some((**rhs).clone())
            } else {
                None
            }
        }
        _ => None,
    };
    if let Some(new) = replacement {
        *e = new;
    }
}

/// Removes statically unreachable statements: branches with constant
/// conditions, loops that can never run, and code following a jump.
pub fn eliminate_dead_code(program: &mut Program) {
    program.for_each_block_mut(&mut |block| {
        let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
        let mut unreachable = false;
        for stmt in block.stmts.drain(..) {
            if unreachable {
                continue;
            }
            match stmt {
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                } => match literal_value(&cond) {
                    Some(c) if c.is_true() => out.push(Stmt::Block(then_block)),
                    Some(_) => {
                        if let Some(e) = else_block {
                            out.push(Stmt::Block(e));
                        }
                    }
                    None => out.push(Stmt::If {
                        cond,
                        then_block,
                        else_block,
                    }),
                },
                Stmt::While { cond, body } => match literal_value(&cond) {
                    Some(c) if !c.is_true() => {}
                    _ => out.push(Stmt::While { cond, body }),
                },
                Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    let never_runs = cond
                        .as_ref()
                        .and_then(literal_value)
                        .map(|c| !c.is_true())
                        .unwrap_or(false);
                    if never_runs {
                        // The initialiser may still have side effects
                        // (e.g. an assignment); keep it.
                        if let Some(init) = init {
                            if !matches!(*init, Stmt::Decl { .. }) {
                                out.push(*init);
                            }
                        }
                    } else {
                        out.push(Stmt::For {
                            init,
                            cond,
                            update,
                            body,
                        });
                    }
                }
                Stmt::Return(_) | Stmt::Break | Stmt::Continue => {
                    out.push(stmt);
                    unreachable = true;
                }
                other => out.push(other),
            }
        }
        block.stmts = out;
    });
}

/// Structural clean-ups: flattens nested bare blocks, removes empty `if`s and
/// self-assignments.
pub fn simplify(program: &mut Program) {
    program.for_each_block_mut(&mut |block| {
        let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
        for stmt in block.stmts.drain(..) {
            match stmt {
                Stmt::Block(inner) => {
                    // Hoisting the contents of a bare block is only safe when
                    // it declares nothing (declarations are scoped).
                    if inner.stmts.iter().any(|s| matches!(s, Stmt::Decl { .. })) {
                        if !inner.is_empty() {
                            out.push(Stmt::Block(inner));
                        }
                    } else {
                        out.extend(inner.stmts);
                    }
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let else_empty = else_block.as_ref().map(Block::is_empty).unwrap_or(true);
                    if then_block.is_empty() && else_empty && !cond.has_side_effects() {
                        // if (c) {} with a pure condition: drop entirely.
                    } else {
                        out.push(Stmt::If {
                            cond,
                            then_block,
                            else_block,
                        });
                    }
                }
                Stmt::Expr(Expr::Assign { op, lhs, rhs })
                    if *lhs == *rhs && op.binop().is_none() =>
                {
                    // self-assignment x = x
                }
                other => out.push(other),
            }
        }
        block.stmts = out;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::expr::{AssignOp, Builtin};
    use clc::{BufferSpec, KernelDef, LaunchConfig};

    fn program_with_body(body: Block) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body,
            },
            LaunchConfig::single_group(4),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));
        p
    }

    #[test]
    fn traced_pipeline_matches_optimize_and_reports_pass_bits() {
        for seed in 0..8u64 {
            let mut plain =
                clsmith::generate(&clsmith::GeneratorOptions::new(clsmith::GenMode::All, seed));
            let mut traced = plain.clone();
            optimize(&mut plain);
            let bits = optimize_traced(&mut traced);
            assert_eq!(
                plain.fingerprint(),
                traced.fingerprint(),
                "seed {seed}: traced pipeline diverged from optimize()"
            );
            // Generated programs always contain foldable arithmetic, so the
            // constant-folding bit must light up.
            assert_ne!(bits & (1 << PASS_BIT_CONSTANT_FOLD), 0, "seed {seed}");
        }
    }

    #[test]
    fn folds_literal_arithmetic_and_builtins() {
        let mut p = program_with_body(Block::of(vec![Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::binary(
                BinOp::Add,
                Expr::binary(BinOp::Mul, Expr::int(6), Expr::int(7)),
                Expr::builtin(Builtin::SafeDiv, vec![Expr::int(10), Expr::int(0)]),
            ),
        )]));
        constant_fold(&mut p);
        let src = clc::print_program(&p);
        assert!(src.contains("(42 + 10)") || src.contains("52"), "{src}");
    }

    #[test]
    fn folding_preserves_safe_math_semantics() {
        // safe_div(x, 0) folds to x, exactly as the macro evaluates.
        let mut e = Expr::builtin(Builtin::SafeDiv, vec![Expr::int(-9), Expr::int(0)]);
        fold_expr(&mut e);
        assert_eq!(e, Expr::int(-9));
        // Division by zero through the raw operator must NOT fold (the
        // compiler may not introduce or hide UB).
        let mut raw = Expr::binary(BinOp::Div, Expr::int(-9), Expr::int(0));
        let before = raw.clone();
        fold_expr(&mut raw);
        assert_eq!(raw, before);
    }

    #[test]
    fn eliminates_constant_branches_and_dead_loops() {
        let mut p = program_with_body(Block::of(vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(0))),
            Stmt::if_else(
                Expr::int(0),
                Block::of(vec![Stmt::assign(Expr::var("x"), Expr::int(1))]),
                Block::of(vec![Stmt::assign(Expr::var("x"), Expr::int(2))]),
            ),
            Stmt::While {
                cond: Expr::int(0),
                body: Block::of(vec![Stmt::Break]),
            },
            Stmt::Return(None),
            Stmt::assign(Expr::var("x"), Expr::int(9)),
        ]));
        eliminate_dead_code(&mut p);
        let src = clc::print_program(&p);
        assert!(!src.contains("x = 1"));
        assert!(src.contains("x = 2"));
        assert!(!src.contains("while"));
        assert!(!src.contains("x = 9"));
    }

    #[test]
    fn simplify_flattens_blocks_and_drops_noops() {
        let mut p = program_with_body(Block::of(vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(0))),
            Stmt::Block(Block::of(vec![Stmt::assign(Expr::var("x"), Expr::int(3))])),
            Stmt::if_then(Expr::var("x"), Block::new()),
            Stmt::assign(Expr::var("x"), Expr::var("x")),
        ]));
        simplify(&mut p);
        assert_eq!(p.kernel.body.stmts.len(), 2);
    }

    #[test]
    fn full_pipeline_preserves_semantics_on_generated_programs() {
        use clsmith::{generate, GenMode, GeneratorOptions};
        for seed in 0..8u64 {
            for mode in [
                GenMode::Basic,
                GenMode::Vector,
                GenMode::Barrier,
                GenMode::All,
            ] {
                let opts = GeneratorOptions {
                    min_threads: 16,
                    max_threads: 48,
                    ..GeneratorOptions::new(mode, seed)
                };
                let program = generate(&opts);
                let reference = clc_interp::run(&program).expect("reference run");
                let mut optimized = program.clone();
                optimize(&mut optimized);
                let result = clc_interp::run(&optimized).expect("optimized run");
                assert_eq!(
                    reference.result_string, result.result_string,
                    "optimisation changed semantics for mode {mode} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn comma_with_side_effects_is_not_folded() {
        let mut e = Expr::comma(
            Expr::assign_op(AssignOp::AddAssign, Expr::var("x"), Expr::int(1)),
            Expr::int(5),
        );
        let before = e.clone();
        fold_expr(&mut e);
        assert_eq!(e, before);
        let mut pure = Expr::comma(Expr::var("x"), Expr::int(5));
        fold_expr(&mut pure);
        assert_eq!(pure, Expr::int(5));
    }
}
