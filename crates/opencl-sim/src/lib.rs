//! # opencl-sim — the simulated OpenCL platform
//!
//! The paper evaluates CLsmith against 21 commercial (device, driver)
//! configurations (Table 1).  Those drivers and devices cannot be shipped in
//! a self-contained reproduction, so this crate substitutes them with a
//! *simulated platform*:
//!
//! * [`passes`] — genuine, semantics-preserving optimisation passes
//!   (constant folding, dead-code elimination, simplification) that run when
//!   a configuration compiles with optimisations enabled;
//! * [`bugs`] — injected bug models reproducing every bug class of §6 and
//!   Figures 1–2 (struct miscompilations, the rotate constant fold, barrier
//!   related wrong code, the comma-operator bug, front-end rejections,
//!   compile hangs, crashes), realised as real AST transformations;
//! * [`configs`] — the 21 Table-1 configurations, each pairing its metadata
//!   with bug rules and background outcome rates;
//! * [`platform`] — the "online compile then execute" entry point returning
//!   the [`TestOutcome`] a fuzzing harness observes;
//! * [`store`] — the on-disk cross-campaign outcome store: a
//!   content-addressed, checksummed, capped cache of execution outcomes
//!   shared by sequential re-runs and concurrent shard processes;
//! * [`figures`] — the bug-exhibiting kernels of Figures 1 and 2, used as
//!   tests of the bug models and by the `figures` reproduction binary.
//!
//! Differential and EMI testing only ever look at [`TestOutcome`]s, so the
//! harness in the `fuzz-harness` crate finds these injected bugs the same
//! way the paper's campaign found the real ones: by majority vote and by
//! variant disagreement.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bugs;
pub mod configs;
pub mod figures;
pub mod passes;
pub mod platform;
pub mod store;

pub use bugs::{BugEffect, BugRule, Miscompilation, OptLevel, OptScope, Trigger};
pub use clc_interp::ExecutionTier;
pub use clsmith::{coverage_hash, CoverageClass, CoverageMap};
pub use configs::{
    above_threshold_configurations, all_configurations, configuration, Configuration, DeviceType,
    OutcomeRates,
};
pub use figures::{all_figures, FigureKernel};
pub use platform::{
    execute, process_cache_stats, process_race_stats, reference_execute, reset_process_cache_stats,
    reset_process_race_stats, reset_shared_outcome_cache, CacheStats, CompiledProgram, ExecMemo,
    ExecOptions, RaceDetectorStats, Session, TestOutcome,
};
pub use store::{set_io_fault_hook, IoFaultHook, OutcomeStore, StoreOp, StoreStats};
