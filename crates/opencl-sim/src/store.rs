//! The cross-campaign outcome store: an on-disk content-addressed cache of
//! kernel execution outcomes.
//!
//! The in-memory caches ([`ExecMemo`](crate::ExecMemo) per job, the
//! process-wide shared cache in [`platform`](crate::platform)) die with the
//! process; campaigns, reducer runs and repeated table regenerations
//! re-execute structurally identical kernels from scratch.  This module
//! persists the outcome cache's `(fingerprint, exec-option key)` →
//! [`TestOutcome`] mapping to a directory, so every process pointed at the
//! same store — sequential re-runs or concurrent shard processes — shares
//! one ever-growing cache.
//!
//! ## Entry format
//!
//! One file per entry, under a fingerprint-prefix fan-out directory
//! (`ab/ab12…-cd34…`).  An entry is a self-describing header line followed
//! by an exact-length payload:
//!
//! ```text
//! CLFUZZ-STORE 1 <fingerprint:016x> <key:016x> <payload-len> <digest:016x> <crc:016x>\n
//! <payload-len bytes of payload>
//! ```
//!
//! following the `CLFUZZ-JOURNAL` checksum discipline: `crc` is the FNV-1a
//! checksum of the header prefix before it and `digest` the checksum of the
//! payload, so a torn write, a bit flip, a version bump or a foreign file
//! can never be mistaken for a valid entry — every corruption degrades to a
//! cache **miss**, never to a wrong outcome.
//!
//! ## Concurrency
//!
//! Writes go to a process-unique temporary file and are published with an
//! atomic rename, so concurrent shard processes sharing one store directory
//! never observe partial entries; because outcomes are deterministic
//! functions of the key, racing writers publish identical bytes and either
//! rename may win.  The store is capped (`CLFUZZ_STORE_CAP`, default
//! 256 MiB): when a write pushes past the cap, the oldest entries (by
//! modification time — LRU-ish, since hits do not touch files) are evicted
//! until the store fits again.

use crate::platform::TestOutcome;
use clc::Fingerprint;
use clc_interp::fnv1a;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Store I/O operation kinds, as seen by the injectable fault hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// An entry-file read attempt (lookups, including the retry).
    Read,
    /// An entry publication attempt.
    Write,
}

/// The injectable I/O fault hook: called with the operation kind and a
/// process-global operation ordinal; returning an error kind makes that
/// operation fail before touching the filesystem.  Installed by the fault
/// injection layer (`fuzz_harness::faults`) to make the store's transient
/// and corruption paths reachable deterministically.
pub type IoFaultHook = Arc<dyn Fn(StoreOp, u64) -> Option<io::ErrorKind> + Send + Sync>;

static IO_FAULT_HOOK: RwLock<Option<IoFaultHook>> = RwLock::new(None);
static IO_OP_ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Installs (or with `None` clears) the process-global store fault hook and
/// resets the operation ordinal counter.
pub fn set_io_fault_hook(hook: Option<IoFaultHook>) {
    let mut guard = IO_FAULT_HOOK.write().unwrap_or_else(|e| e.into_inner());
    *guard = hook;
    IO_OP_ORDINAL.store(0, Ordering::Relaxed);
}

/// Consults the fault hook for one operation, consuming an ordinal.  The
/// ordinal only advances while a hook is installed, so fault schedules are
/// stable regardless of what ran before installation.
fn injected_fault(op: StoreOp) -> Option<io::Error> {
    let guard = IO_FAULT_HOOK.read().unwrap_or_else(|e| e.into_inner());
    let hook = guard.as_ref()?;
    let ordinal = IO_OP_ORDINAL.fetch_add(1, Ordering::Relaxed);
    hook(op, ordinal).map(|kind| io::Error::new(kind, "injected store fault"))
}

/// Backoff before the single retry of a transiently failed lookup read.
const READ_RETRY_BACKOFF: Duration = Duration::from_millis(1);

/// The store format tag; bumping the version invalidates (as misses) every
/// existing entry.
const FORMAT: &str = "CLFUZZ-STORE 1";

/// Default size cap (bytes) when `CLFUZZ_STORE_CAP` is unset.
const DEFAULT_CAP: u64 = 256 * 1024 * 1024;

/// Counter snapshot of one [`OutcomeStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Entries evicted to stay under the size cap.
    pub evictions: u64,
    /// Approximate store size in bytes (entry files only).
    pub bytes: u64,
    /// Lookups abandoned after an I/O error persisted through the retry.
    /// The entry file (if any) is left in place for the next lookup.
    pub transient_errors: u64,
    /// Entries that read back but failed validation and were deleted.
    pub corrupt_entries: u64,
}

impl StoreStats {
    /// Fraction of lookups served from the store — `0.0` (never `NaN`) when
    /// no lookups occurred.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// An on-disk content-addressed outcome store rooted at a directory.
///
/// Cheap to share: campaign drivers hold it behind an [`Arc`] inside
/// [`ExecOptions`](crate::ExecOptions), and every scheduler worker reads and
/// writes it concurrently.
#[derive(Debug)]
pub struct OutcomeStore {
    dir: PathBuf,
    cap: u64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    transient_errors: AtomicU64,
    corrupt_entries: AtomicU64,
    tmp_seq: AtomicU64,
    /// Serialises eviction scans within this process (concurrent processes
    /// coordinate through the filesystem: eviction re-scans, and deleting a
    /// file another process expects is just a miss there).
    evict_lock: Mutex<()>,
}

impl OutcomeStore {
    /// Opens (creating if needed) the store at `dir` with the cap from
    /// `CLFUZZ_STORE_CAP` (default 256 MiB).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<OutcomeStore> {
        OutcomeStore::open_with_cap(dir, cap_from_env())
    }

    /// Opens (creating if needed) the store at `dir` with an explicit size
    /// cap in bytes.
    pub fn open_with_cap(dir: impl Into<PathBuf>, cap: u64) -> io::Result<OutcomeStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = OutcomeStore {
            dir,
            cap: cap.max(1),
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            corrupt_entries: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
        };
        let existing: u64 = store.scan().iter().map(|e| e.len).sum();
        store.bytes.store(existing, Ordering::Relaxed);
        Ok(store)
    }

    /// The store selected by the `CLFUZZ_STORE` environment variable, opened
    /// once per process, or `None` when the variable is unset or empty.  An
    /// unopenable path prints one warning and disables the store rather
    /// than failing the campaign.
    pub fn from_env() -> Option<Arc<OutcomeStore>> {
        static STORE: OnceLock<Option<Arc<OutcomeStore>>> = OnceLock::new();
        STORE
            .get_or_init(|| {
                let path = std::env::var("CLFUZZ_STORE").ok()?;
                if path.is_empty() {
                    return None;
                }
                match OutcomeStore::open(&path) {
                    Ok(store) => Some(Arc::new(store)),
                    Err(e) => {
                        eprintln!("warning: CLFUZZ_STORE={path}: {e}; outcome store disabled");
                        None
                    }
                }
            })
            .clone()
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's size cap in bytes.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            corrupt_entries: self.corrupt_entries.load(Ordering::Relaxed),
        }
    }

    /// Path of the entry for `(fingerprint, key)`: a two-hex-digit fan-out
    /// directory keeps any one directory from accumulating every entry.
    fn entry_path(&self, fingerprint: Fingerprint, key: u64) -> PathBuf {
        self.dir
            .join(format!("{:02x}", fingerprint.0 >> 56))
            .join(format!("{:016x}-{key:016x}", fingerprint.0))
    }

    /// Looks up an outcome, distinguishing the three ways a lookup can come
    /// up empty:
    ///
    /// - the entry simply is not there (`NotFound`): a plain miss;
    /// - the read failed with any other I/O error: retried once after a
    ///   short backoff, and if it still fails the lookup is a miss counted
    ///   under `transient_errors` — the entry file is *not* deleted, so a
    ///   later lookup can still hit it;
    /// - the entry read back but failed validation — torn, bit-flipped,
    ///   version-mismatched, foreign — a miss counted under
    ///   `corrupt_entries`, and the file is deleted so it cannot consume
    ///   cap space forever.
    pub fn get(&self, fingerprint: Fingerprint, key: u64) -> Option<TestOutcome> {
        let path = self.entry_path(fingerprint, key);
        let bytes = match self.read_entry(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_entry(&bytes, fingerprint, key) {
            Some(outcome) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            None => {
                self.corrupt_entries.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads one entry file, consulting the fault hook and retrying once
    /// (after [`READ_RETRY_BACKOFF`]) on any error other than `NotFound`.
    fn read_entry(&self, path: &Path) -> io::Result<Vec<u8>> {
        let first = match injected_fault(StoreOp::Read) {
            Some(e) => Err(e),
            None => std::fs::read(path),
        };
        match first {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(e),
            Err(_) => {
                std::thread::sleep(READ_RETRY_BACKOFF);
                match injected_fault(StoreOp::Read) {
                    Some(e) => Err(e),
                    None => std::fs::read(path),
                }
            }
        }
    }

    /// Persists an outcome (best effort: I/O errors disable nothing and
    /// corrupt nothing — the entry is simply absent next time).
    pub fn put(&self, fingerprint: Fingerprint, key: u64, outcome: &TestOutcome) {
        if injected_fault(StoreOp::Write).is_some() {
            return;
        }
        let path = self.entry_path(fingerprint, key);
        let bytes = render_entry(fingerprint, key, outcome);
        let Some(parent) = path.parent() else { return };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        let tmp = parent.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let replaced = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        let added = (bytes.len() as u64).saturating_sub(replaced);
        let total = self.bytes.fetch_add(added, Ordering::Relaxed) + added;
        if total > self.cap {
            self.evict();
        }
    }

    /// Every entry file currently in the store (skips temporaries and
    /// foreign names).
    fn scan(&self) -> Vec<ScannedEntry> {
        let mut entries = Vec::new();
        let Ok(prefixes) = std::fs::read_dir(&self.dir) else {
            return entries;
        };
        for prefix in prefixes.flatten() {
            let Ok(files) = std::fs::read_dir(prefix.path()) else {
                continue;
            };
            for file in files.flatten() {
                let name = file.file_name();
                let name = name.to_string_lossy();
                // Entry names are `<fp:016x>-<key:016x>`; anything else
                // (temporaries, strays) is not accounted or evicted.
                if name.len() != 33 || name.as_bytes()[16] != b'-' {
                    continue;
                }
                if let Ok(meta) = file.metadata() {
                    entries.push(ScannedEntry {
                        path: file.path(),
                        len: meta.len(),
                        modified: meta.modified().ok(),
                    });
                }
            }
        }
        entries
    }

    /// Evicts oldest-modified entries until the store fits under its cap.
    /// Re-scans the directory first so concurrent writers (including other
    /// processes) are accounted before anything is deleted.
    fn evict(&self) {
        let _guard = self.evict_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries = self.scan();
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total > self.cap {
            // Oldest first; ties broken by path so concurrent evictors
            // converge on the same order.
            entries.sort_by(|a, b| a.modified.cmp(&b.modified).then(a.path.cmp(&b.path)));
            for entry in entries {
                if total <= self.cap {
                    break;
                }
                if std::fs::remove_file(&entry.path).is_ok() {
                    total = total.saturating_sub(entry.len);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.bytes.store(total, Ordering::Relaxed);
    }
}

struct ScannedEntry {
    path: PathBuf,
    len: u64,
    modified: Option<std::time::SystemTime>,
}

/// The size cap from `CLFUZZ_STORE_CAP` (bytes), or the 256 MiB default.
fn cap_from_env() -> u64 {
    std::env::var("CLFUZZ_STORE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAP)
}

/// Serialises an outcome to the payload carried after the header line.  The
/// first payload line is the outcome kind (plus the result hash for `ok`);
/// the rest is the raw message/output text, which may itself contain any
/// bytes — the header's exact payload length makes escaping unnecessary.
fn render_payload(outcome: &TestOutcome) -> Vec<u8> {
    let text = match outcome {
        TestOutcome::Result { hash, output } => format!("ok {hash:016x}\n{output}"),
        TestOutcome::BuildFailure(msg) => format!("bf\n{msg}"),
        TestOutcome::Crash(msg) => format!("c\n{msg}"),
        TestOutcome::Timeout => "to\n".to_string(),
    };
    text.into_bytes()
}

fn parse_payload(payload: &[u8]) -> Option<TestOutcome> {
    let text = std::str::from_utf8(payload).ok()?;
    let (head, rest) = text.split_once('\n')?;
    match head.split(' ').collect::<Vec<_>>().as_slice() {
        ["ok", hash] => Some(TestOutcome::Result {
            hash: u64::from_str_radix(hash, 16).ok()?,
            output: rest.to_string(),
        }),
        ["bf"] => Some(TestOutcome::BuildFailure(rest.to_string())),
        ["c"] => Some(TestOutcome::Crash(rest.to_string())),
        ["to"] => Some(TestOutcome::Timeout),
        _ => None,
    }
}

/// Renders a complete self-checksummed entry file.
fn render_entry(fingerprint: Fingerprint, key: u64, outcome: &TestOutcome) -> Vec<u8> {
    let payload = render_payload(outcome);
    let digest = fnv1a(&payload);
    let prefix = format!(
        "{FORMAT} {:016x} {key:016x} {} {digest:016x}",
        fingerprint.0,
        payload.len()
    );
    let crc = fnv1a(prefix.as_bytes());
    let mut bytes = format!("{prefix} {crc:016x}\n").into_bytes();
    bytes.extend_from_slice(&payload);
    bytes
}

/// Parses and fully validates an entry file; `None` on any defect.
fn parse_entry(bytes: &[u8], fingerprint: Fingerprint, key: u64) -> Option<TestOutcome> {
    let newline = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let payload = &bytes[newline + 1..];
    let (prefix, crc) = header.rsplit_once(' ')?;
    if u64::from_str_radix(crc, 16).ok()? != fnv1a(prefix.as_bytes()) {
        return None;
    }
    let fields: Vec<&str> = prefix.split(' ').collect();
    // "CLFUZZ-STORE" "1" fp key len digest
    if fields.len() != 6 || fields[0] != "CLFUZZ-STORE" || fields[1] != "1" {
        return None;
    }
    if u64::from_str_radix(fields[2], 16).ok()? != fingerprint.0
        || u64::from_str_radix(fields[3], 16).ok()? != key
    {
        return None;
    }
    let len: usize = fields[4].parse().ok()?;
    if payload.len() != len {
        return None;
    }
    if u64::from_str_radix(fields[5], 16).ok()? != fnv1a(payload) {
        return None;
    }
    parse_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clfuzz-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_outcomes() -> Vec<TestOutcome> {
        vec![
            TestOutcome::Result {
                hash: 0xDEAD_BEEF,
                output: "1,2,3\nwith a second line, and spaces".into(),
            },
            TestOutcome::BuildFailure("front end said no [ref]".into()),
            TestOutcome::Crash("segfault".into()),
            TestOutcome::Timeout,
        ]
    }

    #[test]
    fn entries_roundtrip_every_outcome_kind() {
        for (i, outcome) in sample_outcomes().into_iter().enumerate() {
            let fp = Fingerprint(0x1234 + i as u64);
            let key = 0x9999 + i as u64;
            let bytes = render_entry(fp, key, &outcome);
            assert_eq!(parse_entry(&bytes, fp, key), Some(outcome));
        }
    }

    #[test]
    fn any_single_bit_flip_is_a_miss_never_a_wrong_outcome() {
        let fp = Fingerprint(0xAB);
        let key = 7;
        let outcome = TestOutcome::Result {
            hash: 42,
            output: "5,5,5".into(),
        };
        let bytes = render_entry(fp, key, &outcome);
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let parsed = parse_entry(&flipped, fp, key);
            assert!(
                parsed.is_none() || parsed == Some(outcome.clone()),
                "bit flip {bit} produced a different outcome"
            );
            // Strictly: flips inside checksummed regions must be misses.
            assert_ne!(
                flipped, bytes,
                "flip must change the bytes (test is self-checking)"
            );
        }
        // Truncations at every length are misses.
        for cut in 0..bytes.len() {
            assert_eq!(parse_entry(&bytes[..cut], fp, key), None, "cut at {cut}");
        }
    }

    #[test]
    fn wrong_key_wrong_fingerprint_and_wrong_version_are_misses() {
        let fp = Fingerprint(0xAB);
        let key = 7;
        let bytes = render_entry(fp, key, &TestOutcome::Timeout);
        assert_eq!(parse_entry(&bytes, Fingerprint(0xAC), key), None);
        assert_eq!(parse_entry(&bytes, fp, 8), None);
        // A version bump invalidates old entries even with a valid crc.
        let text = String::from_utf8(bytes).unwrap();
        let bumped = text.replace("CLFUZZ-STORE 1", "CLFUZZ-STORE 2");
        let (prefix, _) = bumped.split_once('\n').unwrap();
        let (fields, _) = prefix.rsplit_once(' ').unwrap();
        let crc = fnv1a(fields.as_bytes());
        let mut rebuilt = format!("{fields} {crc:016x}\n").into_bytes();
        rebuilt.extend_from_slice(b"to\n");
        assert_eq!(parse_entry(&rebuilt, fp, key), None);
    }

    #[test]
    fn store_roundtrips_and_counts() {
        let dir = temp_store("roundtrip");
        let store = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        let fp = Fingerprint(0xF00);
        assert_eq!(store.get(fp, 1), None);
        for (i, outcome) in sample_outcomes().into_iter().enumerate() {
            store.put(fp, i as u64, &outcome);
            assert_eq!(store.get(fp, i as u64), Some(outcome));
        }
        let stats = store.stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 4);
        assert!(stats.bytes > 0);
        // A second handle over the same directory sees the entries (and
        // accounts their bytes at open).
        let reopened = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        assert_eq!(reopened.stats().bytes, stats.bytes);
        assert!(reopened.get(fp, 0).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_on_disk_degrade_to_misses() {
        let dir = temp_store("corrupt");
        let store = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        let fp = Fingerprint(0xC0);
        store.put(fp, 0, &TestOutcome::Timeout);
        let path = store.entry_path(fp, 0);
        // Bit-flip the file in place.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(fp, 0), None);
        assert!(!path.exists(), "corrupt entry should be deleted");
        // Truncated file: also a miss.
        store.put(fp, 1, &TestOutcome::Crash("boom".into()));
        let path = store.entry_path(fp, 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert_eq!(store.get(fp, 1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_counted_and_deleted_but_absence_is_not() {
        let dir = temp_store("corrupt-count");
        let store = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        let fp = Fingerprint(0xC1);
        // Absent entry: plain miss, nothing counted as corruption.
        assert_eq!(store.get(fp, 0), None);
        assert_eq!(store.stats().corrupt_entries, 0);
        assert_eq!(store.stats().transient_errors, 0);
        // Corrupt entry: counted once, deleted, and the follow-up lookup is
        // a plain miss again.
        store.put(fp, 0, &TestOutcome::Timeout);
        let path = store.entry_path(fp, 0);
        std::fs::write(&path, b"not a store entry").unwrap();
        assert_eq!(store.get(fp, 0), None);
        assert!(!path.exists());
        assert_eq!(store.get(fp, 0), None);
        let stats = store.stats();
        assert_eq!(stats.corrupt_entries, 1);
        assert_eq!(stats.transient_errors, 0);
        assert_eq!(stats.misses, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Serialises tests that install the process-global fault hook.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    /// Installs a hook that fires only for operations issued from the
    /// calling thread (so unrelated tests running concurrently pass
    /// through), failing the first `n` matching operations of kind `op`.
    fn fail_next_on_this_thread(op: StoreOp, n: u64) {
        let me = std::thread::current().id();
        let remaining = AtomicU64::new(n);
        set_io_fault_hook(Some(Arc::new(move |kind, _ordinal| {
            if kind != op || std::thread::current().id() != me {
                return None;
            }
            let left = remaining.load(Ordering::Relaxed);
            if left == 0 {
                return None;
            }
            remaining.store(left - 1, Ordering::Relaxed);
            Some(io::ErrorKind::Other)
        })));
    }

    #[test]
    fn transient_read_error_is_retried_and_recovers() {
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_store("transient-recover");
        let store = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        let fp = Fingerprint(0xEE);
        store.put(fp, 0, &TestOutcome::Timeout);
        fail_next_on_this_thread(StoreOp::Read, 1);
        assert_eq!(store.get(fp, 0), Some(TestOutcome::Timeout));
        set_io_fault_hook(None);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.transient_errors, 0, "recovered retry is not an error");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_read_error_counts_transient_and_preserves_the_entry() {
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_store("transient-exhaust");
        let store = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        let fp = Fingerprint(0xEF);
        store.put(fp, 0, &TestOutcome::Timeout);
        fail_next_on_this_thread(StoreOp::Read, 2);
        assert_eq!(store.get(fp, 0), None, "both attempts failed");
        set_io_fault_hook(None);
        let stats = store.stats();
        assert_eq!(stats.transient_errors, 1);
        assert_eq!(stats.corrupt_entries, 0);
        assert!(
            store.entry_path(fp, 0).exists(),
            "transient failure must not delete the entry"
        );
        // With the fault gone, the same lookup hits.
        assert_eq!(store.get(fp, 0), Some(TestOutcome::Timeout));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_fault_skips_publication_silently() {
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_store("write-fault");
        let store = OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap();
        let fp = Fingerprint(0xF0);
        fail_next_on_this_thread(StoreOp::Write, 1);
        store.put(fp, 0, &TestOutcome::Timeout);
        set_io_fault_hook(None);
        assert_eq!(store.stats().writes, 0);
        assert_eq!(store.get(fp, 0), None, "faulted put published nothing");
        // The next put goes through.
        store.put(fp, 0, &TestOutcome::Timeout);
        assert_eq!(store.get(fp, 0), Some(TestOutcome::Timeout));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_the_store_under_its_cap() {
        let dir = temp_store("evict");
        // A tiny cap: every entry is ~60 bytes, so 4 writes must evict.
        let store = OutcomeStore::open_with_cap(&dir, 150).unwrap();
        for i in 0..8u64 {
            store.put(Fingerprint(i << 56 | i), i, &TestOutcome::Timeout);
        }
        let stats = store.stats();
        assert!(stats.evictions > 0, "cap 150 must force evictions");
        assert!(
            stats.bytes <= 150,
            "store over cap after eviction: {stats:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
