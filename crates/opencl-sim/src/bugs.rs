//! Injected bug models.
//!
//! A simulated configuration is "buggy" in exactly the ways §6 and Figures
//! 1–2 of the paper describe the real drivers to be.  Each [`BugRule`] pairs
//! a *trigger* — a static feature query over the program under test — with an
//! *effect*.  Wrong-code effects are realised as genuine AST-to-AST
//! transformations applied during simulated compilation, so the differential
//! and EMI harnesses detect them exactly as the paper's harness does: by
//! result mismatch, never by peeking at labels.

use clc::expr::{BinOp, Builtin, Expr};
use clc::stmt::{Initializer, Stmt};
use clc::types::{ScalarType, Type};
use clc::{Features, Program};

/// Whether a kernel is compiled with optimisations enabled (`i+`) or disabled
/// via `-cl-opt-disable` (`i-`), following the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// `-cl-opt-disable` (the paper's `i−`).
    Disabled,
    /// Default optimising compilation (the paper's `i+`).
    Enabled,
}

impl OptLevel {
    /// Both levels, disabled first (matching the column order of Table 4).
    pub const BOTH: [OptLevel; 2] = [OptLevel::Disabled, OptLevel::Enabled];

    /// The paper's suffix notation: `-` or `+`.
    pub fn suffix(self) -> &'static str {
        match self {
            OptLevel::Disabled => "-",
            OptLevel::Enabled => "+",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// At which optimisation levels a rule is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptScope {
    /// Active regardless of optimisation level (the paper's `i±`).
    Any,
    /// Only when optimisations are enabled (`i+`).
    OnlyEnabled,
    /// Only when optimisations are disabled (`i−`).
    OnlyDisabled,
}

impl OptScope {
    /// Whether the scope covers the given level.
    pub fn covers(self, opt: OptLevel) -> bool {
        match self {
            OptScope::Any => true,
            OptScope::OnlyEnabled => opt == OptLevel::Enabled,
            OptScope::OnlyDisabled => opt == OptLevel::Disabled,
        }
    }
}

/// A concrete miscompiling transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Miscompilation {
    /// Figure 1(a) (AMD): structs whose first field is `char` followed by a
    /// wider member lose the wider member's initialiser.
    ZeroSecondFieldOfCharWiderStructInit,
    /// Figure 1(b) (anonymous GPU, `-cl-opt-disable`): whole-struct
    /// assignments are dropped, so later reads through a pointer see stale
    /// values.
    DropWholeStructAssignments,
    /// Figure 2(a) (NVIDIA, `-cl-opt-disable`): brace-initialised unions get
    /// garbage in their upper bytes.
    UnionInitializerGarbage,
    /// Figure 2(b) (Intel i5): `rotate(x, 0)` is constant-folded to all-ones.
    FoldRotateByZeroToAllOnes,
    /// Figures 1(d)/2(c) (Intel CPU `-`, anonymous CPU): in kernels that use
    /// barriers, stores through pointer parameters of non-inlined helper
    /// functions are lost.
    DropPointerWritesInCallees,
    /// Figure 2(f) (Oclgrind): the comma operator yields its left operand.
    CommaYieldsLhs,
    /// Figure 2(e) (anonymous GPU, `+`): comparisons with a group id operand
    /// are folded to false.
    GroupIdComparisonsFoldToFalse,
    /// §7.3 (Intel i7 `-`): the work-group vectoriser mishandles clamp/min/max
    /// in kernels that synchronise with barriers; `safe_clamp` collapses to
    /// its first argument.
    SkipClampNearBarriers,
    /// Generic wrong-code flake: the literal whose index is derived from the
    /// given salt is perturbed by one.  Used to model configurations with a
    /// measurable background miscompilation rate (e.g. configuration 9).
    PerturbLiteral(u64),
}

impl Miscompilation {
    /// Stable coverage bit for this transform (declaration order), used by
    /// the feedback layer's miscompilation word.  Every `PerturbLiteral`
    /// shares one bit: the salt selects *where* the flake lands, not a
    /// distinct bug.
    pub fn coverage_bit(&self) -> u32 {
        match self {
            Miscompilation::ZeroSecondFieldOfCharWiderStructInit => 0,
            Miscompilation::DropWholeStructAssignments => 1,
            Miscompilation::UnionInitializerGarbage => 2,
            Miscompilation::FoldRotateByZeroToAllOnes => 3,
            Miscompilation::DropPointerWritesInCallees => 4,
            Miscompilation::CommaYieldsLhs => 5,
            Miscompilation::GroupIdComparisonsFoldToFalse => 6,
            Miscompilation::SkipClampNearBarriers => 7,
            Miscompilation::PerturbLiteral(_) => 8,
        }
    }
}

/// The observable effect of a triggered bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BugEffect {
    /// A miscompilation (wrong code).
    Miscompile(Miscompilation),
    /// The build fails with a diagnostic.
    BuildFailure(&'static str),
    /// The compiler hangs (Figure 1(e)) or is prohibitively slow
    /// (Figure 1(f)); the harness observes a timeout.
    CompileHang(&'static str),
    /// The compiled kernel crashes at runtime (or takes the machine down,
    /// which the paper counts in the same bucket during batch testing).
    RuntimeCrash(&'static str),
}

/// When a rule fires.
#[derive(Clone, Copy)]
pub enum Trigger {
    /// Fires on every program.
    Always,
    /// Fires when the predicate holds on the program's features.
    Feature(fn(&Features, &Program) -> bool),
}

impl std::fmt::Debug for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trigger::Always => write!(f, "Always"),
            Trigger::Feature(_) => write!(f, "Feature(..)"),
        }
    }
}

/// One injected compiler bug.
#[derive(Debug, Clone)]
pub struct BugRule {
    /// Short identifier (used in reports).
    pub name: &'static str,
    /// Where the paper describes the bug (figure or section).
    pub reference: &'static str,
    /// Optimisation levels at which the bug manifests.
    pub opt: OptScope,
    /// Trigger condition.
    pub trigger: Trigger,
    /// Effect when triggered.
    pub effect: BugEffect,
}

impl BugRule {
    /// Whether the rule fires for this program at this optimisation level.
    pub fn applies(&self, features: &Features, program: &Program, opt: OptLevel) -> bool {
        if !self.opt.covers(opt) {
            return false;
        }
        match self.trigger {
            Trigger::Always => true,
            Trigger::Feature(f) => f(features, program),
        }
    }
}

/// Applies a miscompiling transformation to the program in place.
pub fn apply_miscompilation(program: &mut Program, bug: Miscompilation) {
    match bug {
        Miscompilation::ZeroSecondFieldOfCharWiderStructInit => {
            let victims: Vec<clc::StructId> = program
                .structs
                .iter()
                .enumerate()
                .filter(|(_, def)| {
                    !def.is_union
                        && matches!(
                            (def.fields.first(), def.fields.get(1)),
                            (Some(a), Some(b))
                                if matches!(&a.ty, Type::Scalar(s) if s.bits() == 8)
                                    && b.ty.scalar_elem().map(|s| s.bits() > 8).unwrap_or(false)
                        )
                })
                .map(|(i, _)| clc::StructId(i))
                .collect();
            if victims.is_empty() {
                return;
            }
            program.for_each_block_mut(&mut |block| {
                for stmt in &mut block.stmts {
                    if let Stmt::Decl {
                        ty: Type::Struct(id),
                        init_list: Some(Initializer::List(items)),
                        ..
                    } = stmt
                    {
                        if victims.contains(id) {
                            if let Some(second) = items.get_mut(1) {
                                *second = Initializer::Expr(Expr::int(0));
                            }
                        }
                    }
                }
            });
        }
        Miscompilation::DropWholeStructAssignments => {
            // Collect struct-typed locals, then delete `s = t` statements at
            // struct type.
            let mut struct_vars = std::collections::HashSet::new();
            program.for_each_stmt(&mut |s| {
                if let Stmt::Decl {
                    name,
                    ty: Type::Struct(_),
                    ..
                } = s
                {
                    struct_vars.insert(name.clone());
                }
            });
            program.for_each_block_mut(&mut |block| {
                block.stmts.retain(|stmt| {
                    !matches!(
                        stmt,
                        Stmt::Expr(Expr::Assign { op: clc::AssignOp::Assign, lhs, rhs })
                            if matches!(lhs.as_ref(), Expr::Var(l) if struct_vars.contains(l))
                                && matches!(rhs.as_ref(), Expr::Var(r) if struct_vars.contains(r))
                    )
                });
            });
        }
        Miscompilation::UnionInitializerGarbage => {
            let unions: Vec<clc::StructId> = program
                .structs
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_union)
                .map(|(i, _)| clc::StructId(i))
                .collect();
            if unions.is_empty() {
                return;
            }
            let union_field_types: Vec<Type> = unions.iter().map(|id| Type::Struct(*id)).collect();
            program.for_each_block_mut(&mut |block| {
                for stmt in &mut block.stmts {
                    if let Stmt::Decl {
                        ty,
                        init_list: Some(list),
                        ..
                    } = stmt
                    {
                        corrupt_union_inits(ty, list, &union_field_types);
                    }
                }
            });

            // Helper: `for_each_block_mut` holds a mutable borrow of the
            // program, so the corrupting walk is structural only: it uses
            // the type stored in the declaration (sufficient because nested
            // aggregate types are spelled out in the declaration type).
            fn corrupt_union_inits(ty: &Type, init: &mut Initializer, unions: &[Type]) {
                match (ty, init) {
                    (t, Initializer::List(items)) if unions.contains(t) => {
                        if let Some(Initializer::Expr(e)) = items.first_mut() {
                            *e = Expr::binary(
                                BinOp::BitOr,
                                e.clone(),
                                Expr::lit(0xffff_0000, ScalarType::UInt),
                            );
                        }
                    }
                    (Type::Array(elem, _), Initializer::List(items)) => {
                        for item in items {
                            corrupt_union_inits(elem, item, unions);
                        }
                    }
                    (Type::Struct(_), Initializer::List(items)) => {
                        // Without the field table we conservatively corrupt
                        // any nested list that *itself* wraps a further list —
                        // the Figure 2(a) shape `{{1}}`.
                        for item in items.iter_mut() {
                            if let Initializer::List(inner) = item {
                                if let Some(Initializer::List(innermost)) = inner.first_mut() {
                                    if let Some(Initializer::Expr(e)) = innermost.first_mut() {
                                        *e = Expr::binary(
                                            BinOp::BitOr,
                                            e.clone(),
                                            Expr::lit(0xffff_0000, ScalarType::UInt),
                                        );
                                    }
                                } else if let Some(Initializer::Expr(_)) = inner.first() {
                                    // plain nested struct — leave alone
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Miscompilation::FoldRotateByZeroToAllOnes => {
            program.for_each_expr_mut(&mut |e| {
                if let Expr::BuiltinCall {
                    func: Builtin::Rotate,
                    args,
                } = e
                {
                    if args.len() == 2 && is_zero_valued(&args[1]) {
                        let x = args[0].clone();
                        *e =
                            Expr::binary(BinOp::BitOr, x, Expr::lit(0xffff_ffff, ScalarType::UInt));
                    }
                }
            });
        }
        Miscompilation::DropPointerWritesInCallees => {
            let mut pointer_params: Vec<Vec<String>> = Vec::new();
            for f in &program.functions {
                pointer_params.push(
                    f.params
                        .iter()
                        .filter(|p| p.ty.is_pointer())
                        .map(|p| p.name.clone())
                        .collect(),
                );
            }
            for (f, params) in program.functions.iter_mut().zip(pointer_params) {
                if params.is_empty() {
                    continue;
                }
                strip_pointer_param_stores(&mut f.body, &params);
            }

            fn strip_pointer_param_stores(block: &mut clc::Block, params: &[String]) {
                block.stmts.retain(|stmt| {
                    !matches!(
                        stmt,
                        Stmt::Expr(Expr::Assign { lhs, .. })
                            if assigns_through(lhs, params)
                    )
                });
                for stmt in &mut block.stmts {
                    match stmt {
                        Stmt::If {
                            then_block,
                            else_block,
                            ..
                        } => {
                            strip_pointer_param_stores(then_block, params);
                            if let Some(e) = else_block {
                                strip_pointer_param_stores(e, params);
                            }
                        }
                        Stmt::For { body, .. } | Stmt::While { body, .. } => {
                            strip_pointer_param_stores(body, params)
                        }
                        Stmt::Block(b) => strip_pointer_param_stores(b, params),
                        _ => {}
                    }
                }
            }

            fn assigns_through(lhs: &Expr, params: &[String]) -> bool {
                match lhs {
                    Expr::Field {
                        base, arrow: true, ..
                    }
                    | Expr::Deref(base) => {
                        matches!(base.as_ref(), Expr::Var(n) if params.contains(n))
                    }
                    Expr::Index { base, .. } => {
                        matches!(base.as_ref(), Expr::Var(n) if params.contains(n))
                    }
                    _ => false,
                }
            }
        }
        Miscompilation::CommaYieldsLhs => {
            program.for_each_expr_mut(&mut |e| {
                if let Expr::Comma { lhs, .. } = e {
                    *e = (**lhs).clone();
                }
            });
        }
        Miscompilation::GroupIdComparisonsFoldToFalse => {
            program.for_each_expr_mut(&mut |e| {
                if let Expr::Binary { op, lhs, rhs } = e {
                    if op.is_comparison() && (mentions_group_id(lhs) || mentions_group_id(rhs)) {
                        *e = Expr::int(0);
                    }
                }
            });
        }
        Miscompilation::SkipClampNearBarriers => {
            program.for_each_expr_mut(&mut |e| {
                if let Expr::BuiltinCall {
                    func: Builtin::SafeClamp,
                    args,
                } = e
                {
                    if let Some(x) = args.first() {
                        *e = x.clone();
                    }
                }
            });
        }
        Miscompilation::PerturbLiteral(salt) => {
            // Count the literals, pick one by the salt, add one to it.  The
            // hash-fold multiplier literals are skipped so the perturbation
            // lands on "real" program constants.
            let mut literals = 0usize;
            program.for_each_expr(&mut |e| {
                if matches!(e, Expr::IntLit { .. }) {
                    literals += 1;
                }
            });
            if literals == 0 {
                return;
            }
            let target = (salt as usize) % literals;
            let mut index = 0usize;
            program.for_each_expr_mut(&mut |e| {
                if let Expr::IntLit { value, ty } = e {
                    if index == target {
                        let perturbed = value.wrapping_add(1).clamp(ty.min_value(), ty.max_value());
                        *value = perturbed;
                    }
                    index += 1;
                }
            });
        }
    }
}

fn mentions_group_id(e: &Expr) -> bool {
    use clc::IdKind;
    fn direct(e: &Expr) -> bool {
        matches!(
            e,
            Expr::IdQuery(IdKind::GroupId(_)) | Expr::IdQuery(IdKind::GroupLinearId)
        )
    }
    match e {
        _ if direct(e) => true,
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => direct(expr),
        Expr::Binary { lhs, rhs, .. } => direct(lhs) || direct(rhs),
        _ => false,
    }
}

fn is_zero_valued(e: &Expr) -> bool {
    match e {
        Expr::IntLit { value, .. } => *value == 0,
        Expr::VectorLit { parts, .. } => parts.iter().all(is_zero_valued),
        Expr::Cast { expr, .. } => is_zero_valued(expr),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Common feature predicates used by the configurations.
// ---------------------------------------------------------------------------

/// Struct with a `char` first field followed by a wider member (Figure 1(a)).
pub fn has_char_then_wider_struct(f: &Features, _p: &Program) -> bool {
    f.struct_char_then_wider
}

/// Whole-struct assignment read back through a pointer, only when the first
/// NDRange dimension is 1 (the curious condition of Figure 1(b)).
pub fn struct_copy_with_unit_x_dimension(f: &Features, p: &Program) -> bool {
    f.whole_struct_assignment && f.struct_read_through_pointer && p.launch.global[0] == 1
}

/// Vector types appearing inside structs (Figure 1(c), Altera ICE).
pub fn has_vector_in_struct(f: &Features, _p: &Program) -> bool {
    f.vector_in_struct
}

/// Barrier plus helper-function stores through a struct pointer
/// (Figure 1(d) / 2(c)).
pub fn barrier_and_callee_pointer_store(f: &Features, _p: &Program) -> bool {
    f.barrier_count > 0 && f.struct_written_through_pointer_param
}

/// Barrier inside a forward-declared callee (Figure 2(c)).
pub fn barrier_in_forward_declared_callee(f: &Features, _p: &Program) -> bool {
    f.barrier_in_forward_declared_callee
}

/// `while (1)` nested under a `for` loop whose literal bound reaches 197
/// (Figure 1(e), the Intel HD compile hang).
pub fn deep_infinite_loop(f: &Features, _p: &Program) -> bool {
    f.has_infinite_loop && f.max_for_bound_over_infinite_loop >= 197
}

/// Large struct together with a barrier (Figure 1(f), Xeon Phi slow compile).
pub fn large_struct_with_barrier(f: &Features, _p: &Program) -> bool {
    f.max_struct_cells >= 24 && f.barrier_count > 0
}

/// Union initialised inside a struct initialiser (Figure 2(a)).
pub fn union_in_struct_initializer(f: &Features, _p: &Program) -> bool {
    f.union_in_initializer
}

/// `rotate` applied with a literal-zero rotation (Figure 2(b)).
pub fn rotate_by_zero(f: &Features, _p: &Program) -> bool {
    f.rotate_by_zero_literal
}

/// Comma operator in a condition (Figure 2(f)) or anywhere (the Oclgrind bug
/// affects any use of the operator).
pub fn uses_comma_operator(f: &Features, _p: &Program) -> bool {
    f.uses_comma
}

/// Group id used as a comparison operand (Figure 2(e)).
pub fn group_id_compared(f: &Features, _p: &Program) -> bool {
    f.group_id_in_comparison
}

/// `int` mixed with a `size_t` work-item id under an arithmetic/bitwise
/// operator (the configuration-15 front-end rejection of §6).
pub fn int_mixed_with_size_t(f: &Features, _p: &Program) -> bool {
    f.id_mixed_with_int
}

/// Logical operators applied to vectors (the Altera front-end rejection, §6).
pub fn vector_logical_ops(f: &Features, _p: &Program) -> bool {
    f.vector_logical_op
}

/// Kernels that synchronise with barriers (used for the Intel CPU barrier /
/// vectoriser bugs of §7.3 and the crash blow-ups of configurations 14/15).
pub fn uses_barriers(f: &Features, _p: &Program) -> bool {
    f.barrier_count > 0
}

/// Kernels making heavy use of barriers (two or more).
pub fn barrier_heavy(f: &Features, _p: &Program) -> bool {
    f.barrier_count >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::{BufferSpec, Field, KernelDef, LaunchConfig, StructDef};

    fn base() -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: clc::Block::new(),
            },
            LaunchConfig::single_group(2),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 2));
        p
    }

    #[test]
    fn opt_scope_coverage() {
        assert!(OptScope::Any.covers(OptLevel::Enabled));
        assert!(OptScope::Any.covers(OptLevel::Disabled));
        assert!(OptScope::OnlyEnabled.covers(OptLevel::Enabled));
        assert!(!OptScope::OnlyEnabled.covers(OptLevel::Disabled));
        assert!(OptScope::OnlyDisabled.covers(OptLevel::Disabled));
        assert_eq!(OptLevel::Enabled.suffix(), "+");
    }

    #[test]
    fn char_wider_struct_initialiser_is_zeroed() {
        let mut p = base();
        let sid = p.add_struct(StructDef::new(
            "S",
            vec![
                Field::new("a", Type::Scalar(ScalarType::Char)),
                Field::new("b", Type::Scalar(ScalarType::Short)),
            ],
        ));
        p.kernel.body.push(Stmt::decl_init_list(
            "s",
            Type::Struct(sid),
            Initializer::of_exprs(vec![Expr::int(1), Expr::int(1)]),
        ));
        p.kernel.body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::binary(
                BinOp::Add,
                Expr::field(Expr::var("s"), "a"),
                Expr::field(Expr::var("s"), "b"),
            ),
        ));
        let clean = clc_interp::run(&p).unwrap();
        assert_eq!(clean.output[0].as_u64(), 2);
        apply_miscompilation(&mut p, Miscompilation::ZeroSecondFieldOfCharWiderStructInit);
        let buggy = clc_interp::run(&p).unwrap();
        // The miscompiled kernel computes 1, as configurations 5+/6+/16+ do
        // in Figure 1(a).
        assert_eq!(buggy.output[0].as_u64(), 1);
    }

    #[test]
    fn rotate_by_zero_folds_to_all_ones() {
        let mut e = Expr::builtin(
            Builtin::Rotate,
            vec![
                Expr::lit(1, ScalarType::UInt),
                Expr::lit(0, ScalarType::UInt),
            ],
        );
        let mut p = base();
        p.kernel.body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            e.clone(),
        ));
        apply_miscompilation(&mut p, Miscompilation::FoldRotateByZeroToAllOnes);
        let buggy = clc_interp::run(&p).unwrap();
        assert_eq!(buggy.output[0].as_u64(), 0xffff_ffff);
        // Non-zero rotations are untouched.
        e = Expr::builtin(
            Builtin::Rotate,
            vec![
                Expr::lit(1, ScalarType::UInt),
                Expr::lit(3, ScalarType::UInt),
            ],
        );
        let mut q = base();
        q.kernel
            .body
            .push(Stmt::assign(Expr::index(Expr::var("out"), Expr::int(0)), e));
        apply_miscompilation(&mut q, Miscompilation::FoldRotateByZeroToAllOnes);
        assert_eq!(clc_interp::run(&q).unwrap().output[0].as_u64(), 8);
    }

    #[test]
    fn comma_bug_changes_value() {
        let mut p = base();
        p.kernel.body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::comma(Expr::int(7), Expr::int(3)),
        ));
        assert_eq!(clc_interp::run(&p).unwrap().output[0].as_u64(), 3);
        apply_miscompilation(&mut p, Miscompilation::CommaYieldsLhs);
        assert_eq!(clc_interp::run(&p).unwrap().output[0].as_u64(), 7);
    }

    #[test]
    fn group_id_comparison_folds_to_false() {
        let mut p = base();
        p.kernel.body.push(Stmt::decl(
            "x",
            Type::Scalar(ScalarType::Int),
            Some(Expr::int(0)),
        ));
        p.kernel.body.push(Stmt::if_then(
            Expr::binary(
                BinOp::Ne,
                Expr::binary(
                    BinOp::Sub,
                    Expr::var("x"),
                    Expr::IdQuery(clc::IdKind::GroupId(clc::Dim::X)),
                ),
                Expr::int(1),
            ),
            clc::Block::of(vec![Stmt::assign(Expr::var("x"), Expr::int(1))]),
        ));
        p.kernel.body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::var("x"),
        ));
        assert_eq!(clc_interp::run(&p).unwrap().output[0].as_u64(), 1);
        apply_miscompilation(&mut p, Miscompilation::GroupIdComparisonsFoldToFalse);
        assert_eq!(clc_interp::run(&p).unwrap().output[0].as_u64(), 0);
    }

    #[test]
    fn literal_perturbation_changes_some_result() {
        let mut p = base();
        p.kernel.body.push(Stmt::assign(
            Expr::index(Expr::var("out"), Expr::int(0)),
            Expr::int(41),
        ));
        apply_miscompilation(&mut p, Miscompilation::PerturbLiteral(1));
        let r = clc_interp::run(&p).unwrap();
        // One of the two literals (index or value) was bumped; either way the
        // program changed.
        assert!(r.output[0].as_u64() == 42 || r.output.get(1).map(|s| s.as_u64()) == Some(41));
    }

    #[test]
    fn trigger_predicates_match_features() {
        let p = base();
        let f = Features::detect(&p);
        assert!(!has_char_then_wider_struct(&f, &p));
        assert!(!uses_barriers(&f, &p));
        let rule = BugRule {
            name: "always",
            reference: "-",
            opt: OptScope::OnlyEnabled,
            trigger: Trigger::Always,
            effect: BugEffect::BuildFailure("boom"),
        };
        assert!(rule.applies(&f, &p, OptLevel::Enabled));
        assert!(!rule.applies(&f, &p, OptLevel::Disabled));
    }
}
