//! The 21 simulated (device, driver) configurations of Table 1.
//!
//! Each configuration carries the metadata of the table row (SDK, device,
//! driver, OpenCL version, OS, device type), the reliability classification
//! the paper reports in the final column, and a *behaviour model*: the bug
//! rules of §6 / Figures 1–2 that apply to it plus background outcome rates
//! that reproduce the statistical shape of Tables 3–5.  Anonymous vendors
//! are kept anonymous, as in the paper.

use crate::bugs::{self, BugEffect, BugRule, Miscompilation, OptLevel, OptScope, Trigger};

/// Kind of OpenCL device (final classification column group of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// Discrete or integrated GPU.
    Gpu,
    /// Multi-core CPU.
    Cpu,
    /// Co-processor (Xeon Phi).
    Accelerator,
    /// Software emulator (Oclgrind, Altera emulation flow).
    Emulator,
    /// FPGA.
    Fpga,
}

impl DeviceType {
    /// Human-readable name as used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            DeviceType::Gpu => "GPU",
            DeviceType::Cpu => "CPU",
            DeviceType::Accelerator => "Accelerator",
            DeviceType::Emulator => "Emulator",
            DeviceType::Fpga => "FPGA",
        }
    }
}

/// Background outcome rates for one optimisation level.
///
/// These model failure modes that are not tied to a single reproducible
/// feature (driver flakiness, machine crashes during batch testing, slow
/// compilation): the probability that a given kernel hits each outcome.  The
/// decision is a deterministic hash of (kernel, configuration, opt level), so
/// campaigns are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OutcomeRates {
    /// Probability of a build failure.
    pub build_failure: f64,
    /// Probability of a background miscompilation (realised by perturbing a
    /// literal so that differential/EMI voting can observe it).
    pub wrong_code: f64,
    /// Probability of a runtime crash (includes the paper's machine crashes).
    pub runtime_crash: f64,
    /// Probability of a timeout (slow compilation or slow execution).
    pub timeout: f64,
    /// Extra crash probability for kernels that use barriers (configurations
    /// 14/15 show a dramatic crash increase on BARRIER / ATOMIC REDUCTION /
    /// ALL kernels, §7.3).
    pub barrier_crash_bonus: f64,
    /// Extra wrong-code probability for kernels that use barriers
    /// (configurations 12/13 with optimisations disabled, §7.3).
    pub barrier_wrong_bonus: f64,
}

/// One simulated OpenCL configuration (a Table 1 row).
#[derive(Debug, Clone)]
pub struct Configuration {
    /// Row number in Table 1 (1–21).
    pub id: usize,
    /// SDK column.
    pub sdk: &'static str,
    /// Device column.
    pub device: &'static str,
    /// Driver / compiler column.
    pub driver: &'static str,
    /// OpenCL version column.
    pub opencl: &'static str,
    /// Operating system column.
    pub os: &'static str,
    /// Device type column.
    pub device_type: DeviceType,
    /// The classification the paper reports in the final column
    /// ("Above threshold?").
    pub expected_above_threshold: bool,
    /// Whether the driver's compiler actually optimises (Oclgrind does not,
    /// which is why its `+` and `−` columns are practically identical).
    pub optimizes: bool,
    /// Feature-triggered bug rules.
    pub rules: Vec<BugRule>,
    /// Background rates with optimisations disabled.
    pub rates_opt_off: OutcomeRates,
    /// Background rates with optimisations enabled.
    pub rates_opt_on: OutcomeRates,
}

impl Configuration {
    /// The background rates for the given optimisation level.
    pub fn rates(&self, opt: OptLevel) -> &OutcomeRates {
        match opt {
            OptLevel::Disabled => &self.rates_opt_off,
            OptLevel::Enabled => &self.rates_opt_on,
        }
    }

    /// Short display name, e.g. `"9+"` for configuration 9 with
    /// optimisations enabled.
    pub fn label(&self, opt: OptLevel) -> String {
        format!("{}{}", self.id, opt.suffix())
    }
}

fn rule(
    name: &'static str,
    reference: &'static str,
    opt: OptScope,
    trigger: Trigger,
    effect: BugEffect,
) -> BugRule {
    BugRule {
        name,
        reference,
        opt,
        trigger,
        effect,
    }
}

/// All 21 configurations, in Table 1 order.
pub fn all_configurations() -> Vec<Configuration> {
    use BugEffect::*;
    use Miscompilation::*;
    use OptScope::*;
    use Trigger::Feature;

    let nvidia_gpu = |id: usize,
                      device: &'static str,
                      sdk: &'static str,
                      driver: &'static str,
                      os: &'static str| Configuration {
        id,
        sdk,
        device,
        driver,
        opencl: "1.1",
        os,
        device_type: DeviceType::Gpu,
        expected_above_threshold: true,
        optimizes: true,
        rules: vec![rule(
            "union-initializer-garbage",
            "Figure 2(a)",
            OnlyDisabled,
            Feature(bugs::union_in_struct_initializer),
            Miscompile(UnionInitializerGarbage),
        )],
        rates_opt_off: OutcomeRates {
            // "Wrong type for attribute zeroext" and friends (§6, Build
            // failures): modelled as a background rate of roughly 4 %,
            // matching the ~396/10000 build failures of Table 4 at `-`.
            build_failure: 0.04,
            wrong_code: 0.0012,
            runtime_crash: 0.045,
            timeout: 0.018,
            ..OutcomeRates::default()
        },
        rates_opt_on: OutcomeRates {
            build_failure: 0.0,
            wrong_code: 0.0028,
            runtime_crash: 0.055,
            timeout: 0.0005,
            ..OutcomeRates::default()
        },
    };

    let amd_struct_rules = || {
        vec![
            rule(
                "char-then-wider-struct",
                "Figure 1(a)",
                OnlyEnabled,
                Feature(bugs::has_char_then_wider_struct),
                Miscompile(ZeroSecondFieldOfCharWiderStructInit),
            ),
            rule(
                "irreducible-cfg-rejection",
                "§6 (Build failures)",
                OnlyEnabled,
                Feature(|f, _| f.loop_count >= 4 && f.function_count >= 2),
                BuildFailure("error: irreducible control flow detected"),
            ),
        ]
    };

    let intel_hd_rules = || {
        vec![
            rule(
                "infinite-loop-compile-hang",
                "Figure 1(e)",
                Any,
                Feature(bugs::deep_infinite_loop),
                CompileHang("compiler loops while unrolling"),
            ),
            rule(
                "struct-miscompile",
                "§6 (Problems with structs)",
                OnlyEnabled,
                Feature(bugs::has_char_then_wider_struct),
                Miscompile(ZeroSecondFieldOfCharWiderStructInit),
            ),
        ]
    };

    vec![
        nvidia_gpu(
            1,
            "NVIDIA GeForce GTX Titan",
            "NVIDIA 6.5.19",
            "343.22",
            "Ubuntu 14.04.1 LTS",
        ),
        nvidia_gpu(
            2,
            "NVIDIA GeForce GTX 770",
            "NVIDIA 6.5.19",
            "343.22",
            "Ubuntu 14.04.1 LTS",
        ),
        nvidia_gpu(
            3,
            "NVIDIA Tesla M2050",
            "NVIDIA 7.0.28",
            "346.47",
            "RHEL Server 6.5",
        ),
        nvidia_gpu(
            4,
            "NVIDIA Tesla K40c",
            "NVIDIA 7.0.28",
            "346.47",
            "RHEL Server 6.5",
        ),
        Configuration {
            id: 5,
            sdk: "AMD 2.9-1",
            device: "AMD Radeon HD7970 GHz edition",
            driver: "Catalyst 14.9",
            opencl: "1.2",
            os: "Windows 7 Enterprise",
            device_type: DeviceType::Gpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: amd_struct_rules(),
            rates_opt_off: OutcomeRates {
                build_failure: 0.02,
                wrong_code: 0.03,
                runtime_crash: 0.16,
                timeout: 0.02,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.05,
                wrong_code: 0.03,
                runtime_crash: 0.18,
                timeout: 0.02,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 6,
            sdk: "AMD 2.9-1",
            device: "ATI Radeon HD 6570 650MHz",
            driver: "Catalyst 14.9",
            opencl: "1.2",
            os: "Windows 7 Enterprise",
            device_type: DeviceType::Gpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: amd_struct_rules(),
            rates_opt_off: OutcomeRates {
                build_failure: 0.02,
                wrong_code: 0.03,
                runtime_crash: 0.18,
                timeout: 0.03,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.05,
                wrong_code: 0.03,
                runtime_crash: 0.2,
                timeout: 0.03,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 7,
            sdk: "Intel 4.6",
            device: "Intel HD Graphics 4600",
            driver: "10.18.10.3960",
            opencl: "1.2",
            os: "Windows 7 Enterprise",
            device_type: DeviceType::Gpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: intel_hd_rules(),
            rates_opt_off: OutcomeRates {
                build_failure: 0.03,
                wrong_code: 0.02,
                runtime_crash: 0.22,
                timeout: 0.04,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.03,
                wrong_code: 0.02,
                runtime_crash: 0.24,
                timeout: 0.04,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 8,
            sdk: "Intel 4.6",
            device: "Intel HD Graphics 4000",
            driver: "10.18.10.3412",
            opencl: "1.2",
            os: "Windows 8.1 Pro",
            device_type: DeviceType::Gpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: intel_hd_rules(),
            rates_opt_off: OutcomeRates {
                build_failure: 0.03,
                wrong_code: 0.02,
                runtime_crash: 0.24,
                timeout: 0.06,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.03,
                wrong_code: 0.02,
                runtime_crash: 0.26,
                timeout: 0.06,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 9,
            sdk: "Anon. SDK 1",
            device: "Anon. device 1",
            driver: "Anon. driver 1c",
            opencl: "1.1",
            os: "Linux (anon. version)",
            device_type: DeviceType::Gpu,
            expected_above_threshold: true,
            optimizes: true,
            rules: vec![rule(
                "group-id-comparison",
                "Figure 2(e)",
                OnlyEnabled,
                Feature(bugs::group_id_compared),
                Miscompile(GroupIdComparisonsFoldToFalse),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.0,
                wrong_code: 0.018,
                runtime_crash: 0.038,
                timeout: 0.14,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.0,
                wrong_code: 0.016,
                runtime_crash: 0.026,
                timeout: 0.10,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 10,
            sdk: "Anon. SDK 1",
            device: "Anon. device 1",
            driver: "Anon. driver 1b",
            opencl: "1.1",
            os: "Linux (anon. version)",
            device_type: DeviceType::Gpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: vec![rule(
                "struct-copy-unit-x",
                "Figure 1(b)",
                OnlyDisabled,
                Feature(bugs::struct_copy_with_unit_x_dimension),
                Miscompile(DropWholeStructAssignments),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.05,
                wrong_code: 0.05,
                runtime_crash: 0.24,
                timeout: 0.04,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.05,
                wrong_code: 0.04,
                runtime_crash: 0.24,
                timeout: 0.04,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 11,
            sdk: "Anon. SDK 1",
            device: "Anon. device 1",
            driver: "Anon. driver 1a",
            opencl: "1.1",
            os: "Linux (anon. version)",
            device_type: DeviceType::Gpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: vec![rule(
                "struct-copy-unit-x",
                "Figure 1(b)",
                OnlyDisabled,
                Feature(bugs::struct_copy_with_unit_x_dimension),
                Miscompile(DropWholeStructAssignments),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.06,
                wrong_code: 0.05,
                runtime_crash: 0.25,
                timeout: 0.05,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.06,
                wrong_code: 0.04,
                runtime_crash: 0.25,
                timeout: 0.05,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 12,
            sdk: "Intel 4.6",
            device: "Intel Core i7-4770 @ 3.40 GHz",
            driver: "4.6.0.92",
            opencl: "2.0",
            os: "Windows 7 Enterprise",
            device_type: DeviceType::Cpu,
            expected_above_threshold: true,
            optimizes: true,
            rules: vec![rule(
                "barrier-forward-declared-callee",
                "Figure 2(c)",
                OnlyDisabled,
                Feature(bugs::barrier_in_forward_declared_callee),
                Miscompile(DropPointerWritesInCallees),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.001,
                wrong_code: 0.002,
                runtime_crash: 0.085,
                timeout: 0.026,
                barrier_wrong_bonus: 0.018,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.004,
                wrong_code: 0.0015,
                runtime_crash: 0.062,
                timeout: 0.13,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 13,
            sdk: "Intel 4.6",
            device: "Intel Core i7-4770 @ 3.40 GHz",
            driver: "4.2.0.76",
            opencl: "1.2",
            os: "Windows 7 Enterprise",
            device_type: DeviceType::Cpu,
            expected_above_threshold: true,
            optimizes: true,
            rules: vec![rule(
                "barrier-forward-declared-callee",
                "Figure 2(c)",
                OnlyDisabled,
                Feature(bugs::barrier_in_forward_declared_callee),
                Miscompile(DropPointerWritesInCallees),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.001,
                wrong_code: 0.002,
                runtime_crash: 0.085,
                timeout: 0.027,
                barrier_wrong_bonus: 0.018,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.004,
                wrong_code: 0.0015,
                runtime_crash: 0.06,
                timeout: 0.13,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 14,
            sdk: "Intel 4.6",
            device: "Intel Core i5-3317U @ 1.70 GHz",
            driver: "3.0.1.10878",
            opencl: "1.2",
            os: "Windows 8.1 Pro",
            device_type: DeviceType::Cpu,
            expected_above_threshold: true,
            optimizes: true,
            rules: vec![
                rule(
                    "rotate-constant-fold",
                    "Figure 2(b)",
                    Any,
                    Feature(bugs::rotate_by_zero),
                    Miscompile(FoldRotateByZeroToAllOnes),
                ),
                rule(
                    "barrier-callee-segfault",
                    "Figure 2(c)",
                    OnlyDisabled,
                    Feature(bugs::barrier_in_forward_declared_callee),
                    RuntimeCrash("segmentation fault"),
                ),
            ],
            rates_opt_off: OutcomeRates {
                build_failure: 0.006,
                wrong_code: 0.002,
                runtime_crash: 0.006,
                timeout: 0.027,
                barrier_crash_bonus: 0.36,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.007,
                wrong_code: 0.002,
                runtime_crash: 0.026,
                timeout: 0.045,
                barrier_wrong_bonus: 0.009,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 15,
            sdk: "Intel XE 2013 R20",
            device: "Intel Xeon X5650 @ 2.67GHz",
            driver: "1.2 build 56860",
            opencl: "1.2",
            os: "RHEL Server 6.5",
            device_type: DeviceType::Cpu,
            expected_above_threshold: true,
            optimizes: true,
            rules: vec![
                rule(
                    "int-size_t-rejection",
                    "§6 (Build failures)",
                    Any,
                    Feature(bugs::int_mixed_with_size_t),
                    BuildFailure(
                        "error: invalid operands to binary expression ('int' and 'size_t')",
                    ),
                ),
                rule(
                    "barrier-callee-segfault",
                    "Figure 2(c)",
                    OnlyDisabled,
                    Feature(bugs::barrier_in_forward_declared_callee),
                    RuntimeCrash("segmentation fault"),
                ),
            ],
            rates_opt_off: OutcomeRates {
                build_failure: 0.14,
                wrong_code: 0.002,
                runtime_crash: 0.002,
                timeout: 0.02,
                barrier_crash_bonus: 0.38,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.14,
                wrong_code: 0.007,
                runtime_crash: 0.035,
                timeout: 0.09,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 16,
            sdk: "AMD 2.9-1",
            device: "Intel Xeon E5-2609 v2 @ 2.50GHz",
            driver: "Catalyst 14.9",
            opencl: "1.2",
            os: "Windows 7 Enterprise",
            device_type: DeviceType::Cpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: amd_struct_rules(),
            rates_opt_off: OutcomeRates {
                build_failure: 0.02,
                wrong_code: 0.04,
                runtime_crash: 0.1,
                timeout: 0.02,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.04,
                wrong_code: 0.04,
                runtime_crash: 0.1,
                timeout: 0.02,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 17,
            sdk: "Anon. SDK 2",
            device: "Anon. device 2",
            driver: "Anon. driver 2",
            opencl: "1.1",
            os: "Linux (anon. verson)",
            device_type: DeviceType::Cpu,
            expected_above_threshold: false,
            optimizes: true,
            rules: vec![rule(
                "struct-pointer-store-lost-near-barrier",
                "Figure 1(d)",
                Any,
                Feature(bugs::barrier_and_callee_pointer_store),
                Miscompile(DropPointerWritesInCallees),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.08,
                wrong_code: 0.05,
                runtime_crash: 0.2,
                timeout: 0.03,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.08,
                wrong_code: 0.05,
                runtime_crash: 0.2,
                timeout: 0.03,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 18,
            sdk: "Intel XE 2013 R2",
            device: "Intel Xeon Phi",
            driver: "5889-14",
            opencl: "1.2",
            os: "RHEL Server 6.5",
            device_type: DeviceType::Accelerator,
            expected_above_threshold: false,
            optimizes: true,
            rules: vec![rule(
                "slow-compilation-large-struct-barrier",
                "Figure 1(f)",
                OnlyEnabled,
                Feature(bugs::large_struct_with_barrier),
                CompileHang("compilation exceeds 20 seconds"),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.02,
                wrong_code: 0.01,
                runtime_crash: 0.05,
                timeout: 0.1,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.02,
                wrong_code: 0.01,
                runtime_crash: 0.05,
                timeout: 0.35,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 19,
            sdk: "Intel 4.6",
            device: "Oclgrind v14.5",
            driver: "LLVM 3.2, SPIR 1.2",
            opencl: "1.2",
            os: "Ubuntu 14.04",
            device_type: DeviceType::Emulator,
            expected_above_threshold: true,
            optimizes: false,
            rules: vec![rule(
                "comma-operator-mishandled",
                "Figure 2(f)",
                Any,
                Feature(bugs::uses_comma_operator),
                Miscompile(CommaYieldsLhs),
            )],
            rates_opt_off: OutcomeRates {
                build_failure: 0.0,
                wrong_code: 0.02,
                runtime_crash: 0.008,
                timeout: 0.17,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.0,
                wrong_code: 0.02,
                runtime_crash: 0.008,
                timeout: 0.17,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 20,
            sdk: "Altera 14.0",
            device: "Altera PCIe-385N D5 (Emulated)",
            driver: "aoc 14.0 build 200",
            opencl: "1.0",
            os: "CentOS 6.5",
            device_type: DeviceType::Emulator,
            expected_above_threshold: false,
            optimizes: true,
            rules: vec![
                rule(
                    "vector-in-struct-ice",
                    "Figure 1(c)",
                    Any,
                    Feature(bugs::has_vector_in_struct),
                    BuildFailure(
                        "internal error: LLVM IR generation failed for vector struct member",
                    ),
                ),
                rule(
                    "vector-logical-op-rejected",
                    "§6 (Front-end issues)",
                    Any,
                    Feature(bugs::vector_logical_ops),
                    BuildFailure("error: logical operation on vector type is not supported"),
                ),
            ],
            rates_opt_off: OutcomeRates {
                build_failure: 0.15,
                wrong_code: 0.02,
                runtime_crash: 0.15,
                timeout: 0.05,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.15,
                wrong_code: 0.02,
                runtime_crash: 0.15,
                timeout: 0.05,
                ..OutcomeRates::default()
            },
        },
        Configuration {
            id: 21,
            sdk: "Altera 14.0",
            device: "Altera PCIe-385N D5",
            driver: "aoc 14.0 build 200",
            opencl: "1.0",
            os: "CentOS 6.5",
            device_type: DeviceType::Fpga,
            expected_above_threshold: false,
            optimizes: true,
            rules: vec![
                rule(
                    "vector-in-struct-ice",
                    "Figure 1(c)",
                    Any,
                    Feature(bugs::has_vector_in_struct),
                    BuildFailure(
                        "internal error: LLVM IR generation failed for vector struct member",
                    ),
                ),
                rule(
                    "vector-logical-op-rejected",
                    "§6 (Front-end issues)",
                    Any,
                    Feature(bugs::vector_logical_ops),
                    BuildFailure("error: logical operation on vector type is not supported"),
                ),
            ],
            rates_opt_off: OutcomeRates {
                build_failure: 0.45,
                wrong_code: 0.02,
                runtime_crash: 0.3,
                timeout: 0.1,
                ..OutcomeRates::default()
            },
            rates_opt_on: OutcomeRates {
                build_failure: 0.45,
                wrong_code: 0.02,
                runtime_crash: 0.3,
                timeout: 0.1,
                ..OutcomeRates::default()
            },
        },
    ]
}

/// Looks up a configuration by its Table 1 row number.
///
/// # Panics
///
/// Panics if `id` is not in `1..=21`.
pub fn configuration(id: usize) -> Configuration {
    all_configurations()
        .into_iter()
        .find(|c| c.id == id)
        .unwrap_or_else(|| panic!("configuration id {id} out of range (1..=21)"))
}

/// The configurations the paper classifies as lying above the reliability
/// threshold (the ones exercised in Tables 4 and 5).
pub fn above_threshold_configurations() -> Vec<Configuration> {
    all_configurations()
        .into_iter()
        .filter(|c| c.expected_above_threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_21_configurations() {
        let configs = all_configurations();
        assert_eq!(configs.len(), 21);
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(c.id, i + 1);
        }
    }

    #[test]
    fn above_threshold_set_matches_table_1() {
        let above: Vec<usize> = above_threshold_configurations()
            .iter()
            .map(|c| c.id)
            .collect();
        assert_eq!(above, vec![1, 2, 3, 4, 9, 12, 13, 14, 15, 19]);
    }

    #[test]
    fn device_types_match_table_1() {
        let configs = all_configurations();
        assert_eq!(configs[0].device_type, DeviceType::Gpu);
        assert_eq!(configs[11].device_type, DeviceType::Cpu);
        assert_eq!(configs[17].device_type, DeviceType::Accelerator);
        assert_eq!(configs[18].device_type, DeviceType::Emulator);
        assert_eq!(configs[20].device_type, DeviceType::Fpga);
        assert_eq!(DeviceType::Fpga.name(), "FPGA");
    }

    #[test]
    fn oclgrind_does_not_optimize() {
        assert!(!configuration(19).optimizes);
        assert!(configuration(1).optimizes);
    }

    #[test]
    fn labels_follow_paper_notation() {
        let c = configuration(9);
        assert_eq!(c.label(OptLevel::Enabled), "9+");
        assert_eq!(c.label(OptLevel::Disabled), "9-");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_configuration_panics() {
        configuration(42);
    }
}
