//! The simulated OpenCL platform: online compilation followed by NDRange
//! execution, for a given configuration and optimisation level.
//!
//! The flow mirrors what the paper's harness observes when it hands a kernel
//! to a real driver:
//!
//! 1. the front end may reject the program (build failure) or hang
//!    (timeout);
//! 2. the optimiser runs (when enabled and when the driver optimises at all)
//!    and may *miscompile* the program — realised here by applying the
//!    configuration's triggered miscompilation transforms;
//! 3. the kernel executes on the device, where it may crash, time out or
//!    produce a result.
//!
//! Only the resulting [`TestOutcome`] is visible to the fuzzing harness.

use crate::bugs::{apply_miscompilation, BugEffect, OptLevel};
use crate::configs::Configuration;
use crate::passes;
use clc::{Features, Program};
use clc_interp::{ExecutionTier, LaunchOptions, RuntimeError, Schedule};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Execution options for the simulated platform.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Per-work-item step budget (mapped to the paper's 60 s timeout).
    pub step_limit: u64,
    /// Whether to run the data-race detector.
    pub detect_races: bool,
    /// Work-item scheduling order.
    pub schedule: Schedule,
    /// Extra buffer overrides (e.g. the inverted EMI `dead` array, §7.4).
    pub buffer_overrides: std::collections::HashMap<String, Vec<i64>>,
    /// Which emulator execution tier runs the kernels (defaults to the
    /// bytecode tier, `CLC_INTERP_TIER` overrides process-wide).
    pub tier: ExecutionTier,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            step_limit: 2_000_000,
            detect_races: false,
            schedule: Schedule::Forward,
            buffer_overrides: std::collections::HashMap::new(),
            tier: ExecutionTier::from_env(),
        }
    }
}

/// The outcome of compiling and running one kernel on one configuration, as
/// observed by the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOutcome {
    /// The kernel built, ran and produced a result.
    Result {
        /// FNV-1a hash of the result string (used for voting).
        hash: u64,
        /// The comma-separated output the host program would print.
        output: String,
    },
    /// The online compiler rejected the program or crashed.
    BuildFailure(String),
    /// The kernel (or the machine) crashed at runtime.
    Crash(String),
    /// Compilation or execution exceeded the time budget.
    Timeout,
}

impl TestOutcome {
    /// Whether the outcome carries a computed result.
    pub fn is_result(&self) -> bool {
        matches!(self, TestOutcome::Result { .. })
    }

    /// The result hash, if any.
    pub fn result_hash(&self) -> Option<u64> {
        match self {
            TestOutcome::Result { hash, .. } => Some(*hash),
            _ => None,
        }
    }

    /// One-letter classification used in the paper's tables: `w`/`X` are
    /// decided by voting at the harness level, so here only `bf`, `c`, `to`
    /// and `ok` exist.
    pub fn kind(&self) -> &'static str {
        match self {
            TestOutcome::Result { .. } => "ok",
            TestOutcome::BuildFailure(_) => "bf",
            TestOutcome::Crash(_) => "c",
            TestOutcome::Timeout => "to",
        }
    }
}

/// Compiles and executes a kernel on a simulated configuration.
pub fn execute(
    program: &Program,
    config: &Configuration,
    opt: OptLevel,
    exec: &ExecOptions,
) -> TestOutcome {
    let features = Features::detect(program);

    // --- Front end / deterministic bug rules --------------------------------
    let mut miscompilations = Vec::new();
    for rule in &config.rules {
        if !rule.applies(&features, program, opt) {
            continue;
        }
        match &rule.effect {
            BugEffect::BuildFailure(msg) => {
                return TestOutcome::BuildFailure(format!("{} [{}]", msg, rule.reference))
            }
            BugEffect::CompileHang(_) => return TestOutcome::Timeout,
            BugEffect::RuntimeCrash(msg) => {
                return TestOutcome::Crash(format!("{} [{}]", msg, rule.reference))
            }
            BugEffect::Miscompile(m) => miscompilations.push(*m),
        }
    }

    // --- Background (rate-based) outcomes ------------------------------------
    let rates = config.rates(opt);
    let uses_barriers = features.barrier_count > 0;
    if chance(program, config, opt, "bf") < rates.build_failure {
        return TestOutcome::BuildFailure("driver rejected the program (background rate)".into());
    }
    if chance(program, config, opt, "to") < rates.timeout {
        return TestOutcome::Timeout;
    }

    // --- Compilation ----------------------------------------------------------
    let mut compiled = program.clone();
    if opt == OptLevel::Enabled && config.optimizes {
        passes::optimize(&mut compiled);
    }
    for m in &miscompilations {
        apply_miscompilation(&mut compiled, *m);
    }
    let wrong_rate = rates.wrong_code
        + if uses_barriers {
            rates.barrier_wrong_bonus
        } else {
            0.0
        };
    if chance(program, config, opt, "wc") < wrong_rate {
        let salt = stable_hash(&(program, config.id, "perturb"));
        apply_miscompilation(
            &mut compiled,
            crate::bugs::Miscompilation::PerturbLiteral(salt),
        );
    }

    // --- Execution -------------------------------------------------------------
    let crash_rate = rates.runtime_crash
        + if uses_barriers {
            rates.barrier_crash_bonus
        } else {
            0.0
        };
    if chance(program, config, opt, "crash") < crash_rate {
        return TestOutcome::Crash("kernel execution crashed (background rate)".into());
    }
    let options = LaunchOptions {
        step_limit: exec.step_limit,
        detect_races: exec.detect_races,
        schedule: exec.schedule,
        buffer_overrides: exec.buffer_overrides.clone(),
        scalar_args: std::collections::HashMap::new(),
        tier: exec.tier,
    };
    match clc_interp::launch(&compiled, &options) {
        Ok(result) => TestOutcome::Result {
            hash: result.result_hash,
            output: result.result_string,
        },
        Err(RuntimeError::StepLimitExceeded { .. }) => TestOutcome::Timeout,
        Err(e) => TestOutcome::Crash(e.to_string()),
    }
}

/// Executes on the reference emulator with no configuration-specific
/// behaviour (the oracle used by the harness to sanity-check majorities and
/// by the reducer).
pub fn reference_execute(program: &Program, exec: &ExecOptions) -> TestOutcome {
    let options = LaunchOptions {
        step_limit: exec.step_limit,
        detect_races: exec.detect_races,
        schedule: exec.schedule,
        buffer_overrides: exec.buffer_overrides.clone(),
        scalar_args: std::collections::HashMap::new(),
        tier: exec.tier,
    };
    match clc_interp::launch(program, &options) {
        Ok(result) => TestOutcome::Result {
            hash: result.result_hash,
            output: result.result_string,
        },
        Err(RuntimeError::StepLimitExceeded { .. }) => TestOutcome::Timeout,
        Err(e) => TestOutcome::Crash(e.to_string()),
    }
}

/// Deterministic pseudo-probability in `[0, 1)` derived from the kernel, the
/// configuration, the optimisation level and a salt.  Using a hash rather
/// than an RNG keeps every campaign exactly reproducible.
fn chance(program: &Program, config: &Configuration, opt: OptLevel, salt: &str) -> f64 {
    let h = stable_hash(&(program, config.id, opt, salt));
    (h % 1_000_000) as f64 / 1_000_000.0
}

fn stable_hash<T: Hash>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{all_configurations, configuration};
    use clc::{BufferSpec, Expr, IdKind, KernelDef, LaunchConfig, ScalarType, Stmt};

    fn trivial_program(value: i64) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: clc::Block::of(vec![Stmt::assign(
                    Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                    Expr::int(value),
                )]),
            },
            LaunchConfig::single_group(4),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));
        p
    }

    #[test]
    fn outcomes_are_deterministic() {
        let p = trivial_program(7);
        for config in all_configurations() {
            for opt in OptLevel::BOTH {
                let a = execute(&p, &config, opt, &ExecOptions::default());
                let b = execute(&p, &config, opt, &ExecOptions::default());
                assert_eq!(a, b, "config {} {}", config.id, opt);
            }
        }
    }

    #[test]
    fn reference_execution_matches_source_semantics() {
        let p = trivial_program(9);
        match reference_execute(&p, &ExecOptions::default()) {
            TestOutcome::Result { output, .. } => assert_eq!(output, "9,9,9,9"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn healthy_configs_agree_on_a_trivial_kernel() {
        // A struct-free, barrier-free, comma-free kernel triggers none of the
        // deterministic bug rules; any disagreement would have to come from
        // the background rates, which are per-kernel deterministic, so at
        // least the NVIDIA configuration with optimisations (rate bf = 0)
        // must produce the reference answer.
        let p = trivial_program(3);
        let reference = reference_execute(&p, &ExecOptions::default());
        let outcome = execute(
            &p,
            &configuration(1),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        if let (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) =
            (&reference, &outcome)
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn outcome_kinds_classify() {
        assert_eq!(TestOutcome::Timeout.kind(), "to");
        assert_eq!(TestOutcome::BuildFailure("x".into()).kind(), "bf");
        assert_eq!(TestOutcome::Crash("x".into()).kind(), "c");
        assert_eq!(
            TestOutcome::Result {
                hash: 1,
                output: "1".into()
            }
            .kind(),
            "ok"
        );
        assert!(TestOutcome::Result {
            hash: 1,
            output: "1".into()
        }
        .is_result());
        assert_eq!(TestOutcome::Timeout.result_hash(), None);
    }

    #[test]
    fn altera_rejects_vectors_in_structs() {
        use clc::{Field, StructDef, Type, VectorWidth};
        let mut p = trivial_program(1);
        p.add_struct(StructDef::new(
            "S",
            vec![Field::new(
                "x",
                Type::Vector(ScalarType::Int, VectorWidth::W4),
            )],
        ));
        let outcome = execute(
            &p,
            &configuration(20),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        assert!(matches!(outcome, TestOutcome::BuildFailure(msg) if msg.contains("vector")));
    }

    #[test]
    fn oclgrind_miscompiles_comma_kernels() {
        let mut p = trivial_program(1);
        p.kernel.body.stmts[0] = Stmt::assign(
            Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
            Expr::comma(Expr::int(5), Expr::int(1)),
        );
        let reference = reference_execute(&p, &ExecOptions::default());
        let oclgrind = execute(
            &p,
            &configuration(19),
            OptLevel::Disabled,
            &ExecOptions::default(),
        );
        match (reference, oclgrind) {
            (TestOutcome::Result { output: r, .. }, TestOutcome::Result { output: o, .. }) => {
                assert_eq!(r, "1,1,1,1");
                assert_eq!(o, "5,5,5,5");
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
    }
}
